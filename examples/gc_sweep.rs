//! The Fig. 2 scenario from the paper: 254.gap's garbage-collection sweep,
//! whose pointer advances by each object's size — a *phased multi-stride*
//! (PMST) access pattern. Single-stride prefetching cannot help here; the
//! paper's PMST transformation computes the stride in registers each
//! iteration and prefetches `P + K*stride`.
//!
//! The example contrasts a phased sweep with an *alternating* one
//! (Fig. 4c): same top strides, but the alternating version fails the
//! zero-stride-difference test and is (correctly) not prefetched.
//!
//! ```text
//! cargo run --release --example gc_sweep
//! ```

use stride_prefetch::core::{measure_speedup, PipelineConfig, ProfilingVariant, StrideClass};
use stride_prefetch::ir::{BinOp, CmpOp, Module, ModuleBuilder, Operand};

/// Builds a heap of `count` objects and sweeps it `sweeps` times.
/// `phased != 0` allocates sizes in 512-object batches (16/32/48);
/// otherwise sizes alternate per object — same size mix, different order.
fn sweep_module(phased: bool) -> Module {
    let mut mb = ModuleBuilder::new();
    let f = mb.declare_function("main", 2);
    let mut fb = mb.function(f);
    let count = fb.param(0);
    let sweeps = fb.param(1);

    let first = fb.mov(0i64);
    let last = fb.mov(0i64);
    fb.counted_loop(count, |fb, i| {
        let kind_src = if phased {
            fb.bin(BinOp::Shr, i, 9i64) // 512-object phases
        } else {
            fb.mov(i) // alternate every object
        };
        let kind = fb.bin(BinOp::Rem, kind_src, 3i64);
        let is0 = fb.cmp(CmpOp::Eq, kind, 0i64);
        let is1 = fb.cmp(CmpOp::Eq, kind, 1i64);
        let s12 = fb.select(is1, 24i64, 48i64);
        let size = fb.select(is0, 16i64, s12);
        let o = fb.alloc(size);
        let r15 = fb.add(size, 15i64);
        let rounded = fb.bin(BinOp::And, r15, !15i64);
        fb.store(rounded, o, 0);
        let is_first = fb.cmp(CmpOp::Eq, first, 0i64);
        let nf = fb.select(is_first, o, first);
        fb.mov_to(first, nf);
        fb.mov_to(last, o);
    });

    let total = fb.mov(0i64);
    fb.counted_loop(sweeps, |fb, _| {
        let s = fb.mov(first);
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let cont = fb.cmp(CmpOp::Le, s, last);
        fb.cond_br(cont, body, exit);
        fb.switch_to(body);
        let (size, _) = fb.load(s, 0); // the Fig. 2 load
        fb.bin_to(total, BinOp::Add, total, size);
        fb.bin_to(s, BinOp::Add, s, size);
        fb.br(header);
        fb.switch_to(exit);
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

fn main() {
    let config = PipelineConfig::default();
    for (name, phased) in [("phased (Fig. 4b)", true), ("alternating (Fig. 4c)", false)] {
        let module = sweep_module(phased);
        let out = measure_speedup(
            &module,
            &[40_000, 3],
            &[90_000, 4],
            ProfilingVariant::EdgeCheck,
            &config,
        )
        .expect("pipeline");
        let pmst = out.classification.of_class(StrideClass::Pmst).count();
        let wsst = out.classification.of_class(StrideClass::Wsst).count();
        println!(
            "{name:<22}: {} PMST / {} WSST classified, {} register-stride \
             sequence(s) inserted, speedup {:.3}",
            pmst, wsst, out.report.pmst, out.speedup,
        );
    }
    println!(
        "\nThe phased sweep qualifies as PMST (its stride differences are mostly \
         zero) and gets the\nregister-computed `prefetch(P + K*stride)` sequence; \
         the alternating sweep has the same top\nstrides but fails the \
         zero-difference test, so the compiler correctly leaves it alone."
    );
}
