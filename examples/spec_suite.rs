//! Run the full synthetic SPECINT2000 suite end-to-end with one profiling
//! variant and print a Fig. 16-style speedup column plus the memory-system
//! behaviour behind it.
//!
//! ```text
//! cargo run --release --example spec_suite [variant]
//! ```
//!
//! `variant` is one of `edge-check` (default), `naive-loop`, `naive-all`,
//! `sample-edge-check`, `sample-naive-loop`, `sample-naive-all`,
//! `block-check`, `two-pass`.

use stride_prefetch::core::{measure_speedup, PipelineConfig, ProfilingVariant};
use stride_prefetch::workloads::{all_workloads, Scale};

fn variant_by_name(name: &str) -> Option<ProfilingVariant> {
    let all = [
        ProfilingVariant::EdgeCheck,
        ProfilingVariant::NaiveLoop,
        ProfilingVariant::NaiveAll,
        ProfilingVariant::SampleEdgeCheck,
        ProfilingVariant::SampleNaiveLoop,
        ProfilingVariant::SampleNaiveAll,
        ProfilingVariant::BlockCheck,
        ProfilingVariant::SampleBlockCheck,
        ProfilingVariant::TwoPass,
    ];
    all.into_iter().find(|v| v.to_string() == name)
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "edge-check".into());
    let Some(variant) = variant_by_name(&arg) else {
        eprintln!("unknown variant: {arg}");
        std::process::exit(2);
    };

    let config = PipelineConfig::default();
    println!(
        "{:<14}{:>9}{:>12}{:>12}{:>10}{:>8}",
        "benchmark", "speedup", "prefetches", "timely", "late", "SSST+PMST"
    );
    let mut speedups = Vec::new();
    for w in all_workloads(Scale::Paper) {
        let out = measure_speedup(&w.module, &w.train_args, &w.ref_args, variant, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        speedups.push(out.speedup);
        println!(
            "{:<14}{:>9.3}{:>12}{:>12}{:>10}{:>9}",
            w.name,
            out.speedup,
            out.prefetch_mem.prefetches_issued,
            out.prefetch_mem.prefetch_timely,
            out.prefetch_mem.prefetch_late,
            out.classification.loads.len(),
        );
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("\n{arg} geometric-mean speedup: {geomean:.3}");
}
