//! The Fig. 1 scenario from the paper: a pointer-chasing loop over a
//! linked list whose nodes were laid out by a custom allocator in
//! traversal order, so the "irregular" loads actually stride.
//!
//! The example shows the discovery side in detail: it prints the stride
//! profile the integrated profiler collects for each load and how the
//! Fig. 5 classification reads it, at three allocator-churn levels —
//! watch SSST degrade to WSST and then to no pattern as the allocation
//! order decays.
//!
//! ```text
//! cargo run --release --example pointer_chase
//! ```

use stride_prefetch::core::{
    classify_profile, prefetch_with_profiles, run_profiling, run_uninstrumented,
    ClassifyThresholds, PipelineConfig, ProfilingVariant,
};
use stride_prefetch::ir::{Module, ModuleBuilder, Operand};
use stride_prefetch::workloads::{emit_build_list, emit_list_walk, Lcg};

/// Builds: create a `count`-node list with the given allocator churn, then
/// walk it `passes` times (arguments: `[count, passes, churn, seed]`).
fn chase_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let f = mb.declare_function("main", 4);
    let mut fb = mb.function(f);
    let count = fb.param(0);
    let passes = fb.param(1);
    let churn = fb.param(2);
    let seed = fb.param(3);
    let lcg = Lcg::init(&mut fb, seed);
    let head = emit_build_list(&mut fb, &lcg, count, 48, 0, churn);
    let total = fb.mov(0i64);
    fb.counted_loop(passes, |fb, _| {
        let s = emit_list_walk(fb, head);
        fb.bin_to(total, stride_prefetch::ir::BinOp::Add, total, s);
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

fn main() {
    let config = PipelineConfig::default();
    let module = chase_module();

    println!("pointer-chasing list, 48-byte nodes, 20000 nodes, 4 passes\n");
    for churn in [0i64, 10, 40] {
        let args = [20_000, 4, churn, 7];
        let outcome = run_profiling(&module, &args, ProfilingVariant::EdgeCheck, &config)
            .expect("profiling run");

        println!("allocator churn {churn:>2}%:");
        for (func, site, profile) in outcome.stride.iter() {
            if profile.total_freq == 0 {
                continue;
            }
            let class = classify_profile(profile, &ClassifyThresholds::paper());
            let class = class.map_or("none".to_string(), |c| c.to_string());
            let (stride, freq) = profile.top1().unwrap_or((0, 0));
            println!(
                "  load {func}/{site}: top stride {stride:>3} bytes at {:>5.1}%  \
                 zero-diffs {:>5.1}%  -> {class}",
                100.0 * freq as f64 / profile.total_freq as f64,
                100.0 * profile.zero_diff_ratio(),
            );
        }

        let (transformed, _, report) = prefetch_with_profiles(
            &module,
            &outcome.edge,
            outcome.source,
            &outcome.stride,
            &config,
        );
        let (base, _) = run_uninstrumented(&module, &args, &config).expect("baseline");
        let (pf, mem) = run_uninstrumented(&transformed, &args, &config).expect("prefetched");
        println!(
            "  -> {} prefetch instruction(s) inserted, speedup {:.3} \
             ({} timely / {} late prefetch fills)\n",
            report.prefetches_inserted,
            base.cycles as f64 / pf.cycles as f64,
            mem.prefetch_timely,
            mem.prefetch_late,
        );
    }
}
