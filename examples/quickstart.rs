//! Quickstart: build a small strided program, run the full
//! profile-guided-prefetching pipeline on it, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stride_prefetch::core::{measure_overhead, measure_speedup, PipelineConfig, ProfilingVariant};
use stride_prefetch::ir::{BinOp, ModuleBuilder, Operand};

fn main() {
    // A program that repeatedly sweeps a 4 MiB array with a 128-byte
    // stride — the simplest shape the paper's profiler should discover.
    let mut mb = ModuleBuilder::new();
    let arr = mb.add_global("arr", 1 << 22);
    let main_fn = mb.declare_function("main", 1);
    let mut fb = mb.function(main_fn);
    let base = fb.global_addr(arr);
    let sum = fb.mov(0i64);
    fb.counted_loop(fb.param(0), |fb, _pass| {
        fb.counted_loop(20_000i64, |fb, i| {
            let off = fb.mul(i, 128i64);
            let a = fb.add(base, off);
            let (v, _) = fb.load(a, 0);
            fb.bin_to(sum, BinOp::Add, sum, v);
        });
    });
    fb.ret(Some(Operand::Reg(sum)));
    mb.set_entry(main_fn);
    let module = mb.finish();

    let config = PipelineConfig::default();

    // Profile on a small "train" input, prefetch, and measure on a larger
    // "reference" input — the paper's §4.1 methodology.
    for variant in [
        ProfilingVariant::EdgeCheck,
        ProfilingVariant::SampleEdgeCheck,
        ProfilingVariant::NaiveLoop,
    ] {
        let out = measure_speedup(&module, &[3], &[5], variant, &config).expect("pipeline run");
        println!(
            "{variant:<20} speedup {:.3}  ({} -> {} cycles, {} loads classified, {} prefetches inserted)",
            out.speedup,
            out.baseline_cycles,
            out.prefetch_cycles,
            out.classification.loads.len(),
            out.report.prefetches_inserted,
        );
    }

    // And the cost of collecting the profile (Fig. 20's ratio).
    let oh = measure_overhead(&module, &[3], ProfilingVariant::SampleEdgeCheck, &config)
        .expect("overhead run");
    println!(
        "sample-edge-check profiling overhead: {:.1}% over edge profiling alone \
         ({:.2}% of load references reached strideProf)",
        oh.overhead * 100.0,
        oh.strideprof_fraction * 100.0,
    );
}
