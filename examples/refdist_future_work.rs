//! The paper's first future-work direction (§6): profile the number of
//! memory references *between* successive executions of a load site, and
//! refuse to prefetch loads whose prefetched line would be evicted before
//! use.
//!
//! The example builds two out-loop load sites with identical stride
//! patterns but very different reference distances and shows the
//! [`ReferenceDistanceProfiler`] telling them apart.
//!
//! ```text
//! cargo run --release --example refdist_future_work
//! ```

use stride_prefetch::ir::{FuncId, InstrId};
use stride_prefetch::profiling::ReferenceDistanceProfiler;

fn main() {
    let func = FuncId::new(0);
    let tight = InstrId::new(1); // called from a tight loop
    let distant = InstrId::new(2); // called once per "phase"

    let mut profiler = ReferenceDistanceProfiler::new();

    // Simulate the reference stream: the tight site fires every 4th
    // memory reference; the distant site only every 20_000th.
    for phase in 0..50u64 {
        for _ in 0..5_000u64 {
            profiler.reference(Some((func, tight)));
            for _ in 0..3 {
                profiler.reference(None);
            }
        }
        profiler.reference(Some((func, distant)));
        let _ = phase;
    }

    let threshold = 2_000.0; // "more than ~2000 refs in between: don't bother"
    for (name, site) in [("tight-loop load", tight), ("per-phase load", distant)] {
        let s = profiler.summary(func, site).expect("profiled");
        println!(
            "{name:<16}: mean distance {:>9.1} refs (min {}, max {}) -> prefetch? {}",
            s.mean(),
            s.min,
            s.max,
            profiler.should_prefetch(func, site, threshold),
        );
    }
    println!(
        "\ntotal references simulated: {}",
        profiler.total_references()
    );
    println!(
        "Both sites would classify SSST from their stride profiles alone; the \
         reference-distance\nchannel is what tells the compiler the second one's \
         prefetched lines would be long evicted\nbefore use (§6, future work #1)."
    );
}
