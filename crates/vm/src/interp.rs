//! The IR interpreter: executes a [`Module`] over simulated memory,
//! charging cycles from a [`CostModel`], a [`MemoryTiming`] implementation
//! (the cache hierarchy), and a [`ProfilingRuntime`] (the instrumentation
//! runtime of the paper).

use crate::cost::CostModel;
use crate::memory::{layout_globals, Heap, Memory};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use stride_ir::{BlockId, EdgeId, FuncId, InstrId, Module, Op, Operand, Reg, Terminator};

/// Whether a memory access is a load or a store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A store.
    Store,
}

/// Provides memory-system timing: how many cycles an access stalls beyond
/// its base cost, and what a prefetch does.
pub trait MemoryTiming {
    /// Returns stall cycles for a demand access of `addr` at time `cycle`.
    fn access(&mut self, addr: u64, cycle: u64, kind: AccessKind) -> u64;
    /// Issues a non-blocking prefetch of `addr` at time `cycle`.
    fn prefetch(&mut self, addr: u64, cycle: u64);

    /// Opt-in for the VM's last-line load fast path. `Some(line)` promises
    /// that a demand **load** of the same `line`-aligned block as the
    /// immediately preceding demand access — with no other access or
    /// prefetch in between — would return 0 stall from [`Self::access`]
    /// and change no observable state beyond what
    /// [`Self::note_line_repeats`] applies. Implementations that must see
    /// every access (tracers) keep the `None` default.
    fn repeat_line_size(&self) -> Option<u64> {
        None
    }

    /// Applies the statistics of `n` batched same-line repeat loads of
    /// `addr` (see [`Self::repeat_line_size`]). Default: nothing.
    fn note_line_repeats(&mut self, _addr: u64, _n: u64) {}
}

/// A memory system with no stalls (used for functional tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct FlatTiming;

impl MemoryTiming for FlatTiming {
    fn access(&mut self, _addr: u64, _cycle: u64, _kind: AccessKind) -> u64 {
        0
    }
    fn prefetch(&mut self, _addr: u64, _cycle: u64) {}
    /// Stateless and stall-free: every access is trivially a repeat hit.
    fn repeat_line_size(&self) -> Option<u64> {
        Some(64)
    }
}

/// The profiling runtime invoked by the profiling pseudo-instructions.
///
/// Each hook returns the cycle cost of the instruction sequence it stands
/// for, so instrumented runs pay a realistic overhead (Fig. 20 of the
/// paper is a ratio of such costs).
pub trait ProfilingRuntime {
    /// `ProfileEdge`: increment the counter of `edge` in `func`.
    fn profile_edge(&mut self, func: FuncId, edge: EdgeId) -> u64;
    /// `TripCountCheck`: evaluate `(entry_freq >> shift) > prehead_freq`
    /// from the current counters (Figs. 11–14). Returns the predicate and
    /// the cost.
    fn trip_count_check(
        &mut self,
        func: FuncId,
        incoming: &[EdgeId],
        outgoing: &[EdgeId],
        shift: u32,
    ) -> (bool, u64);
    /// `ProfileStride`: feed `addr` to the `strideProf` routine for load
    /// `site` (Figs. 6/7/9). Returns the cost.
    fn stride_prof(&mut self, func: FuncId, site: InstrId, slot: u32, addr: u64) -> u64;
}

/// A runtime that ignores every hook (used for uninstrumented runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRuntime;

impl ProfilingRuntime for NullRuntime {
    fn profile_edge(&mut self, _func: FuncId, _edge: EdgeId) -> u64 {
        0
    }
    fn trip_count_check(
        &mut self,
        _func: FuncId,
        _incoming: &[EdgeId],
        _outgoing: &[EdgeId],
        _shift: u32,
    ) -> (bool, u64) {
        (false, 0)
    }
    fn stride_prof(&mut self, _func: FuncId, _site: InstrId, _slot: u32, _addr: u64) -> u64 {
        0
    }
}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Cycle costs per opcode.
    pub cost: CostModel,
    /// Maximum dynamic instructions before aborting with
    /// [`VmError::OutOfFuel`].
    pub fuel: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Exclusive upper bound of the simulated address space. Demand
    /// accesses at or above it abort with
    /// [`VmError::InvalidMemoryAccess`]; prefetches of such addresses are
    /// dropped silently (prefetch is non-faulting, as on Itanium).
    pub addr_limit: u64,
    /// Execute through the superinstruction-fused clone of the module
    /// (`stride_ir::fuse_module`). Fusion is a pure dispatch optimization:
    /// every logical output — return value, cycles, instruction/load/store
    /// counts, per-site load counts — is byte-identical with it on or off.
    pub fuse: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            cost: CostModel::itanium(),
            fuel: 4_000_000_000,
            max_call_depth: 1 << 14,
            addr_limit: 1 << 40,
            fuse: true,
        }
    }
}

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The instruction budget was exhausted.
    OutOfFuel {
        /// Instructions executed before aborting.
        executed: u64,
    },
    /// The call stack exceeded the configured depth.
    CallDepthExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A demand load or store touched an address outside the simulated
    /// address space (`addr >= VmConfig::addr_limit`).
    InvalidMemoryAccess {
        /// The faulting address.
        addr: u64,
    },
    /// The entry point or a call named a function id the module does not
    /// define.
    UnknownFunction {
        /// The out-of-range function index.
        func: u32,
    },
    /// A function was invoked with the wrong number of arguments.
    ArityMismatch {
        /// The function index invoked.
        func: u32,
        /// Parameters the function declares.
        expected: u32,
        /// Arguments actually supplied.
        got: usize,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfFuel { executed } => {
                write!(
                    f,
                    "instruction budget exhausted after {executed} instructions"
                )
            }
            VmError::CallDepthExceeded { limit } => {
                write!(f, "call depth exceeded limit of {limit}")
            }
            VmError::InvalidMemoryAccess { addr } => {
                write!(f, "invalid memory access at {addr:#x}")
            }
            VmError::UnknownFunction { func } => {
                write!(f, "unknown function f{func}")
            }
            VmError::ArityMismatch {
                func,
                expected,
                got,
            } => {
                write!(
                    f,
                    "function f{func} expects {expected} arguments, got {got}"
                )
            }
        }
    }
}

impl Error for VmError {}

/// Everything a run produced: the return value, cycle accounting, and
/// per-load-site dynamic reference counts.
#[derive(Clone, Debug, Default)]
pub struct RunResult {
    /// Value returned by the entry function, if any.
    pub return_value: Option<i64>,
    /// Total simulated cycles (base + memory stalls + profiling runtime).
    pub cycles: u64,
    /// Dynamic instruction count (including terminators).
    pub instructions: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
    /// Dynamic prefetch count (predicated-off prefetches excluded).
    pub prefetches: u64,
    /// Cycles stalled in the memory hierarchy.
    pub mem_stall_cycles: u64,
    /// Cycles spent in the profiling runtime.
    pub profiling_cycles: u64,
    /// Dynamic execution count per load site: `load_site_counts[func][instr]`.
    pub load_site_counts: Vec<Vec<u64>>,
    /// Superinstructions dispatched (meta-counter: measures how much
    /// dispatch work fusion saved; not a logical output — it differs
    /// between fused and unfused runs by design).
    pub fused_dispatch: u64,
    /// Demand accesses (loads and stores) served by the VM's last-line
    /// fast path without calling into the memory timing model
    /// (meta-counter; depends on the timing model's
    /// [`MemoryTiming::repeat_line_size`] opt-in).
    pub fastpath_load_hits: u64,
    /// Dispatch probes recorded by the `vm-selfprof` feature (meta-counter;
    /// always 0 when the feature is off).
    pub selfprof_overhead_cycles: u64,
}

impl RunResult {
    /// Dynamic count for one load site.
    pub fn load_count(&self, func: FuncId, site: InstrId) -> u64 {
        self.load_site_counts
            .get(func.index())
            .and_then(|v| v.get(site.index()))
            .copied()
            .unwrap_or(0)
    }
}

struct Frame {
    func: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<i64>,
    ret_reg: Option<Reg>,
}

/// Operand evaluation, hoisted out of the dispatch loop.
#[inline]
fn eval(regs: &[i64], o: Operand) -> i64 {
    match o {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v,
    }
}

/// The virtual machine. Owns the simulated memory and heap; borrows the
/// module, timing model and profiling runtime for the duration of a run.
pub struct Vm<'a> {
    module: &'a Module,
    config: VmConfig,
    /// Superinstruction-fused clone of `module`, shared through the
    /// process-wide decode cache (None when `config.fuse` is off).
    fused: Option<std::sync::Arc<Module>>,
    /// Simulated memory, exposed so harnesses can pre-initialize data.
    pub mem: Memory,
    /// Simulated heap.
    pub heap: Heap,
    global_bases: Vec<u64>,
    alloc_sizes: HashMap<u64, u64>,
    /// Dispatch profile accumulated across runs (`vm-selfprof` builds).
    #[cfg(feature = "vm-selfprof")]
    pub selfprof: crate::selfprof::SelfProfile,
}

impl<'a> Vm<'a> {
    /// Creates a VM for `module` with globals laid out and zeroed.
    pub fn new(module: &'a Module, config: VmConfig) -> Self {
        let sizes: Vec<u64> = module.globals.iter().map(|g| g.size).collect();
        let global_bases = layout_globals(&sizes);
        let fused = config.fuse.then(|| decode_cache::fused(module));
        Vm {
            module,
            config,
            fused,
            mem: Memory::new(),
            heap: Heap::new(),
            global_bases,
            alloc_sizes: HashMap::new(),
            #[cfg(feature = "vm-selfprof")]
            selfprof: crate::selfprof::SelfProfile::new(),
        }
    }

    /// Base address of a global.
    ///
    /// # Panics
    ///
    /// Panics if the global id is out of range.
    pub fn global_base(&self, g: stride_ir::GlobalId) -> u64 {
        self.global_bases[g.index()]
    }

    /// Runs the module entry function with `args`, using `timing` for
    /// memory-system delays and `profiling` for instrumentation hooks.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfFuel`] or [`VmError::CallDepthExceeded`].
    pub fn run(
        &mut self,
        args: &[i64],
        timing: &mut dyn MemoryTiming,
        profiling: &mut dyn ProfilingRuntime,
    ) -> Result<RunResult, VmError> {
        let entry = self.module.entry;
        self.run_function(entry, args, timing, profiling)
    }

    /// Runs an arbitrary function (used by unit tests and examples).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfFuel`] or [`VmError::CallDepthExceeded`].
    pub fn run_function(
        &mut self,
        func: FuncId,
        args: &[i64],
        timing: &mut dyn MemoryTiming,
        profiling: &mut dyn ProfilingRuntime,
    ) -> Result<RunResult, VmError> {
        // Execute from the fused clone when fusion is on. The clone has
        // the same functions, ids and register files; the fused arms below
        // keep all accounting byte-identical to sequential execution.
        let fused_arc = self.fused.clone();
        let module: &Module = fused_arc.as_deref().unwrap_or(self.module);

        let mut result = RunResult {
            load_site_counts: module
                .functions
                .iter()
                .map(|f| vec![0u64; f.next_instr as usize])
                .collect(),
            ..RunResult::default()
        };

        let Some(f) = module.functions.get(func.index()) else {
            return Err(VmError::UnknownFunction {
                func: func.index() as u32,
            });
        };
        if args.len() != f.num_params as usize {
            return Err(VmError::ArityMismatch {
                func: func.index() as u32,
                expected: f.num_params,
                got: args.len(),
            });
        }
        let mut entry_regs = vec![0i64; f.num_regs as usize];
        entry_regs[..args.len()].copy_from_slice(args);
        // The running frame lives in a local; `stack` holds only suspended
        // callers, so dispatch never re-indexes the stack.
        let mut cur = Frame {
            func,
            block: f.entry,
            idx: 0,
            regs: entry_regs,
            ret_reg: None,
        };
        let mut stack: Vec<Frame> = Vec::new();

        // Loop-invariant configuration, hoisted out of dispatch.
        let cost = self.config.cost;
        let fuel = self.config.fuel;
        let addr_limit = self.config.addr_limit;
        let max_depth = self.config.max_call_depth;
        // Register files of returned frames, reused by later calls so the
        // call-heavy workloads do not allocate per dynamic call. Bounded by
        // the deepest call stack seen.
        let mut reg_pool: Vec<Vec<i64>> = Vec::new();

        // Last-line load fast path (see MemoryTiming::repeat_line_size):
        // demand loads and stores of the line touched by the immediately
        // preceding demand access skip the timing model; their statistics
        // are batched into the model at the next slow event or at run exit.
        let repeat_mask = timing.repeat_line_size().map(|s| !(s - 1));
        let mut last_line: u64 = u64::MAX; // sentinel: no MRU line known
        let mut last_addr: u64 = 0;
        let mut pending_repeats: u64 = 0;

        #[cfg(feature = "vm-selfprof")]
        let mut prev_kind: Option<crate::selfprof::OpKind> = None;

        let mut error: Option<VmError> = None;

        'outer: loop {
            let function = &module.functions[cur.func.index()];
            'blocks: loop {
                let block = &function.blocks[cur.block.index()];
                let instrs = &block.instrs;
                while cur.idx < instrs.len() {
                    let instr = &instrs[cur.idx];
                    cur.idx += 1;
                    result.instructions += 1;
                    if result.instructions > fuel {
                        error = Some(VmError::OutOfFuel {
                            executed: result.instructions,
                        });
                        break 'outer;
                    }

                    #[cfg(feature = "vm-selfprof")]
                    {
                        let k = crate::selfprof::OpKind::of_op(&instr.op);
                        self.selfprof.record(prev_kind, k);
                        prev_kind = Some(k);
                        result.selfprof_overhead_cycles += 1;
                    }

                    // Qualifying predicate: a squashed instruction still
                    // costs its issue slot on an in-order machine? On
                    // Itanium a predicated-off instruction occupies the
                    // slot but completes without effect; charge 1 cycle.
                    if let Some(p) = instr.pred {
                        if cur.regs[p.index()] == 0 {
                            result.cycles += 1;
                            continue;
                        }
                    }

                    result.cycles += cost.base_cost(&instr.op);
                    let regs = &mut cur.regs;

                    // Arms ordered hottest-first per the vm-selfprof
                    // opcode/digram profile of the Fig. 15 workloads.
                    match &instr.op {
                        Op::FusedBinBin {
                            a_dst,
                            a_op,
                            a_lhs,
                            a_rhs,
                            b_dst,
                            b_op,
                            b_lhs,
                            b_rhs,
                            b_id: _,
                        } => {
                            result.fused_dispatch += 1;
                            // base_cost above charged the sum of both
                            // halves; each half keeps its own dynamic
                            // instruction slot and fuel check.
                            regs[a_dst.index()] = a_op.eval(eval(regs, *a_lhs), eval(regs, *a_rhs));
                            result.instructions += 1;
                            if result.instructions > fuel {
                                error = Some(VmError::OutOfFuel {
                                    executed: result.instructions,
                                });
                                break 'outer;
                            }
                            regs[b_dst.index()] = b_op.eval(eval(regs, *b_lhs), eval(regs, *b_rhs));
                        }
                        Op::FusedBinLoad {
                            bin_dst,
                            op,
                            lhs,
                            rhs,
                            load_dst,
                            offset,
                            site,
                        } => {
                            result.fused_dispatch += 1;
                            // Bin half (base_cost above charged the sum of
                            // both halves' base costs).
                            let av = op.eval(eval(regs, *lhs), eval(regs, *rhs));
                            regs[bin_dst.index()] = av;
                            // Load half: its own dynamic-instruction slot
                            // and fuel check, so OutOfFuel aborts at the
                            // same point as unfused execution.
                            result.instructions += 1;
                            if result.instructions > fuel {
                                error = Some(VmError::OutOfFuel {
                                    executed: result.instructions,
                                });
                                break 'outer;
                            }
                            let a = av.wrapping_add(*offset) as u64;
                            if a >= addr_limit {
                                error = Some(VmError::InvalidMemoryAccess { addr: a });
                                break 'outer;
                            }
                            result.loads += 1;
                            result.load_site_counts[cur.func.index()][site.index()] += 1;
                            if let Some(mask) = repeat_mask {
                                if a & mask == last_line {
                                    pending_repeats += 1;
                                    result.fastpath_load_hits += 1;
                                } else {
                                    if pending_repeats != 0 {
                                        timing.note_line_repeats(last_addr, pending_repeats);
                                        pending_repeats = 0;
                                    }
                                    let stall = timing.access(a, result.cycles, AccessKind::Load);
                                    result.cycles += stall;
                                    result.mem_stall_cycles += stall;
                                    last_line = a & mask;
                                    last_addr = a;
                                }
                            } else {
                                let stall = timing.access(a, result.cycles, AccessKind::Load);
                                result.cycles += stall;
                                result.mem_stall_cycles += stall;
                            }
                            regs[load_dst.index()] = self.mem.read_u64(a) as i64;
                        }
                        Op::Bin { dst, op, lhs, rhs } => {
                            regs[dst.index()] = op.eval(eval(regs, *lhs), eval(regs, *rhs));
                        }
                        Op::Load { dst, addr, offset } => {
                            let a = (eval(regs, *addr)).wrapping_add(*offset) as u64;
                            if a >= addr_limit {
                                error = Some(VmError::InvalidMemoryAccess { addr: a });
                                break 'outer;
                            }
                            result.loads += 1;
                            result.load_site_counts[cur.func.index()][instr.id.index()] += 1;
                            if let Some(mask) = repeat_mask {
                                if a & mask == last_line {
                                    pending_repeats += 1;
                                    result.fastpath_load_hits += 1;
                                } else {
                                    if pending_repeats != 0 {
                                        timing.note_line_repeats(last_addr, pending_repeats);
                                        pending_repeats = 0;
                                    }
                                    let stall = timing.access(a, result.cycles, AccessKind::Load);
                                    result.cycles += stall;
                                    result.mem_stall_cycles += stall;
                                    last_line = a & mask;
                                    last_addr = a;
                                }
                            } else {
                                let stall = timing.access(a, result.cycles, AccessKind::Load);
                                result.cycles += stall;
                                result.mem_stall_cycles += stall;
                            }
                            regs[dst.index()] = self.mem.read_u64(a) as i64;
                        }
                        Op::Cmp { dst, op, lhs, rhs } => {
                            regs[dst.index()] = op.eval(eval(regs, *lhs), eval(regs, *rhs));
                        }
                        Op::Mov { dst, src } => regs[dst.index()] = eval(regs, *src),
                        Op::Const { dst, value } => regs[dst.index()] = *value,
                        Op::Store {
                            value,
                            addr,
                            offset,
                        } => {
                            let a = (eval(regs, *addr)).wrapping_add(*offset) as u64;
                            if a >= addr_limit {
                                error = Some(VmError::InvalidMemoryAccess { addr: a });
                                break 'outer;
                            }
                            result.stores += 1;
                            // The hierarchy's hit path is kind-agnostic, so
                            // a same-line store repeats exactly like a load.
                            if let Some(mask) = repeat_mask {
                                if a & mask == last_line {
                                    pending_repeats += 1;
                                    result.fastpath_load_hits += 1;
                                } else {
                                    if pending_repeats != 0 {
                                        timing.note_line_repeats(last_addr, pending_repeats);
                                        pending_repeats = 0;
                                    }
                                    let stall = timing.access(a, result.cycles, AccessKind::Store);
                                    result.cycles += stall;
                                    result.mem_stall_cycles += stall;
                                    last_line = a & mask;
                                    last_addr = a;
                                }
                            } else {
                                let stall = timing.access(a, result.cycles, AccessKind::Store);
                                result.cycles += stall;
                                result.mem_stall_cycles += stall;
                            }
                            let v = eval(regs, *value) as u64;
                            self.mem.write_u64(a, v);
                        }
                        Op::Select {
                            dst,
                            cond,
                            on_true,
                            on_false,
                        } => {
                            regs[dst.index()] = if eval(regs, *cond) != 0 {
                                eval(regs, *on_true)
                            } else {
                                eval(regs, *on_false)
                            };
                        }
                        Op::GlobalAddr { dst, global } => {
                            regs[dst.index()] = self.global_bases[global.index()] as i64;
                        }
                        Op::Prefetch { addr, offset } => {
                            let a = (eval(regs, *addr)).wrapping_add(*offset) as u64;
                            // Prefetch is non-faulting: a wild address (e.g.
                            // from a degraded profile) is dropped, not an
                            // error.
                            if a < addr_limit {
                                if pending_repeats != 0 {
                                    timing.note_line_repeats(last_addr, pending_repeats);
                                    pending_repeats = 0;
                                }
                                // Prefetch installs can displace the MRU
                                // hint; drop the repeat guarantee.
                                last_line = u64::MAX;
                                timing.prefetch(a, result.cycles);
                                result.prefetches += 1;
                            }
                        }
                        Op::Call {
                            dst,
                            callee,
                            args: call_args,
                        } => {
                            if stack.len() + 1 >= max_depth {
                                error = Some(VmError::CallDepthExceeded { limit: max_depth });
                                break 'outer;
                            }
                            let Some(cf) = module.functions.get(callee.index()) else {
                                error = Some(VmError::UnknownFunction {
                                    func: callee.index() as u32,
                                });
                                break 'outer;
                            };
                            if call_args.len() > cf.num_regs as usize {
                                error = Some(VmError::ArityMismatch {
                                    func: callee.index() as u32,
                                    expected: cf.num_params,
                                    got: call_args.len(),
                                });
                                break 'outer;
                            }
                            let mut new_regs = reg_pool.pop().unwrap_or_default();
                            new_regs.clear();
                            new_regs.resize(cf.num_regs as usize, 0);
                            for (i, a) in call_args.iter().enumerate() {
                                new_regs[i] = eval(regs, *a);
                            }
                            let new_frame = Frame {
                                func: *callee,
                                block: cf.entry,
                                idx: 0,
                                regs: new_regs,
                                ret_reg: *dst,
                            };
                            stack.push(std::mem::replace(&mut cur, new_frame));
                            continue 'outer;
                        }
                        Op::ProfileStride {
                            site,
                            addr,
                            offset,
                            slot,
                        } => {
                            let a = (eval(regs, *addr)).wrapping_add(*offset) as u64;
                            let c = profiling.stride_prof(cur.func, *site, *slot, a);
                            result.cycles += c;
                            result.profiling_cycles += c;
                        }
                        Op::ProfileEdge { edge } => {
                            let c = profiling.profile_edge(cur.func, *edge);
                            result.cycles += c;
                            result.profiling_cycles += c;
                        }
                        Op::TripCountCheck {
                            dst,
                            incoming,
                            outgoing,
                            shift,
                            ..
                        } => {
                            let (pred, c) =
                                profiling.trip_count_check(cur.func, incoming, outgoing, *shift);
                            result.cycles += c;
                            result.profiling_cycles += c;
                            cur.regs[dst.index()] = pred as i64;
                        }
                        Op::Alloc { dst, size } => {
                            let sz = eval(regs, *size).max(0) as u64;
                            let a = self.heap.alloc(sz);
                            self.alloc_sizes.insert(a, sz);
                            regs[dst.index()] = a as i64;
                        }
                        Op::Free { addr } => {
                            let a = eval(regs, *addr) as u64;
                            if let Some(sz) = self.alloc_sizes.remove(&a) {
                                self.heap.free(a, sz);
                            }
                        }
                    }
                }

                // Terminator.
                result.instructions += 1;
                if result.instructions > fuel {
                    error = Some(VmError::OutOfFuel {
                        executed: result.instructions,
                    });
                    break 'outer;
                }

                #[cfg(feature = "vm-selfprof")]
                {
                    let k = crate::selfprof::OpKind::of_term(&block.term);
                    self.selfprof.record(prev_kind, k);
                    prev_kind = Some(k);
                    result.selfprof_overhead_cycles += 1;
                }

                match &block.term {
                    Terminator::FusedCmpBr {
                        dst,
                        op,
                        lhs,
                        rhs,
                        then_,
                        else_,
                        ..
                    } => {
                        result.fused_dispatch += 1;
                        // Cmp half.
                        result.cycles += cost.alu;
                        let c = op.eval(eval(&cur.regs, *lhs), eval(&cur.regs, *rhs));
                        cur.regs[dst.index()] = c;
                        // Branch half: its own dynamic-instruction slot and
                        // fuel check.
                        result.instructions += 1;
                        if result.instructions > fuel {
                            error = Some(VmError::OutOfFuel {
                                executed: result.instructions,
                            });
                            break 'outer;
                        }
                        result.cycles += cost.branch;
                        cur.block = if c != 0 { *then_ } else { *else_ };
                        cur.idx = 0;
                        continue 'blocks;
                    }
                    Terminator::Br { target } => {
                        result.cycles += cost.branch;
                        cur.block = *target;
                        cur.idx = 0;
                        continue 'blocks;
                    }
                    Terminator::CondBr { cond, then_, else_ } => {
                        result.cycles += cost.branch;
                        let c = eval(&cur.regs, *cond);
                        cur.block = if c != 0 { *then_ } else { *else_ };
                        cur.idx = 0;
                        continue 'blocks;
                    }
                    Terminator::Ret { value } => {
                        result.cycles += cost.branch;
                        let v = value.map(|o| eval(&cur.regs, o));
                        match stack.pop() {
                            Some(caller) => {
                                let finished = std::mem::replace(&mut cur, caller);
                                reg_pool.push(finished.regs);
                                if let (Some(dst), Some(v)) = (finished.ret_reg, v) {
                                    cur.regs[dst.index()] = v;
                                }
                                continue 'outer;
                            }
                            None => {
                                result.return_value = v;
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }

        // Settle batched fast-path hits so the timing model's statistics
        // cover the whole run (including error aborts).
        if pending_repeats != 0 {
            timing.note_line_repeats(last_addr, pending_repeats);
        }
        match error {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }
}

/// Process-wide fusion decode cache: module → superinstruction-fused clone
/// (`stride_ir::fuse_module`), so harnesses that build many short-lived
/// [`Vm`]s over the same module pay the fusion pass once. Keyed by the
/// module's structural hash, with full structural equality verification
/// (each entry keeps a clone of the unfused module) so hash collisions
/// cannot alias distinct modules. Bounded: past capacity, new modules are
/// fused but not retained.
mod decode_cache {
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};
    use std::sync::{Arc, Mutex, OnceLock};
    use stride_ir::Module;

    const CAPACITY: usize = 64;

    type Shelf = HashMap<u64, Vec<(Module, Arc<Module>)>>;

    static CACHE: OnceLock<Mutex<Shelf>> = OnceLock::new();

    pub(crate) fn fused(module: &Module) -> Arc<Module> {
        let mut h = DefaultHasher::new();
        module.hash(&mut h);
        let key = h.finish();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Ok(shelf) = cache.lock() {
            if let Some(bucket) = shelf.get(&key) {
                for (stored, fused) in bucket {
                    if stored == module {
                        return Arc::clone(fused);
                    }
                }
            }
        }
        let (fused, _stats) = stride_ir::fuse_module(module);
        let fused = Arc::new(fused);
        if let Ok(mut shelf) = cache.lock() {
            if shelf.len() < CAPACITY || shelf.contains_key(&key) {
                let bucket = shelf.entry(key).or_default();
                if !bucket.iter().any(|(stored, _)| stored == module) {
                    bucket.push((module.clone(), Arc::clone(&fused)));
                }
            }
        }
        fused
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{BinOp, CmpOp, ModuleBuilder, Operand};

    fn run_entry(module: &Module, args: &[i64]) -> RunResult {
        let mut vm = Vm::new(module, VmConfig::default());
        vm.run(args, &mut FlatTiming, &mut NullRuntime)
            .expect("run")
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 2);
        let mut fb = mb.function(f);
        let s = fb.add(fb.param(0), fb.param(1));
        let d = fb.mul(s, 10i64);
        fb.ret(Some(Operand::Reg(d)));
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run_entry(&m, &[3, 4]).return_value, Some(70));
    }

    #[test]
    fn counted_loop_sums() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let sum = fb.const_(0);
        fb.counted_loop(fb.param(0), |fb, i| {
            fb.bin_to(sum, BinOp::Add, sum, i);
        });
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run_entry(&m, &[10]).return_value, Some(45));
    }

    #[test]
    fn memory_round_trip_and_counters() {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("buf", 64);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        fb.store(41i64, base, 8);
        let (v, _) = fb.load(base, 8);
        let w = fb.add(v, 1i64);
        fb.ret(Some(Operand::Reg(w)));
        mb.set_entry(f);
        let m = mb.finish();
        let r = run_entry(&m, &[]);
        assert_eq!(r.return_value, Some(42));
        assert_eq!(r.loads, 1);
        assert_eq!(r.stores, 1);
    }

    #[test]
    fn alloc_produces_usable_sequential_memory() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let a = fb.alloc(16i64);
        let b = fb.alloc(16i64);
        fb.store(7i64, a, 0);
        fb.store(8i64, b, 0);
        let (va, _) = fb.load(a, 0);
        let (vb, _) = fb.load(b, 0);
        let diff = fb.sub(b, a);
        let s = fb.add(va, vb);
        let out = fb.add(s, diff);
        fb.ret(Some(Operand::Reg(out)));
        mb.set_entry(f);
        let m = mb.finish();
        // 7 + 8 + 16-byte stride
        assert_eq!(run_entry(&m, &[]).return_value, Some(31));
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut mb = ModuleBuilder::new();
        let sq = mb.declare_function("square", 1);
        {
            let mut fb = mb.function(sq);
            let x = fb.param(0);
            let y = fb.mul(x, x);
            fb.ret(Some(Operand::Reg(y)));
        }
        let f = mb.declare_function("main", 1);
        {
            let mut fb = mb.function(f);
            let r = fb.call(sq, &[Operand::Reg(fb.param(0))]);
            fb.ret(Some(Operand::Reg(r)));
        }
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run_entry(&m, &[9]).return_value, Some(81));
    }

    #[test]
    fn recursion_counts_depth() {
        // f(n) = n <= 0 ? 0 : n + f(n-1)
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("tri", 1);
        {
            let mut fb = mb.function(f);
            let n = fb.param(0);
            let base = fb.new_block();
            let rec = fb.new_block();
            let c = fb.cmp(CmpOp::Le, n, 0i64);
            fb.cond_br(c, base, rec);
            fb.switch_to(base);
            fb.ret(Some(Operand::Imm(0)));
            fb.switch_to(rec);
            let n1 = fb.sub(n, 1i64);
            let r = fb.call(f, &[Operand::Reg(n1)]);
            let s = fb.add(n, r);
            fb.ret(Some(Operand::Reg(s)));
        }
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run_entry(&m, &[100]).return_value, Some(5050));
    }

    #[test]
    fn call_depth_limit_enforced() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("inf", 0);
        {
            let mut fb = mb.function(f);
            fb.call_void(f, &[]);
            fb.ret(None);
        }
        mb.set_entry(f);
        let m = mb.finish();
        let mut vm = Vm::new(
            &m,
            VmConfig {
                max_call_depth: 64,
                ..VmConfig::default()
            },
        );
        let err = vm.run(&[], &mut FlatTiming, &mut NullRuntime).unwrap_err();
        assert_eq!(err, VmError::CallDepthExceeded { limit: 64 });
    }

    #[test]
    fn fuel_limit_enforced() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("spin", 0);
        {
            let mut fb = mb.function(f);
            let b = fb.new_block();
            fb.br(b);
            fb.switch_to(b);
            fb.br(b);
        }
        mb.set_entry(f);
        let m = mb.finish();
        let mut vm = Vm::new(
            &m,
            VmConfig {
                fuel: 1000,
                ..VmConfig::default()
            },
        );
        let err = vm.run(&[], &mut FlatTiming, &mut NullRuntime).unwrap_err();
        assert!(matches!(err, VmError::OutOfFuel { .. }));
    }

    #[test]
    fn predicated_off_instruction_is_squashed() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let p0 = fb.const_(0);
        let p1 = fb.const_(1);
        let out = fb.const_(5);
        fb.emit_pred(
            p0,
            Op::Mov {
                dst: out,
                src: Operand::Imm(100),
            },
        );
        fb.emit_pred(
            p1,
            Op::Bin {
                dst: out,
                op: BinOp::Add,
                lhs: Operand::Reg(out),
                rhs: Operand::Imm(1),
            },
        );
        fb.ret(Some(Operand::Reg(out)));
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run_entry(&m, &[]).return_value, Some(6));
    }

    #[test]
    fn predicated_prefetch_not_counted_when_off() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let p0 = fb.const_(0);
        let a = fb.const_(0x2000_0000);
        fb.emit_pred(
            p0,
            Op::Prefetch {
                addr: Operand::Reg(a),
                offset: 0,
            },
        );
        fb.prefetch(a, 64);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let r = run_entry(&m, &[]);
        assert_eq!(r.prefetches, 1);
    }

    #[test]
    fn load_site_counts_are_per_site() {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("buf", 1024);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let mut hot_site = None;
        fb.counted_loop(10i64, |fb, i| {
            let off = fb.mul(i, 8i64);
            let a = fb.add(base, off);
            let (_, site) = fb.load(a, 0);
            hot_site = Some(site);
        });
        let (_, cold_site) = fb.load(base, 0);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let r = run_entry(&m, &[]);
        assert_eq!(r.load_count(f, hot_site.unwrap()), 10);
        assert_eq!(r.load_count(f, cold_site), 1);
        assert_eq!(r.loads, 11);
    }

    #[test]
    fn profiling_hooks_receive_addresses_and_charge_cycles() {
        #[derive(Default)]
        struct Recorder {
            edges: Vec<(FuncId, EdgeId)>,
            strides: Vec<(InstrId, u64)>,
        }
        impl ProfilingRuntime for Recorder {
            fn profile_edge(&mut self, func: FuncId, edge: EdgeId) -> u64 {
                self.edges.push((func, edge));
                2
            }
            fn trip_count_check(
                &mut self,
                _f: FuncId,
                _i: &[EdgeId],
                _o: &[EdgeId],
                _s: u32,
            ) -> (bool, u64) {
                (true, 4)
            }
            fn stride_prof(&mut self, _f: FuncId, site: InstrId, _slot: u32, addr: u64) -> u64 {
                self.strides.push((site, addr));
                10
            }
        }

        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("buf", 64);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let (_, site) = fb.load(base, 16);
        // hand-emit profiling pseudo-instructions
        let pr = fb.new_reg();
        let one = fb.const_(1);
        fb.emit_pred(
            one,
            Op::ProfileEdge {
                edge: EdgeId::new(3),
            },
        );
        fb.emit_pred(
            one,
            Op::TripCountCheck {
                dst: pr,
                header: BlockId::new(0),
                incoming: vec![],
                outgoing: vec![],
                shift: 7,
            },
        );
        fb.emit_pred(
            pr,
            Op::ProfileStride {
                site,
                addr: Operand::Reg(base),
                offset: 16,
                slot: 0,
            },
        );
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();

        let mut vm = Vm::new(&m, VmConfig::default());
        let mut rec = Recorder::default();
        let r = vm.run(&[], &mut FlatTiming, &mut rec).expect("run");
        assert_eq!(rec.edges, vec![(f, EdgeId::new(3))]);
        assert_eq!(rec.strides.len(), 1);
        assert_eq!(rec.strides[0].0, site);
        // the stride hook saw the load's address: global base + 16
        let vm2 = Vm::new(&m, VmConfig::default());
        let gb = vm2.global_base(g);
        assert_eq!(rec.strides[0].1, gb + 16);
        assert_eq!(r.profiling_cycles, 2 + 4 + 10);
    }

    #[test]
    fn memory_stalls_accumulate() {
        struct TenCycle;
        impl MemoryTiming for TenCycle {
            fn access(&mut self, _a: u64, _c: u64, _k: AccessKind) -> u64 {
                10
            }
            fn prefetch(&mut self, _a: u64, _c: u64) {}
        }
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("buf", 64);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let _ = fb.load(base, 0);
        let _ = fb.load(base, 8);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut vm = Vm::new(&m, VmConfig::default());
        let r = vm.run(&[], &mut TenCycle, &mut NullRuntime).expect("run");
        assert_eq!(r.mem_stall_cycles, 20);
        assert!(r.cycles >= 20);
    }

    #[test]
    fn wild_demand_access_is_an_error_not_a_panic() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let a = fb.const_(1i64 << 50);
        let _ = fb.load(a, 0);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut vm = Vm::new(&m, VmConfig::default());
        let err = vm.run(&[], &mut FlatTiming, &mut NullRuntime).unwrap_err();
        assert_eq!(err, VmError::InvalidMemoryAccess { addr: 1u64 << 50 });
    }

    #[test]
    fn wild_prefetch_is_dropped_silently() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let a = fb.const_(1i64 << 50);
        fb.prefetch(a, 0);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let r = run_entry(&m, &[]);
        assert_eq!(r.prefetches, 0);
    }

    #[test]
    fn unknown_entry_function_is_an_error() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut vm = Vm::new(&m, VmConfig::default());
        let err = vm
            .run_function(FuncId::new(7), &[], &mut FlatTiming, &mut NullRuntime)
            .unwrap_err();
        assert_eq!(err, VmError::UnknownFunction { func: 7 });
    }

    #[test]
    fn entry_arity_mismatch_is_an_error() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 2);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut vm = Vm::new(&m, VmConfig::default());
        let err = vm.run(&[1], &mut FlatTiming, &mut NullRuntime).unwrap_err();
        assert_eq!(
            err,
            VmError::ArityMismatch {
                func: 0,
                expected: 2,
                got: 1
            }
        );
    }

    /// Strided sum + pointer-ish reloads + a call: exercises FusedBinLoad,
    /// FusedCmpBr, and plain ops in one workload.
    fn fusible_workload() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 1 << 12);
        let helper = mb.declare_function("helper", 1);
        {
            let mut fb = mb.function(helper);
            let x = fb.param(0);
            let y = fb.mul(x, 3i64);
            fb.ret(Some(Operand::Reg(y)));
        }
        let f = mb.declare_function("main", 1);
        {
            let mut fb = mb.function(f);
            let base = fb.global_addr(g);
            let sum = fb.mov(0i64);
            fb.counted_loop(fb.param(0), |fb, i| {
                let off = fb.mul(i, 8i64);
                let a = fb.add(base, off);
                let (v, _) = fb.load(a, 0);
                fb.store(v, a, 64);
                let h = fb.call(helper, &[Operand::Reg(v)]);
                fb.bin_to(sum, BinOp::Add, sum, h);
            });
            fb.ret(Some(Operand::Reg(sum)));
        }
        mb.set_entry(f);
        mb.finish()
    }

    /// Asserts every logical output of two runs matches (meta-counters like
    /// fused_dispatch are intentionally excluded — they describe the
    /// interpreter, not the program).
    fn assert_logical_identity(a: &RunResult, b: &RunResult) {
        assert_eq!(a.return_value, b.return_value);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.stores, b.stores);
        assert_eq!(a.prefetches, b.prefetches);
        assert_eq!(a.mem_stall_cycles, b.mem_stall_cycles);
        assert_eq!(a.profiling_cycles, b.profiling_cycles);
        assert_eq!(a.load_site_counts, b.load_site_counts);
    }

    #[test]
    fn fused_and_unfused_runs_are_byte_identical() {
        let m = fusible_workload();
        let mut fused_vm = Vm::new(&m, VmConfig::default());
        let fused = fused_vm
            .run(&[50], &mut FlatTiming, &mut NullRuntime)
            .expect("fused run");
        let mut plain_vm = Vm::new(
            &m,
            VmConfig {
                fuse: false,
                ..VmConfig::default()
            },
        );
        let plain = plain_vm
            .run(&[50], &mut FlatTiming, &mut NullRuntime)
            .expect("unfused run");
        assert!(fused.fused_dispatch > 0, "fusion must actually engage");
        assert_eq!(plain.fused_dispatch, 0);
        assert_logical_identity(&fused, &plain);
    }

    #[test]
    fn fused_out_of_fuel_aborts_at_identical_instruction() {
        // Sweep fuel across the whole run, including values that land
        // between the two halves of a superinstruction.
        let m = fusible_workload();
        let full = Vm::new(&m, VmConfig::default())
            .run(&[6], &mut FlatTiming, &mut NullRuntime)
            .expect("full run")
            .instructions;
        for fuel in 1..=full {
            let mut fused_vm = Vm::new(
                &m,
                VmConfig {
                    fuel,
                    ..VmConfig::default()
                },
            );
            let fused = fused_vm.run(&[6], &mut FlatTiming, &mut NullRuntime);
            let mut plain_vm = Vm::new(
                &m,
                VmConfig {
                    fuel,
                    fuse: false,
                    ..VmConfig::default()
                },
            );
            let plain = plain_vm.run(&[6], &mut FlatTiming, &mut NullRuntime);
            match (&fused, &plain) {
                (Err(a), Err(b)) => assert_eq!(a, b, "fuel {fuel}"),
                (Ok(a), Ok(b)) => assert_logical_identity(a, b),
                _ => panic!("fuel {fuel}: one run aborted, the other finished"),
            }
        }
    }

    #[test]
    fn decode_cache_shares_fused_modules() {
        let m = fusible_workload();
        let a = Vm::new(&m, VmConfig::default());
        let b = Vm::new(&m, VmConfig::default());
        let (fa, fb) = (a.fused.as_ref().unwrap(), b.fused.as_ref().unwrap());
        assert!(std::sync::Arc::ptr_eq(fa, fb), "same module fuses once");
        let off = Vm::new(
            &m,
            VmConfig {
                fuse: false,
                ..VmConfig::default()
            },
        );
        assert!(off.fused.is_none());
    }

    #[test]
    fn last_line_fast_path_batches_exactly() {
        // A timing model that counts its calls and knows its line size.
        #[derive(Default)]
        struct Counting {
            accesses: u64,
            noted: u64,
        }
        impl MemoryTiming for Counting {
            fn access(&mut self, _a: u64, _c: u64, _k: AccessKind) -> u64 {
                self.accesses += 1;
                0
            }
            fn prefetch(&mut self, _a: u64, _c: u64) {}
            fn repeat_line_size(&self) -> Option<u64> {
                Some(64)
            }
            fn note_line_repeats(&mut self, _addr: u64, n: u64) {
                self.noted += n;
            }
        }

        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("buf", 256);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        // Four loads and a store of one line, then a load of another line.
        let _ = fb.load(base, 0);
        let _ = fb.load(base, 8);
        let _ = fb.load(base, 16);
        let _ = fb.load(base, 24);
        fb.store(1i64, base, 32);
        let _ = fb.load(base, 128);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();

        let mut vm = Vm::new(&m, VmConfig::default());
        let mut t = Counting::default();
        let r = vm.run(&[], &mut t, &mut NullRuntime).expect("run");
        assert_eq!(r.loads, 5);
        assert_eq!(r.stores, 1);
        assert_eq!(r.fastpath_load_hits, 4, "same-line loads and stores batch");
        assert_eq!(t.accesses, 2, "only line-changing accesses reach the model");
        assert_eq!(t.noted, 4, "batched repeats are settled");
        assert_eq!(t.accesses + t.noted, r.loads + r.stores, "no access lost");
    }

    #[test]
    fn fast_path_flushes_before_stores_and_prefetches() {
        #[derive(Default)]
        struct Ordered {
            events: Vec<(char, u64)>,
        }
        impl MemoryTiming for Ordered {
            fn access(&mut self, a: u64, _c: u64, k: AccessKind) -> u64 {
                self.events.push((
                    match k {
                        AccessKind::Load => 'l',
                        AccessKind::Store => 's',
                    },
                    a,
                ));
                0
            }
            fn prefetch(&mut self, a: u64, _c: u64) {
                self.events.push(('p', a));
            }
            fn repeat_line_size(&self) -> Option<u64> {
                Some(64)
            }
            fn note_line_repeats(&mut self, addr: u64, n: u64) {
                self.events.push(('r', addr));
                self.events.push(('n', n));
            }
        }

        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("buf", 256);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let _ = fb.load(base, 0);
        let _ = fb.load(base, 8); // pending repeat
        fb.store(1i64, base, 128); // different line: must flush first
        let _ = fb.load(base, 136); // store's line is MRU: repeat
        fb.prefetch(base, 192); // must flush before the prefetch
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();

        let mut vm = Vm::new(&m, VmConfig::default());
        let mut t = Ordered::default();
        vm.run(&[], &mut t, &mut NullRuntime).expect("run");
        let tags: Vec<char> = t.events.iter().map(|e| e.0).collect();
        assert_eq!(tags, vec!['l', 'r', 'n', 's', 'r', 'n', 'p']);
    }

    #[test]
    fn free_and_reuse_through_vm() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let a = fb.alloc(32i64);
        fb.free(a);
        let b = fb.alloc(32i64);
        let same = fb.cmp(CmpOp::Eq, a, b);
        fb.ret(Some(Operand::Reg(same)));
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run_entry(&m, &[]).return_value, Some(1));
    }
}
