//! IR interpreter and simulated machine for the stride-prefetch
//! reproduction.
//!
//! The paper evaluates on a real 733 MHz Itanium; this crate is the
//! substitute substrate: it executes [`stride_ir`] modules over a sparse
//! simulated memory, charging cycles from a latency [`CostModel`], a
//! pluggable [`MemoryTiming`] (the cache hierarchy lives in
//! `stride-memsim`), and a pluggable [`ProfilingRuntime`] (the
//! instrumentation runtime lives in `stride-profiling`). Speedup and
//! overhead figures are ratios of the produced cycle counts.
//!
//! # Example
//!
//! ```
//! use stride_ir::{ModuleBuilder, Operand};
//! use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};
//!
//! let mut mb = ModuleBuilder::new();
//! let f = mb.declare_function("main", 1);
//! let mut fb = mb.function(f);
//! let doubled = fb.add(fb.param(0), fb.param(0));
//! fb.ret(Some(Operand::Reg(doubled)));
//! mb.set_entry(f);
//! let module = mb.finish();
//!
//! let mut vm = Vm::new(&module, VmConfig::default());
//! let result = vm.run(&[21], &mut FlatTiming, &mut NullRuntime)?;
//! assert_eq!(result.return_value, Some(42));
//! # Ok::<(), stride_vm::VmError>(())
//! ```

pub mod cost;
pub mod interp;
pub mod memory;
#[cfg(feature = "vm-selfprof")]
pub mod selfprof;
pub mod trace;

pub use cost::CostModel;
pub use interp::{
    AccessKind, FlatTiming, MemoryTiming, NullRuntime, ProfilingRuntime, RunResult, Vm, VmConfig,
    VmError,
};
pub use memory::{layout_globals, Heap, Memory, GLOBAL_BASE, HEAP_BASE};
pub use trace::{TraceEvent, TraceKind, Tracer};
