//! Sparse simulated memory and heap allocator.
//!
//! The address space is a flat 64-bit space backed by 4 KiB pages that
//! materialize on first touch. Reads of untouched memory return zero.
//!
//! The allocator matters more than it looks: the paper traces the stride
//! patterns of irregular programs back to *allocation order* ("the linked
//! elements and the strings are allocated in the order that is
//! referenced", §1). [`Heap`] is a bump allocator with per-size free
//! lists, so workloads that allocate a list in traversal order produce
//! constant strides, while workloads that churn the free lists produce
//! irregular address sequences — exactly the behaviours the profiler must
//! tell apart.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Base address of the global data region.
pub const GLOBAL_BASE: u64 = 0x0000_1000;
/// Base address of the simulated heap.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// splitmix64 over page numbers. Page lookups sit on the VM's load/store
/// path, where SipHash pays for a collision resistance the simulator does
/// not need (page numbers are not attacker-controlled, and the map's
/// iteration order is never observed).
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) ^ u64::from(b);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
    fn finish(&self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Sparse byte-addressable memory.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one little-endian `u64`, returning 0 for untouched bytes.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        // Fast path: the access lies within one page (the overwhelmingly
        // common case — all VM-visible data is 8-byte aligned).
        if off <= PAGE_SIZE - 8 {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&p[off..off + 8]);
                    u64::from_le_bytes(b)
                }
                None => 0,
            }
        } else {
            let mut bytes = [0u8; 8];
            self.read_bytes(addr, &mut bytes);
            u64::from_le_bytes(bytes)
        }
    }

    /// Writes one little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            let p = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[off..off + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_bytes(addr, &value.to_le_bytes());
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut i = 0;
        while i < buf.len() {
            let a = addr.wrapping_add(i as u64);
            let page = a >> PAGE_SHIFT;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let take = (PAGE_SIZE - off).min(buf.len() - i);
            match self.pages.get(&page) {
                Some(p) => buf[i..i + take].copy_from_slice(&p[off..off + take]),
                None => buf[i..i + take].fill(0),
            }
            i += take;
        }
    }

    /// Writes all of `bytes` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut i = 0;
        while i < bytes.len() {
            let a = addr.wrapping_add(i as u64);
            let page = a >> PAGE_SHIFT;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let take = (PAGE_SIZE - off).min(bytes.len() - i);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[off..off + take].copy_from_slice(&bytes[i..i + take]);
            i += take;
        }
    }

    /// Number of materialized pages (for tests and memory accounting).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Bump allocator with per-size free lists over a [`Memory`].
#[derive(Debug)]
pub struct Heap {
    next: u64,
    /// LIFO free lists keyed by rounded allocation size.
    free_lists: HashMap<u64, Vec<u64>>,
    allocated: u64,
}

impl Heap {
    /// Allocation granule and minimum alignment in bytes.
    pub const ALIGN: u64 = 16;

    /// Creates a heap starting at [`HEAP_BASE`].
    pub fn new() -> Self {
        Self {
            next: HEAP_BASE,
            free_lists: HashMap::new(),
            allocated: 0,
        }
    }

    fn round(size: u64) -> u64 {
        size.max(1).div_ceil(Self::ALIGN) * Self::ALIGN
    }

    /// Allocates `size` bytes (rounded up to the 16-byte granule),
    /// preferring the most recently freed block of the same rounded size —
    /// the LIFO reuse typical of malloc implementations, which is what
    /// breaks stride patterns after churn.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let rounded = Self::round(size);
        self.allocated += rounded;
        if let Some(list) = self.free_lists.get_mut(&rounded) {
            if let Some(addr) = list.pop() {
                return addr;
            }
        }
        let addr = self.next;
        self.next += rounded;
        addr
    }

    /// Returns a block of `size` bytes at `addr` to the free list.
    ///
    /// The caller must pass the same size used at allocation; the heap
    /// keeps no per-block metadata (the VM's `Free` instruction records
    /// sizes on the side).
    pub fn free(&mut self, addr: u64, size: u64) {
        let rounded = Self::round(size);
        self.allocated = self.allocated.saturating_sub(rounded);
        self.free_lists.entry(rounded).or_default().push(addr);
    }

    /// Current bump pointer (exclusive end of the ever-touched heap).
    pub fn high_water(&self) -> u64 {
        self.next
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

/// Assigns addresses to a module's globals: sequential, 64-byte aligned,
/// starting at [`GLOBAL_BASE`]. Returns the base address of each global.
pub fn layout_globals(sizes: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(sizes.len());
    let mut next = GLOBAL_BASE;
    for &size in sizes {
        out.push(next);
        let rounded = size.max(1).div_ceil(64) * 64;
        next += rounded;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0xdead_beef), 0);
        assert_eq!(mem.page_count(), 0);
    }

    #[test]
    fn read_back_written_value() {
        let mut mem = Memory::new();
        mem.write_u64(64, 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u64(64), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.page_count(), 1);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles first page boundary
        mem.write_u64(addr, u64::MAX);
        assert_eq!(mem.read_u64(addr), u64::MAX);
        assert_eq!(mem.page_count(), 2);
        // neighbors unaffected
        assert_eq!(mem.read_u64(addr - 8), 0);
    }

    #[test]
    fn fast_and_bytewise_paths_agree() {
        let mut mem = Memory::new();
        mem.write_bytes(100, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(
            mem.read_u64(100),
            u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8])
        );
        mem.write_u64(101, 0xAABB);
        let mut b = [0u8; 8];
        mem.read_bytes(101, &mut b);
        assert_eq!(u64::from_le_bytes(b), 0xAABB);
    }

    #[test]
    fn bump_allocation_is_sequential() {
        let mut h = Heap::new();
        let a = h.alloc(24); // rounds to 32
        let b = h.alloc(24);
        let c = h.alloc(24);
        assert_eq!(b - a, 32);
        assert_eq!(c - b, 32);
        assert_eq!(h.allocated_bytes(), 96);
    }

    #[test]
    fn free_list_reuse_is_lifo() {
        let mut h = Heap::new();
        let a = h.alloc(16);
        let b = h.alloc(16);
        h.free(a, 16);
        h.free(b, 16);
        assert_eq!(h.alloc(16), b); // most recently freed first
        assert_eq!(h.alloc(16), a);
        let c = h.alloc(16);
        assert!(c > b); // list empty again: bump
    }

    #[test]
    fn different_size_classes_do_not_mix() {
        let mut h = Heap::new();
        let a = h.alloc(16);
        h.free(a, 16);
        let b = h.alloc(32);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_size_allocation_still_unique() {
        let mut h = Heap::new();
        let a = h.alloc(0);
        let b = h.alloc(0);
        assert_ne!(a, b);
    }

    #[test]
    fn global_layout_is_sequential_and_aligned() {
        let bases = layout_globals(&[100, 64, 1]);
        assert_eq!(bases[0], GLOBAL_BASE);
        assert_eq!(bases[1], GLOBAL_BASE + 128);
        assert_eq!(bases[2], GLOBAL_BASE + 192);
        assert!(bases.iter().all(|b| b % 64 == 0));
    }

    #[test]
    fn globals_below_heap() {
        let bases = layout_globals(&[1 << 20]);
        assert!(bases[0] + (1 << 20) < HEAP_BASE);
    }
}
