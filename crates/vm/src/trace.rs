//! Memory-trace capture: a [`MemoryTiming`] adapter that records the
//! address stream while delegating timing to an inner model.
//!
//! Used for debugging workloads (what does this loop's address stream
//! really look like?) and by tests that validate stride characteristics
//! against the profilers.

use crate::interp::{AccessKind, MemoryTiming};
use std::collections::HashSet;

/// One recorded memory event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Byte address accessed (or prefetched).
    pub addr: u64,
    /// Simulated cycle at which the access was issued.
    pub cycle: u64,
    /// Load, store, or prefetch.
    pub kind: TraceKind,
}

/// Kind of a traced event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Demand load.
    Load,
    /// Store.
    Store,
    /// Software prefetch.
    Prefetch,
}

/// Wraps a [`MemoryTiming`] and records every event it sees.
///
/// Capacity-bounded: beyond the capacity given to [`Tracer::new`],
/// recording stops
/// (the counters keep counting) so a runaway loop cannot exhaust memory.
#[derive(Debug)]
pub struct Tracer<T> {
    inner: T,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl<T: MemoryTiming> Tracer<T> {
    /// Wraps `inner`, recording up to `capacity` events.
    pub fn new(inner: T, capacity: usize) -> Self {
        Tracer {
            inner,
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// The recorded events, in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit in `capacity`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The wrapped timing model.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Addresses of the recorded demand loads, in order.
    pub fn load_addresses(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.kind == TraceKind::Load)
            .map(|e| e.addr)
            .collect()
    }

    /// Number of distinct cache lines touched by recorded events.
    pub fn unique_lines(&self, line_size: u64) -> usize {
        let lines: HashSet<u64> = self.events.iter().map(|e| e.addr / line_size).collect();
        lines.len()
    }

    /// Byte extent `[min, max]` of the recorded addresses, if any.
    pub fn footprint(&self) -> Option<(u64, u64)> {
        let min = self.events.iter().map(|e| e.addr).min()?;
        let max = self.events.iter().map(|e| e.addr).max()?;
        Some((min, max))
    }

    fn record(&mut self, addr: u64, cycle: u64, kind: TraceKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { addr, cycle, kind });
        } else {
            self.dropped += 1;
        }
    }
}

impl<T: MemoryTiming> MemoryTiming for Tracer<T> {
    fn access(&mut self, addr: u64, cycle: u64, kind: AccessKind) -> u64 {
        let k = match kind {
            AccessKind::Load => TraceKind::Load,
            AccessKind::Store => TraceKind::Store,
        };
        self.record(addr, cycle, k);
        self.inner.access(addr, cycle, kind)
    }

    fn prefetch(&mut self, addr: u64, cycle: u64) {
        self.record(addr, cycle, TraceKind::Prefetch);
        self.inner.prefetch(addr, cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{FlatTiming, NullRuntime, Vm, VmConfig};
    use stride_ir::{BinOp, ModuleBuilder};

    fn strided_module() -> stride_ir::Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 4096);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let p = fb.mov(base);
        fb.counted_loop(16i64, |fb, _| {
            let _ = fb.load(p, 0);
            fb.prefetch(p, 128);
            fb.bin_to(p, BinOp::Add, p, 32i64);
        });
        fb.store(7i64, base, 0);
        fb.ret(None);
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn records_loads_stores_prefetches_in_order() {
        let m = strided_module();
        let mut vm = Vm::new(&m, VmConfig::default());
        let mut tracer = Tracer::new(FlatTiming, 1024);
        vm.run(&[], &mut tracer, &mut NullRuntime).expect("run");
        let loads = tracer.load_addresses();
        assert_eq!(loads.len(), 16);
        // the load addresses stride by 32
        for pair in loads.windows(2) {
            assert_eq!(pair[1] - pair[0], 32);
        }
        let prefetches = tracer
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Prefetch)
            .count();
        assert_eq!(prefetches, 16);
        let stores = tracer
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Store)
            .count();
        assert_eq!(stores, 1);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_recording() {
        let m = strided_module();
        let mut vm = Vm::new(&m, VmConfig::default());
        let mut tracer = Tracer::new(FlatTiming, 5);
        vm.run(&[], &mut tracer, &mut NullRuntime).expect("run");
        assert_eq!(tracer.events().len(), 5);
        assert_eq!(tracer.dropped(), 33 - 5); // 16 loads + 16 prefetches + 1 store
    }

    #[test]
    fn footprint_and_unique_lines() {
        let m = strided_module();
        let mut vm = Vm::new(&m, VmConfig::default());
        let mut tracer = Tracer::new(FlatTiming, 1024);
        vm.run(&[], &mut tracer, &mut NullRuntime).expect("run");
        let (min, max) = tracer.footprint().expect("nonempty");
        // loads span 15*32 bytes; prefetches reach 128 beyond the last load
        assert_eq!(max - min, 15 * 32 + 128);
        assert!(tracer.unique_lines(64) >= 8);
    }

    #[test]
    fn cycles_are_monotone() {
        let m = strided_module();
        let mut vm = Vm::new(&m, VmConfig::default());
        let mut tracer = Tracer::new(FlatTiming, 1024);
        vm.run(&[], &mut tracer, &mut NullRuntime).expect("run");
        for pair in tracer.events().windows(2) {
            assert!(pair[0].cycle <= pair[1].cycle);
        }
    }
}
