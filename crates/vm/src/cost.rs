//! Latency-based cycle cost model.
//!
//! The Itanium of the paper is a 6-issue in-order machine; modeling its
//! issue logic is out of scope, so the VM charges each dynamic instruction
//! a base latency and adds memory stalls reported by the
//! [`MemoryTiming`](crate::interp::MemoryTiming) implementation. Speedups
//! and overheads in the paper are *ratios* of execution times, which a
//! latency model reproduces in shape as long as memory stalls dominate —
//! they do: the paper reports ~40% of SPECINT2000 cycles stalled on data
//! cache and DTLB misses on Itanium.

use stride_ir::Op;

/// Base cycle cost of each opcode, before memory stalls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU ops, moves, compares, selects.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide/remainder (no hardware divide on Itanium; this
    /// stands for the multi-instruction sequence).
    pub div: u64,
    /// Issue cost of a load (L1-hit latency is part of this; misses add
    /// stalls on top).
    pub load: u64,
    /// Issue cost of a store.
    pub store: u64,
    /// Issue cost of a prefetch (`lfetch` occupies a memory slot but does
    /// not stall).
    pub prefetch: u64,
    /// Allocator call (amortized bump-pointer malloc).
    pub alloc: u64,
    /// Free call.
    pub free: u64,
    /// Call + return linkage overhead, charged at the call site.
    pub call: u64,
    /// Taken or not-taken branch (in-order, well-predicted loops).
    pub branch: u64,
}

impl CostModel {
    /// The default model used by all experiments.
    pub const fn itanium() -> Self {
        CostModel {
            alu: 1,
            mul: 2,
            div: 12,
            load: 2,
            store: 1,
            prefetch: 1,
            alloc: 24,
            free: 10,
            call: 6,
            branch: 1,
        }
    }

    /// Base cost of `op` (memory stalls and profiling-runtime costs are
    /// charged separately by the VM).
    pub fn base_cost(&self, op: &Op) -> u64 {
        match op {
            Op::Const { .. }
            | Op::Mov { .. }
            | Op::Cmp { .. }
            | Op::Select { .. }
            | Op::GlobalAddr { .. } => self.alu,
            Op::Bin { op, .. } => match op {
                stride_ir::BinOp::Mul => self.mul,
                stride_ir::BinOp::Div | stride_ir::BinOp::Rem => self.div,
                _ => self.alu,
            },
            Op::Load { .. } => self.load,
            // A superinstruction costs the sum of its halves: fusion saves
            // dispatch work in the interpreter, never simulated cycles.
            Op::FusedBinLoad { op, .. } => {
                let bin = match op {
                    stride_ir::BinOp::Mul => self.mul,
                    stride_ir::BinOp::Div | stride_ir::BinOp::Rem => self.div,
                    _ => self.alu,
                };
                bin + self.load
            }
            Op::FusedBinBin { a_op, b_op, .. } => {
                let of = |op: &stride_ir::BinOp| match op {
                    stride_ir::BinOp::Mul => self.mul,
                    stride_ir::BinOp::Div | stride_ir::BinOp::Rem => self.div,
                    _ => self.alu,
                };
                of(a_op) + of(b_op)
            }
            Op::Store { .. } => self.store,
            Op::Prefetch { .. } => self.prefetch,
            Op::Alloc { .. } => self.alloc,
            Op::Free { .. } => self.free,
            Op::Call { .. } => self.call,
            // Profiling pseudo-instructions: their cost comes from the
            // profiling runtime (it knows which path was taken), so the
            // base cost here is zero.
            Op::ProfileEdge { .. } | Op::TripCountCheck { .. } | Op::ProfileStride { .. } => 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::itanium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{BinOp, Operand, Reg};

    #[test]
    fn default_is_itanium() {
        assert_eq!(CostModel::default(), CostModel::itanium());
    }

    #[test]
    fn bin_costs_depend_on_operator() {
        let m = CostModel::itanium();
        let mk = |op| Op::Bin {
            dst: Reg::new(0),
            op,
            lhs: Operand::Imm(1),
            rhs: Operand::Imm(2),
        };
        assert_eq!(m.base_cost(&mk(BinOp::Add)), m.alu);
        assert_eq!(m.base_cost(&mk(BinOp::Mul)), m.mul);
        assert_eq!(m.base_cost(&mk(BinOp::Div)), m.div);
        assert_eq!(m.base_cost(&mk(BinOp::Rem)), m.div);
    }

    #[test]
    fn profiling_ops_have_zero_base_cost() {
        let m = CostModel::itanium();
        assert_eq!(
            m.base_cost(&Op::ProfileEdge {
                edge: stride_ir::EdgeId::new(0)
            }),
            0
        );
    }

    #[test]
    fn loads_cost_more_than_alu() {
        let m = CostModel::itanium();
        assert!(m.load > 0 && m.load >= m.alu);
        assert!(m.prefetch <= m.load);
    }
}
