//! Self-applied profiling of the interpreter's own dispatch loop
//! (compiled only with the `vm-selfprof` feature).
//!
//! The paper profiles *guest* programs to find regular stride patterns;
//! this module turns the same idea on the interpreter itself: count which
//! opcodes the dispatch loop executes, which opcode *digrams* (pairs of
//! consecutive dynamic opcodes) dominate, and how much dispatch work the
//! probes themselves add. The resulting report drives the three
//! optimizations of the self-applied-PGO loop: match-arm ordering,
//! superinstruction fusion (`stride_ir::fuse_module`), and the last-line
//! load fast path.
//!
//! Every probe is behind `#[cfg(feature = "vm-selfprof")]` in the
//! interpreter, so the default build carries zero overhead — not a branch,
//! not a field.

use std::fmt::Write as _;
use stride_ir::{Op, Terminator};

/// Dynamic opcode classes of the dispatch loop (instructions and
/// terminators).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// `Op::Const`
    Const,
    /// `Op::Mov`
    Mov,
    /// `Op::Bin`
    Bin,
    /// `Op::Cmp`
    Cmp,
    /// `Op::Select`
    Select,
    /// `Op::Load`
    Load,
    /// `Op::Store`
    Store,
    /// `Op::Prefetch`
    Prefetch,
    /// `Op::Alloc`
    Alloc,
    /// `Op::Free`
    Free,
    /// `Op::GlobalAddr`
    GlobalAddr,
    /// `Op::Call`
    Call,
    /// `Op::ProfileEdge`
    ProfileEdge,
    /// `Op::TripCountCheck`
    TripCountCheck,
    /// `Op::ProfileStride`
    ProfileStride,
    /// `Op::FusedBinLoad`
    FusedBinLoad,
    /// `Op::FusedBinBin`
    FusedBinBin,
    /// `Terminator::Br`
    Br,
    /// `Terminator::CondBr`
    CondBr,
    /// `Terminator::Ret`
    Ret,
    /// `Terminator::FusedCmpBr`
    FusedCmpBr,
}

/// Number of [`OpKind`] variants.
pub const NUM_KINDS: usize = 21;

impl OpKind {
    /// All kinds, in discriminant order.
    pub const ALL: [OpKind; NUM_KINDS] = [
        OpKind::Const,
        OpKind::Mov,
        OpKind::Bin,
        OpKind::Cmp,
        OpKind::Select,
        OpKind::Load,
        OpKind::Store,
        OpKind::Prefetch,
        OpKind::Alloc,
        OpKind::Free,
        OpKind::GlobalAddr,
        OpKind::Call,
        OpKind::ProfileEdge,
        OpKind::TripCountCheck,
        OpKind::ProfileStride,
        OpKind::FusedBinLoad,
        OpKind::FusedBinBin,
        OpKind::Br,
        OpKind::CondBr,
        OpKind::Ret,
        OpKind::FusedCmpBr,
    ];

    /// Kind of an instruction opcode.
    pub fn of_op(op: &Op) -> OpKind {
        match op {
            Op::Const { .. } => OpKind::Const,
            Op::Mov { .. } => OpKind::Mov,
            Op::Bin { .. } => OpKind::Bin,
            Op::Cmp { .. } => OpKind::Cmp,
            Op::Select { .. } => OpKind::Select,
            Op::Load { .. } => OpKind::Load,
            Op::Store { .. } => OpKind::Store,
            Op::Prefetch { .. } => OpKind::Prefetch,
            Op::Alloc { .. } => OpKind::Alloc,
            Op::Free { .. } => OpKind::Free,
            Op::GlobalAddr { .. } => OpKind::GlobalAddr,
            Op::Call { .. } => OpKind::Call,
            Op::ProfileEdge { .. } => OpKind::ProfileEdge,
            Op::TripCountCheck { .. } => OpKind::TripCountCheck,
            Op::ProfileStride { .. } => OpKind::ProfileStride,
            Op::FusedBinLoad { .. } => OpKind::FusedBinLoad,
            Op::FusedBinBin { .. } => OpKind::FusedBinBin,
        }
    }

    /// Kind of a terminator.
    pub fn of_term(term: &Terminator) -> OpKind {
        match term {
            Terminator::Br { .. } => OpKind::Br,
            Terminator::CondBr { .. } => OpKind::CondBr,
            Terminator::Ret { .. } => OpKind::Ret,
            Terminator::FusedCmpBr { .. } => OpKind::FusedCmpBr,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Const => "Const",
            OpKind::Mov => "Mov",
            OpKind::Bin => "Bin",
            OpKind::Cmp => "Cmp",
            OpKind::Select => "Select",
            OpKind::Load => "Load",
            OpKind::Store => "Store",
            OpKind::Prefetch => "Prefetch",
            OpKind::Alloc => "Alloc",
            OpKind::Free => "Free",
            OpKind::GlobalAddr => "GlobalAddr",
            OpKind::Call => "Call",
            OpKind::ProfileEdge => "ProfileEdge",
            OpKind::TripCountCheck => "TripCountCheck",
            OpKind::ProfileStride => "ProfileStride",
            OpKind::FusedBinLoad => "FusedBinLoad",
            OpKind::FusedBinBin => "FusedBinBin",
            OpKind::Br => "Br",
            OpKind::CondBr => "CondBr",
            OpKind::Ret => "Ret",
            OpKind::FusedCmpBr => "FusedCmpBr",
        }
    }
}

/// Opcode and digram frequency profile of the interpreter's dispatch.
#[derive(Clone, Debug)]
pub struct SelfProfile {
    counts: [u64; NUM_KINDS],
    /// `pairs[a][b]` = dynamic occurrences of kind `b` dispatched
    /// immediately after kind `a` (boxed: the matrix is ~3.5 KB).
    pairs: Box<[[u64; NUM_KINDS]; NUM_KINDS]>,
    events: u64,
}

impl SelfProfile {
    /// Empty profile.
    pub fn new() -> Self {
        SelfProfile {
            counts: [0; NUM_KINDS],
            pairs: Box::new([[0; NUM_KINDS]; NUM_KINDS]),
            events: 0,
        }
    }

    /// Records one dispatched opcode, with the previously dispatched one
    /// for digram accounting.
    #[inline]
    pub fn record(&mut self, prev: Option<OpKind>, kind: OpKind) {
        self.counts[kind as usize] += 1;
        if let Some(p) = prev {
            self.pairs[p as usize][kind as usize] += 1;
        }
        self.events += 1;
    }

    /// Total recorded dispatch events. Each event costs one deterministic
    /// probe, so this is also the self-profiling overhead in probe counts.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Dynamic count of one kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Folds another profile into this one (for aggregating workloads).
    pub fn merge(&mut self, other: &SelfProfile) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (ra, rb) in self.pairs.iter_mut().zip(other.pairs.iter()) {
            for (a, b) in ra.iter_mut().zip(rb) {
                *a += b;
            }
        }
        self.events += other.events;
    }

    /// Opcodes ranked by dynamic frequency, descending; zero-count kinds
    /// omitted.
    pub fn top_opcodes(&self) -> Vec<(OpKind, u64)> {
        let mut v: Vec<(OpKind, u64)> = OpKind::ALL
            .iter()
            .map(|&k| (k, self.counts[k as usize]))
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0 as u8).cmp(&(b.0 as u8))));
        v
    }

    /// Opcode digrams ranked by dynamic frequency, descending; zero-count
    /// pairs omitted.
    pub fn top_pairs(&self) -> Vec<(OpKind, OpKind, u64)> {
        let mut v = Vec::new();
        for &a in &OpKind::ALL {
            for &b in &OpKind::ALL {
                let c = self.pairs[a as usize][b as usize];
                if c > 0 {
                    v.push((a, b, c));
                }
            }
        }
        v.sort_by(|x, y| {
            y.2.cmp(&x.2)
                .then_with(|| (x.0 as u8, x.1 as u8).cmp(&(y.0 as u8, y.1 as u8)))
        });
        v
    }

    /// Human-readable ranking of the top `n` opcodes and digrams.
    pub fn report(&self, n: usize) -> String {
        let mut s = String::new();
        let total = self.events.max(1);
        let _ = writeln!(s, "dispatch events: {}", self.events);
        let _ = writeln!(s, "top opcodes:");
        for (k, c) in self.top_opcodes().into_iter().take(n) {
            let _ = writeln!(
                s,
                "  {:<16} {:>12}  {:5.1}%",
                k.name(),
                c,
                100.0 * c as f64 / total as f64
            );
        }
        let _ = writeln!(s, "top pairs:");
        for (a, b, c) in self.top_pairs().into_iter().take(n) {
            let _ = writeln!(
                s,
                "  {:<16} -> {:<16} {:>12}  {:5.1}%",
                a.name(),
                b.name(),
                c,
                100.0 * c as f64 / total as f64
            );
        }
        s
    }
}

impl Default for SelfProfile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_pairs() {
        let mut p = SelfProfile::new();
        p.record(None, OpKind::Bin);
        p.record(Some(OpKind::Bin), OpKind::Load);
        p.record(Some(OpKind::Load), OpKind::Bin);
        p.record(Some(OpKind::Bin), OpKind::Load);
        assert_eq!(p.events(), 4);
        assert_eq!(p.count(OpKind::Bin), 2);
        assert_eq!(p.count(OpKind::Load), 2);
        let pairs = p.top_pairs();
        assert_eq!(pairs[0], (OpKind::Bin, OpKind::Load, 2));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SelfProfile::new();
        a.record(None, OpKind::Cmp);
        let mut b = SelfProfile::new();
        b.record(None, OpKind::Cmp);
        b.record(Some(OpKind::Cmp), OpKind::CondBr);
        a.merge(&b);
        assert_eq!(a.events(), 3);
        assert_eq!(a.count(OpKind::Cmp), 2);
        assert_eq!(a.top_pairs()[0], (OpKind::Cmp, OpKind::CondBr, 1));
    }

    #[test]
    fn report_lists_ranked_entries() {
        let mut p = SelfProfile::new();
        for _ in 0..10 {
            p.record(Some(OpKind::Bin), OpKind::Load);
        }
        p.record(Some(OpKind::Cmp), OpKind::CondBr);
        let r = p.report(5);
        assert!(r.contains("Load"));
        assert!(r.contains("Bin"));
        let load_pos = r.find("Load").unwrap();
        let cmp_pos = r.find("Cmp").unwrap();
        assert!(load_pos < cmp_pos, "hotter opcode ranks first");
    }

    #[test]
    fn kind_mapping_is_total() {
        // Every Op and Terminator maps; spot-check a few plus ALL's size.
        assert_eq!(OpKind::ALL.len(), NUM_KINDS);
        assert_eq!(
            OpKind::of_term(&Terminator::Ret { value: None }),
            OpKind::Ret
        );
    }
}
