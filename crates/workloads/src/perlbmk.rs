//! 253.perlbmk — Perl interpreter.
//!
//! perl's op tree is built and rebuilt through a heavily recycled arena,
//! so chasing it yields only *weak* stride patterns (the WSST class — the
//! paper classifies them but leaves WSST prefetching disabled), and its
//! symbol-table probes are hash-random. The paper shows essentially no
//! gain.
//!
//! Entry arguments: `[ops, runs, churn_percent, seed]`.

use crate::common::{emit_build_list, Lcg, Peripheral, NODE_DATA, NODE_NEXT};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const HASH_ENTRIES: i64 = 32 * 1024; // 256 KiB symbol hash

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "perlbmk");
    let hv = mb.add_global("symbol_hash", (HASH_ENTRIES * 8) as u64);

    let f = mb.declare_function("main", 4);
    let mut fb = mb.function(f);
    let ops = fb.param(0);
    let runs = fb.param(1);
    let churn = fb.param(2);
    let seed = fb.param(3);
    let lcg = Lcg::init(&mut fb, seed);

    let hv_base = fb.global_addr(hv);
    let d = fb.mov(hv_base);
    fb.counted_loop(HASH_ENTRIES, |fb, _| {
        let v = lcg.next_masked(fb, 0xffff);
        fb.store(v, d, 0);
        fb.bin_to(d, BinOp::Add, d, 8i64);
    });

    // Compile: op list through a churned arena (weak strides).
    let head = emit_build_list(&mut fb, &lcg, ops, 48, 0, churn);

    // Execute: repeated dispatch walks with symbol lookups.
    let total = fb.mov(0i64);
    fb.counted_loop(runs, |fb, _| {
        let p = fb.mov(head);
        fb.while_nonzero(p, |fb, p| {
            let (opcode, _) = fb.load(p, NODE_DATA);
            let m0 = fb.bin(BinOp::Lshr, opcode, 16i64);
            let m1 = fb.bin(BinOp::Xor, opcode, m0);
            let m = fb.mul(m1, 0x9e3779b97f4a7c15u64 as i64);
            let m2 = fb.bin(BinOp::Lshr, m, 31i64);
            let m3 = fb.bin(BinOp::Xor, m, m2);
            let m4 = fb.mul(m3, 0x94d049bb133111ebu64 as i64);
            let h = fb.bin(BinOp::Lshr, m4, 37i64);
            let idx = fb.bin(BinOp::And, h, HASH_ENTRIES - 1);
            let hoff = fb.mul(idx, 8i64);
            let ha = fb.add(hv_base, hoff);
            let (sv, _) = fb.load(ha, 0); // random symbol probe
            let t = fb.add(opcode, sv);
            fb.bin_to(total, BinOp::Add, total, t);
            let pv = peri.emit_use(fb, 3);
            fb.bin_to(total, BinOp::Add, total, pv);
            fb.load_to(p, p, NODE_NEXT);
        });
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale. 40% allocation churn keeps the
/// dominant stride below the SSST threshold.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![400, 2, 40, 91], vec![800, 2, 40, 93]),
        Scale::Paper => (vec![5_000, 4, 40, 91], vec![10_000, 6, 40, 93]),
    };
    Workload {
        name: "253.perlbmk",
        lang: "C",
        description: "PERL programming language",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[400, 2, 40, 91], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // opcode + symbol + next + peripheral (3 calls x 3 + 6)
        assert_eq!(r.loads, 2 * 400 * (3 + 15));
    }

    #[test]
    fn churned_arena_weakens_the_stride() {
        // Simulate the node-address stream that 40% churn produces and
        // check the dominant-stride ratio lands below the SSST threshold
        // but above zero (the WSST regime).
        use stride_profiling::{StrideProfConfig, StrideProfData, StrideProfEngine};
        let cfg = StrideProfConfig::plain();
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(&cfg);
        // crude churn model mirroring emit_build_list: 40% of nodes sit at
        // a displaced address
        let mut bump = 0x1000_0000u64;
        let mut x: u64 = 12345;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let displaced = (x >> 33) % 100 < 40;
            let addr = if displaced { bump + 48 } else { bump };
            engine.stride_prof(&cfg, &mut data, addr);
            bump += if displaced { 96 } else { 48 };
        }
        let p_top = data.top_strides()[0].1 as f64 / data.total_freq() as f64;
        assert!(p_top < 0.70, "top ratio {p_top} should be sub-SSST");
        assert!(p_top > 0.15, "top ratio {p_top} should still be a pattern");
    }
}
