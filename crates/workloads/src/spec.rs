//! The benchmark catalog (Fig. 15 of the paper): a declarative registry
//! of every hand-built workload — metadata, designed stride classes, and
//! builder — plus the scaling knobs that map SPEC's train/reference
//! inputs onto simulator-sized runs.
//!
//! The registry is the single enumeration path for the suite: figure
//! generators, the profile daemon, and the `genwork workloads` listing
//! all walk [`REGISTRY`] instead of hard-coding the twelve names.

use stride_ir::Module;

/// How large to build the workloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (sub-second in debug
    /// builds).
    Test,
    /// The sizes used to regenerate the paper's figures (a few million
    /// simulated instructions per run; run in release builds).
    Paper,
}

/// One synthetic benchmark: a module plus its train and reference inputs.
#[derive(Clone, Debug)]
pub struct Workload {
    /// SPEC-style name, e.g. `"181.mcf"`.
    pub name: &'static str,
    /// Source language of the original program (Fig. 15).
    pub lang: &'static str,
    /// The original program's description (Fig. 15).
    pub description: &'static str,
    /// The program.
    pub module: Module,
    /// Entry arguments standing in for SPEC's train input.
    pub train_args: Vec<i64>,
    /// Entry arguments standing in for SPEC's reference input.
    pub ref_args: Vec<i64>,
}

/// Registry record: one Fig. 15 benchmark, declaratively.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// SPEC-style name, e.g. `"181.mcf"`.
    pub name: &'static str,
    /// Source language of the original program (Fig. 15).
    pub lang: &'static str,
    /// The original program's description (Fig. 15).
    pub description: &'static str,
    /// Stride classes the benchmark's hot in-loop load sites are
    /// *designed* to exhibit (`"SSST"`, `"PMST"`, `"WSST"`, `"none"`) —
    /// the fidelity tests in `tests/workload_characteristics.rs` pin the
    /// load-bearing ones. Spelled as strings so listings serialize
    /// directly and this crate stays independent of the classifier.
    pub expected_classes: &'static [&'static str],
    /// Builds the benchmark at a given scale.
    pub build: fn(Scale) -> Workload,
}

/// Every benchmark of Fig. 15, in the paper's order.
pub const REGISTRY: &[WorkloadSpec] = &[
    WorkloadSpec {
        name: "164.gzip",
        lang: "C",
        description: "compression",
        expected_classes: &["SSST", "none"],
        build: crate::gzip::build,
    },
    WorkloadSpec {
        name: "175.vpr",
        lang: "C",
        description: "FPGA circuit placement and routing",
        expected_classes: &["SSST", "none"],
        build: crate::vpr::build,
    },
    WorkloadSpec {
        name: "176.gcc",
        lang: "C",
        description: "C compiler",
        expected_classes: &["none"],
        build: crate::gcc::build,
    },
    WorkloadSpec {
        name: "181.mcf",
        lang: "C",
        description: "combinatorial optimization",
        expected_classes: &["SSST", "none"],
        build: crate::mcf::build,
    },
    WorkloadSpec {
        name: "186.crafty",
        lang: "C",
        description: "chess",
        expected_classes: &["none"],
        build: crate::crafty::build,
    },
    WorkloadSpec {
        name: "197.parser",
        lang: "C",
        description: "word processing",
        expected_classes: &["SSST", "none"],
        build: crate::parser::build,
    },
    WorkloadSpec {
        name: "252.eon",
        lang: "C++",
        description: "computer visualization",
        expected_classes: &["SSST", "none"],
        build: crate::eon::build,
    },
    WorkloadSpec {
        name: "253.perlbmk",
        lang: "C",
        description: "Perl interpreter",
        expected_classes: &["WSST", "none"],
        build: crate::perlbmk::build,
    },
    WorkloadSpec {
        name: "254.gap",
        lang: "C",
        description: "group theory interpreter",
        expected_classes: &["PMST", "none"],
        build: crate::gap::build,
    },
    WorkloadSpec {
        name: "255.vortex",
        lang: "C",
        description: "object-oriented database",
        expected_classes: &["SSST", "none"],
        build: crate::vortex::build,
    },
    WorkloadSpec {
        name: "256.bzip2",
        lang: "C",
        description: "compression",
        expected_classes: &["SSST", "none"],
        build: crate::bzip2::build,
    },
    WorkloadSpec {
        name: "300.twolf",
        lang: "C",
        description: "place and route simulator",
        expected_classes: &["SSST", "none"],
        build: crate::twolf::build,
    },
];

/// Looks up a registry record by Fig. 15 name, with or without the
/// numeric prefix; `None` for unknown names.
pub fn spec_by_name(name: &str) -> Option<&'static WorkloadSpec> {
    let short = name.rsplit('.').next().unwrap_or(name);
    REGISTRY
        .iter()
        .find(|s| s.name == name || s.name.rsplit('.').next() == Some(short))
}

/// Builds every benchmark of Fig. 15 at the given scale, in the paper's
/// order.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    REGISTRY.iter().map(|s| (s.build)(scale)).collect()
}

/// Builds one benchmark by its Fig. 15 name (with or without the numeric
/// prefix); `None` for unknown names.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    spec_by_name(name).map(|s| (s.build)(scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn catalog_matches_figure_15() {
        let all = all_workloads(Scale::Test);
        let names: Vec<&str> = all.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "164.gzip",
                "175.vpr",
                "176.gcc",
                "181.mcf",
                "186.crafty",
                "197.parser",
                "252.eon",
                "253.perlbmk",
                "254.gap",
                "255.vortex",
                "256.bzip2",
                "300.twolf",
            ]
        );
        assert!(all.iter().all(|w| !w.description.is_empty()));
        assert_eq!(all.iter().filter(|w| w.lang == "C++").count(), 1); // eon
    }

    #[test]
    fn registry_metadata_matches_built_workloads() {
        // The registry duplicates name/lang so listings don't have to
        // build modules; this pins the two sources together.
        for spec in REGISTRY {
            let w = (spec.build)(Scale::Test);
            assert_eq!(spec.name, w.name);
            assert_eq!(spec.lang, w.lang);
            assert!(!spec.description.is_empty());
            assert!(!spec.expected_classes.is_empty());
            for c in spec.expected_classes {
                assert!(
                    ["SSST", "PMST", "WSST", "none"].contains(c),
                    "{}: unknown class {c}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn every_workload_verifies_and_runs_at_test_scale() {
        for w in all_workloads(Scale::Test) {
            stride_ir::verify_module(&w.module)
                .unwrap_or_else(|e| panic!("{}: verifier: {e}", w.name));
            let mut vm = Vm::new(&w.module, VmConfig::default());
            let r = vm
                .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap_or_else(|e| panic!("{}: train run: {e}", w.name));
            assert!(r.loads > 0, "{}: no loads executed", w.name);
            let mut vm = Vm::new(&w.module, VmConfig::default());
            let r = vm
                .run(&w.ref_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap_or_else(|e| panic!("{}: ref run: {e}", w.name));
            assert!(r.loads > 0, "{}: no loads executed", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("181.mcf", Scale::Test).is_some());
        assert!(workload_by_name("mcf", Scale::Test).is_some());
        assert!(workload_by_name("999.unknown", Scale::Test).is_none());
        assert_eq!(spec_by_name("parser").map(|s| s.name), Some("197.parser"));
    }

    #[test]
    fn ref_runs_are_larger_than_train() {
        for w in all_workloads(Scale::Test) {
            let cfg = VmConfig::default();
            let mut vm = Vm::new(&w.module, cfg);
            let train = vm
                .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap();
            let mut vm = Vm::new(&w.module, cfg);
            let reference = vm
                .run(&w.ref_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap();
            assert!(
                reference.instructions > train.instructions,
                "{}: ref ({}) not larger than train ({})",
                w.name,
                reference.instructions,
                train.instructions
            );
        }
    }
}
