//! The benchmark catalog (Fig. 15 of the paper) and the scaling knobs that
//! map SPEC's train/reference inputs onto simulator-sized runs.

use stride_ir::Module;

/// How large to build the workloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (sub-second in debug
    /// builds).
    Test,
    /// The sizes used to regenerate the paper's figures (a few million
    /// simulated instructions per run; run in release builds).
    Paper,
}

/// One synthetic benchmark: a module plus its train and reference inputs.
#[derive(Clone, Debug)]
pub struct Workload {
    /// SPEC-style name, e.g. `"181.mcf"`.
    pub name: &'static str,
    /// Source language of the original program (Fig. 15).
    pub lang: &'static str,
    /// The original program's description (Fig. 15).
    pub description: &'static str,
    /// The program.
    pub module: Module,
    /// Entry arguments standing in for SPEC's train input.
    pub train_args: Vec<i64>,
    /// Entry arguments standing in for SPEC's reference input.
    pub ref_args: Vec<i64>,
}

/// Builds every benchmark of Fig. 15 at the given scale, in the paper's
/// order.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    vec![
        crate::gzip::build(scale),
        crate::vpr::build(scale),
        crate::gcc::build(scale),
        crate::mcf::build(scale),
        crate::crafty::build(scale),
        crate::parser::build(scale),
        crate::eon::build(scale),
        crate::perlbmk::build(scale),
        crate::gap::build(scale),
        crate::vortex::build(scale),
        crate::bzip2::build(scale),
        crate::twolf::build(scale),
    ]
}

/// Builds one benchmark by its Fig. 15 name (with or without the numeric
/// prefix); `None` for unknown names.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    let short = name.rsplit('.').next().unwrap_or(name);
    let w = match short {
        "gzip" => crate::gzip::build(scale),
        "vpr" => crate::vpr::build(scale),
        "gcc" => crate::gcc::build(scale),
        "mcf" => crate::mcf::build(scale),
        "crafty" => crate::crafty::build(scale),
        "parser" => crate::parser::build(scale),
        "eon" => crate::eon::build(scale),
        "perlbmk" => crate::perlbmk::build(scale),
        "gap" => crate::gap::build(scale),
        "vortex" => crate::vortex::build(scale),
        "bzip2" => crate::bzip2::build(scale),
        "twolf" => crate::twolf::build(scale),
        _ => return None,
    };
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn catalog_matches_figure_15() {
        let all = all_workloads(Scale::Test);
        let names: Vec<&str> = all.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "164.gzip",
                "175.vpr",
                "176.gcc",
                "181.mcf",
                "186.crafty",
                "197.parser",
                "252.eon",
                "253.perlbmk",
                "254.gap",
                "255.vortex",
                "256.bzip2",
                "300.twolf",
            ]
        );
        assert!(all.iter().all(|w| !w.description.is_empty()));
        assert_eq!(all.iter().filter(|w| w.lang == "C++").count(), 1); // eon
    }

    #[test]
    fn every_workload_verifies_and_runs_at_test_scale() {
        for w in all_workloads(Scale::Test) {
            stride_ir::verify_module(&w.module)
                .unwrap_or_else(|e| panic!("{}: verifier: {e}", w.name));
            let mut vm = Vm::new(&w.module, VmConfig::default());
            let r = vm
                .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap_or_else(|e| panic!("{}: train run: {e}", w.name));
            assert!(r.loads > 0, "{}: no loads executed", w.name);
            let mut vm = Vm::new(&w.module, VmConfig::default());
            let r = vm
                .run(&w.ref_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap_or_else(|e| panic!("{}: ref run: {e}", w.name));
            assert!(r.loads > 0, "{}: no loads executed", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("181.mcf", Scale::Test).is_some());
        assert!(workload_by_name("mcf", Scale::Test).is_some());
        assert!(workload_by_name("999.unknown", Scale::Test).is_none());
    }

    #[test]
    fn ref_runs_are_larger_than_train() {
        for w in all_workloads(Scale::Test) {
            let cfg = VmConfig::default();
            let mut vm = Vm::new(&w.module, cfg);
            let train = vm
                .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap();
            let mut vm = Vm::new(&w.module, cfg);
            let reference = vm
                .run(&w.ref_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap();
            assert!(
                reference.instructions > train.instructions,
                "{}: ref ({}) not larger than train ({})",
                w.name,
                reference.instructions,
                train.instructions
            );
        }
    }
}
