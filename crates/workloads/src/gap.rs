//! 254.gap — group theory interpreter.
//!
//! The paper's Fig. 2 comes from gap's garbage collector: the sweep walks
//! the heap object by object, advancing by each object's size. Objects of
//! one kind are allocated in batches, so the stride stays constant within
//! a phase and switches at phase boundaries — the canonical *phased
//! multi-stride* (PMST) load, with 4 dominant strides on the first load
//! and 2 on the second (§1). The paper reports 1.14x (1.16x with out-loop
//! prefetching).
//!
//! The synthetic version: a heap of objects whose sizes cycle through
//! three classes in 512-object batches (rounded sizes 32/48/64), swept
//! repeatedly by a size-advancing pointer — two same-line loads per
//! object — plus a random workspace probe per object as interpreter
//! noise.
//!
//! Entry arguments: `[num_objects, sweeps, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, CmpOp, Module, ModuleBuilder, Operand};

const WS_ENTRIES: i64 = 256 * 1024; // 2 MiB workspace (uncovered random probes)
const TRANSFER_BYTES: i64 = 3 << 20; // 3 MiB bag-transfer staging area

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "gap");
    let ws = mb.add_global("workspace", (WS_ENTRIES * 8) as u64);
    let transfer = mb.add_global("transfer", TRANSFER_BYTES as u64);

    let f = mb.declare_function("main", 3);
    let mut fb = mb.function(f);
    let num_objs = fb.param(0);
    let sweeps = fb.param(1);
    let seed = fb.param(2);
    let lcg = Lcg::init(&mut fb, seed);

    // Workspace init.
    let ws_base = fb.global_addr(ws);
    let d = fb.mov(ws_base);
    fb.counted_loop(WS_ENTRIES, |fb, _| {
        let v = lcg.next_masked(fb, 0x3fff);
        fb.store(v, d, 0);
        fb.bin_to(d, BinOp::Add, d, 8i64);
    });

    // Allocate the bag heap: sizes cycle through {32, 40, 56} (rounded by
    // the allocator to 32/48/64) in 512-object phases.
    let first = fb.mov(0i64);
    let last = fb.mov(0i64);
    fb.counted_loop(num_objs, |fb, i| {
        let phase = fb.bin(BinOp::Shr, i, 9i64);
        let kind = fb.bin(BinOp::Rem, phase, 3i64);
        let is0 = fb.cmp(CmpOp::Eq, kind, 0i64);
        let is1 = fb.cmp(CmpOp::Eq, kind, 1i64);
        let s12 = fb.select(is1, 24i64, 48i64);
        let size = fb.select(is0, 16i64, s12);
        let o = fb.alloc(size);
        // store the *rounded* size so the sweep can advance exactly
        let r15 = fb.add(size, 15i64);
        let rounded = fb.bin(BinOp::And, r15, !15i64);
        fb.store(rounded, o, 0); // header: size word ((*s&~3)->size)
        let payload = lcg.next_masked(fb, WS_ENTRIES - 1);
        fb.store(payload, o, 8); // handle/ptr word
        let is_first = fb.cmp(CmpOp::Eq, first, 0i64);
        let nf = fb.select(is_first, o, first);
        fb.mov_to(first, nf);
        fb.mov_to(last, o);
    });

    // Garbage-collection sweeps.
    let tr_base = fb.global_addr(transfer);
    let tr_end = fb.add(tr_base, (1 << 20) - 640 * 64);
    let tr_cur = fb.mov(tr_base);
    let obj_count = fb.mov(0i64);
    let next_fire = fb.mov(10_250i64);
    let total = fb.mov(0i64);
    fb.counted_loop(sweeps, |fb, _| {
        let s = fb.mov(first);
        // while (s <= last) { size = s->size; v = s->ptr; ...; s += size }
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let cont = fb.cmp(CmpOp::Le, s, last);
        fb.cond_br(cont, body, exit);
        fb.switch_to(body);
        let (size, _) = fb.load(s, 0); // PMST load #1 (Fig. 2's *s)
        let (v, _) = fb.load(s, 8); // PMST load #2 ((*s&~3)->ptr)
        let woff = fb.mul(v, 8i64);
        let wa = fb.add(ws_base, woff);
        let (n, _) = fb.load(wa, 0); // random workspace probe
                                     // interpreter bookkeeping between bag visits
        let x1 = fb.bin(BinOp::Xor, n, v);
        let x2 = fb.mul(x1, 0x2545f491i64);
        let x3 = fb.bin(BinOp::Lshr, x2, 13i64);
        let x4 = fb.add(x3, size);
        let x5 = fb.bin(BinOp::And, x4, WS_ENTRIES - 1);
        let woff2 = fb.mul(x5, 8i64);
        let wa2 = fb.add(ws_base, woff2);
        let (n2, _) = fb.load(wa2, 0); // second irregular probe
        let y1 = fb.mul(n2, 0x85ebca6bi64);
        let y2 = fb.bin(BinOp::Lshr, y1, 17i64);
        let y3 = fb.bin(BinOp::And, y2, WS_ENTRIES - 1);
        let woff3 = fb.mul(y3, 8i64);
        let wa3 = fb.add(ws_base, woff3);
        let (n3, _) = fb.load(wa3, 0); // third irregular probe
        let t0 = fb.add(n, n2);
        let z1 = fb.mul(t0, 0x27d4eb2fi64);
        let z2 = fb.bin(BinOp::Lshr, z1, 15i64);
        let z3 = fb.bin(BinOp::Xor, z2, n3);
        let z4 = fb.add(z3, size);
        let z5 = fb.bin(BinOp::And, z4, 0xffffffi64);
        let z6 = fb.mul(z5, 3i64);
        let z7 = fb.bin(BinOp::Shr, z6, 2i64);
        let t = fb.add(z7, t0);
        fb.bin_to(total, BinOp::Add, total, t);
        let pv = peri.emit_use(fb, 2);
        fb.bin_to(total, BinOp::Add, total, pv);

        // Bag-transfer pass, one ~140-200-trip entry every ~10250 objects. Its
        // total dynamic frequency sits just *below* the FT = 2000 feedback
        // filter on the train input and above it on the reference input —
        // the source of the paper's Figs. 23-25 edge-profile sensitivity
        // (the stride profile itself is input-stable). The trip count sits
        // above TT so the edge-check guard fires, and the entries are
        // spread across the sweep so chunk sampling catches some of them.
        fb.bin_to(obj_count, BinOp::Add, obj_count, 1);
        let fire = fb.cmp(CmpOp::Eq, obj_count, next_fire);
        let transfer_b = fb.new_block();
        let cont_b = fb.new_block();
        fb.cond_br(fire, transfer_b, cont_b);
        fb.switch_to(transfer_b);
        // variable burst length (140..203 trips, all above TT): the
        // cumulative length drift makes successive burst positions do a
        // random walk relative to the deterministic chunk-sampling phase
        let jt = fb.bin(BinOp::Shr, tr_cur, 6i64);
        let jt2 = fb.bin(BinOp::And, jt, 63i64);
        let trip = fb.add(jt2, 140i64);
        fb.counted_loop(trip, |fb, _| {
            let (a, _) = fb.load(tr_cur, 0);
            let (b, _) = fb.load(tr_cur, 1 << 20);
            let (c, _) = fb.load(tr_cur, 2 << 20);
            let ab = fb.add(a, b);
            let abc = fb.add(ab, c);
            fb.bin_to(total, BinOp::Add, total, abc);
            fb.bin_to(tr_cur, BinOp::Add, tr_cur, 64i64);
        });
        let wrap = fb.cmp(CmpOp::Ge, tr_cur, tr_end);
        let nc = fb.select(wrap, tr_base, tr_cur);
        fb.mov_to(tr_cur, nc);
        // jitter the next firing point so burst positions decorrelate
        // from the deterministic chunk-sampling phase
        let j1 = fb.bin(BinOp::Shr, tr_cur, 6i64);
        let j2 = fb.bin(BinOp::And, j1, 255i64);
        let step = fb.add(j2, 10_250i64);
        fb.bin_to(next_fire, BinOp::Add, next_fire, step);
        fb.br(cont_b);
        fb.switch_to(cont_b);
        fb.bin_to(s, BinOp::Add, s, size);
        fb.br(header);
        fb.switch_to(exit);
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![1500, 2, 31], vec![3000, 2, 33]),
        Scale::Paper => (vec![40_000, 3, 31], vec![90_000, 4, 33]),
    };
    Workload {
        name: "254.gap",
        lang: "C",
        description: "Group theory, interpreter",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn module_verifies_and_sweep_visits_every_object() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[1500, 1, 31], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // 5 loads per object per sweep + peripheral 12 (the bag-transfer
        // pass fires every 10250 objects, so never at this test size)
        assert_eq!(r.loads, (5 + 12) * 1500);
    }

    #[test]
    fn sweep_strides_are_phased() {
        // Collect the sweep pointer's stride sequence with the profiler:
        // run strideProf on the addresses implied by the object sizes.
        use stride_profiling::{StrideProfConfig, StrideProfData, StrideProfEngine};
        let cfg = StrideProfConfig::plain();
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(&cfg);
        // reconstruct the address walk: 512-object phases of 32/48/64
        let mut addr = 0x1000_0000u64;
        for i in 0..3000u64 {
            engine.stride_prof(&cfg, &mut data, addr);
            let kind = (i >> 9) % 3;
            let size = [16u64, 32, 48][kind as usize];
            addr += size;
        }
        let top = data.top_strides();
        let strides: Vec<i64> = top.iter().take(3).map(|&(s, _)| s).collect();
        assert!(strides.contains(&16) && strides.contains(&32) && strides.contains(&48));
        // phased: nearly every diff within a phase is zero
        let zero_ratio = data.num_zero_diff as f64 / data.total_freq() as f64;
        assert!(zero_ratio > 0.9, "zero-diff ratio {zero_ratio}");
    }

    #[test]
    fn deterministic_across_runs() {
        let w = build(Scale::Test);
        let run = || {
            let mut vm = Vm::new(&w.module, VmConfig::default());
            vm.run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap()
                .return_value
        };
        assert_eq!(run(), run());
    }
}
