//! 181.mcf — combinatorial optimization (network simplex).
//!
//! The real mcf spends its time scanning a huge arc array whose elements
//! are visited in allocation order (the price-out loop), dereferencing
//! per-arc node pointers. Stoutchinin et al. and Collins et al. both
//! singled out these arc-scan loads as strongly strided; the paper reports
//! the largest speedup of the suite here (1.59x).
//!
//! The synthetic version: a contiguous arc array (64 B records, working
//! set larger than the 2 MB L3 at Paper scale) scanned by pointer
//! increment — three same-line field loads per arc (an equivalence class)
//! — plus a random node-potential lookup per arc in an L3-resident node
//! array, and a strided node-potential update loop.
//!
//! Entry arguments: `[num_arcs, iterations, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, CmpOp, Module, ModuleBuilder, Operand};

const ARC_SIZE: i64 = 64;
const NODE_SIZE: i64 = 80;

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "mcf");
    let f = mb.declare_function("main", 3);
    let mut fb = mb.function(f);
    let num_arcs = fb.param(0);
    let iters = fb.param(1);
    let seed = fb.param(2);
    let lcg = Lcg::init(&mut fb, seed);

    let num_nodes = fb.bin(BinOp::Shr, num_arcs, 1i64);
    let nodes_size = fb.mul(num_nodes, NODE_SIZE);
    let nodes = fb.alloc(nodes_size);
    let arcs_size = fb.mul(num_arcs, ARC_SIZE);
    let arcs = fb.alloc(arcs_size);

    // --- network construction -----------------------------------------
    fb.counted_loop(num_arcs, |fb, i| {
        let off = fb.mul(i, ARC_SIZE);
        let a = fb.add(arcs, off);
        let cost = lcg.next_masked(fb, 0xffff);
        let signed_cost = fb.sub(cost, 0x8000i64);
        fb.store(signed_cost, a, 8); // cost
        let tail = lcg.next_bounded(fb, num_nodes);
        fb.store(tail, a, 16); // tail node index
        let head = lcg.next_bounded(fb, num_nodes);
        fb.store(head, a, 24); // head node index
    });
    fb.counted_loop(num_nodes, |fb, i| {
        let off = fb.mul(i, NODE_SIZE);
        let n = fb.add(nodes, off);
        fb.store(i, n, 8); // potential
    });

    // --- simplex iterations ---------------------------------------------
    let total = fb.mov(0i64);
    fb.counted_loop(iters, |fb, _| {
        // price-out: pointer scan of the arc array
        let p = fb.mov(arcs);
        fb.counted_loop(num_arcs, |fb, _| {
            let (cost, _) = fb.load(p, 8);
            let (tail, _) = fb.load(p, 16);
            let (head, _) = fb.load(p, 24);
            let toff = fb.mul(tail, NODE_SIZE);
            let tn = fb.add(nodes, toff);
            let (pot_t, _) = fb.load(tn, 8); // random node lookup
            let red = fb.add(cost, pot_t);
            let red2 = fb.sub(red, head);
            // dual-feasibility arithmetic (the pricing computation keeps
            // the loop from being a pure memory stream)
            let m1 = fb.mul(red2, 3i64);
            let m2 = fb.bin(BinOp::Shr, m1, 2i64);
            let m3 = fb.bin(BinOp::Xor, m2, cost);
            let m4 = fb.add(m3, tail);
            let m5 = fb.bin(BinOp::And, m4, 0xffffi64);
            let m6 = fb.mul(m5, 5i64);
            let m7 = fb.sub(m6, pot_t);
            let m8 = fb.bin(BinOp::Shr, m7, 1i64);
            let neg = fb.cmp(CmpOp::Lt, m8, 0i64);
            let contrib = fb.select(neg, red2, m8);
            fb.bin_to(total, BinOp::Add, total, contrib);
            let pv = peri.emit_use(fb, 2);
            fb.bin_to(total, BinOp::Add, total, pv);
            fb.bin_to(p, BinOp::Add, p, ARC_SIZE);
        });
        // potential refresh: strided scan of the node array
        let q = fb.mov(nodes);
        fb.counted_loop(num_nodes, |fb, _| {
            let (v, _) = fb.load(q, 8);
            let v2 = fb.add(v, 1i64);
            fb.store(v2, q, 8);
            fb.bin_to(q, BinOp::Add, q, NODE_SIZE);
        });
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![512, 2, 11], vec![1024, 2, 13]),
        Scale::Paper => (vec![20_000, 3, 11], vec![60_000, 5, 13]),
    };
    Workload {
        name: "181.mcf",
        lang: "C",
        description: "Combinatorial Optimization",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn module_verifies() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
    }

    #[test]
    fn run_is_deterministic() {
        let w = build(Scale::Test);
        let run = |args: &[i64]| {
            let mut vm = Vm::new(&w.module, VmConfig::default());
            vm.run(args, &mut FlatTiming, &mut NullRuntime)
                .unwrap()
                .return_value
        };
        assert_eq!(run(&w.ref_args), run(&w.ref_args));
        // different seeds change the result
        assert_ne!(run(&[1024, 2, 13]), run(&[1024, 2, 14]));
    }

    #[test]
    fn arc_scan_dominates_loads() {
        let w = build(Scale::Test);
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&w.ref_args, &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // 4 loads + peripheral 12 per arc per iteration + 1 per node
        let arcs = 1024;
        let nodes = arcs / 2;
        let expected = 2 * ((4 + 12) * arcs + nodes);
        assert_eq!(r.loads, expected);
    }
}
