//! 175.vpr — FPGA circuit placement and routing.
//!
//! vpr alternates full cost sweeps over the cell array (strided,
//! moderately large) with randomized swap proposals (irregular pairs).
//! The sweep loads stride regularly; the swap loads do not — a small net
//! gain in the paper.
//!
//! Entry arguments: `[num_cells, iterations, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, CmpOp, Module, ModuleBuilder, Operand};

const CELL_SIZE: i64 = 64;

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "vpr");
    let f = mb.declare_function("main", 3);
    let mut fb = mb.function(f);
    let num_cells = fb.param(0);
    let iters = fb.param(1);
    let seed = fb.param(2);
    let lcg = Lcg::init(&mut fb, seed);

    let size = fb.mul(num_cells, CELL_SIZE);
    let cells = fb.alloc(size);
    fb.counted_loop(num_cells, |fb, i| {
        let off = fb.mul(i, CELL_SIZE);
        let c = fb.add(cells, off);
        let x = lcg.next_masked(fb, 0x3ff);
        let y = lcg.next_masked(fb, 0x3ff);
        fb.store(x, c, 8);
        fb.store(y, c, 16);
    });

    let total = fb.mov(0i64);
    fb.counted_loop(iters, |fb, _| {
        // bounding-box cost sweep: strided
        let p = fb.mov(cells);
        fb.counted_loop(num_cells, |fb, _| {
            let (x, _) = fb.load(p, 8);
            let (y, _) = fb.load(p, 16);
            let b1 = fb.mul(x, 5i64);
            let b2 = fb.bin(BinOp::Xor, b1, y);
            let b3 = fb.bin(BinOp::Shr, b2, 2i64);
            let b4 = fb.add(b3, x);
            let b5 = fb.bin(BinOp::And, b4, 0x3ffffi64);
            let cost = fb.add(b5, y);
            fb.bin_to(total, BinOp::Add, total, cost);
            let pv = peri.emit_use(fb, 2);
            fb.bin_to(total, BinOp::Add, total, pv);
            fb.bin_to(p, BinOp::Add, p, CELL_SIZE);
        });
        // simulated-annealing swaps: random cell pairs
        let swaps = fb.mov(num_cells);
        fb.counted_loop(swaps, |fb, _| {
            let i = lcg.next_bounded(fb, num_cells);
            let j = lcg.next_bounded(fb, num_cells);
            let ioff = fb.mul(i, CELL_SIZE);
            let joff = fb.mul(j, CELL_SIZE);
            let ci = fb.add(cells, ioff);
            let cj = fb.add(cells, joff);
            let (xi, _) = fb.load(ci, 8);
            let (xj, _) = fb.load(cj, 8);
            // bounding-box delta-cost arithmetic
            let d1 = fb.sub(xi, xj);
            let d2 = fb.mul(d1, d1);
            let d3 = fb.bin(BinOp::Shr, d2, 3i64);
            let d4 = fb.bin(BinOp::Xor, d3, xi);
            let d5 = fb.add(d4, xj);
            fb.bin_to(total, BinOp::Add, total, d5);
            let better = fb.cmp(CmpOp::Lt, xj, xi);
            let then_b = fb.new_block();
            let join = fb.new_block();
            fb.cond_br(better, then_b, join);
            fb.switch_to(then_b);
            fb.store(xj, ci, 8);
            fb.store(xi, cj, 8);
            fb.br(join);
            fb.switch_to(join);
        });
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![400, 2, 51], vec![800, 2, 53]),
        Scale::Paper => (vec![1_000, 8, 51], vec![1_200, 16, 53]),
    };
    Workload {
        name: "175.vpr",
        lang: "C",
        description: "FPGA circuit placement and routing",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // 2 sweep loads/cell + 2 loads/swap, swaps = cells/2, per iteration
        // sweep: 2 + peripheral 12 per cell; swaps: 2 per swap
        assert_eq!(r.loads, 2 * ((2 + 12) * 400 + 2 * 400));
    }

    #[test]
    fn swaps_move_data() {
        let w = build(Scale::Test);
        let run = |seed: i64| {
            let mut vm = Vm::new(&w.module, VmConfig::default());
            vm.run(&[400, 2, seed], &mut FlatTiming, &mut NullRuntime)
                .unwrap()
                .return_value
                .unwrap()
        };
        assert_ne!(run(51), run(52));
    }
}
