//! 176.gcc — C compiler.
//!
//! gcc's loads sit mostly in *short* loops over per-function insn lists
//! (trip counts far below the paper's TT = 128 threshold) and in helper
//! routines (out-loop). The trip-count filter rejects nearly everything,
//! so the paper reports essentially no gain — reproducing that filtering
//! behaviour is the point of this workload.
//!
//! Entry arguments: `[num_functions, passes, seed]`.

use crate::common::{emit_build_list, Lcg, Peripheral, NODE_DATA, NODE_NEXT};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const SYMTAB_ENTRIES: i64 = 64 * 1024; // 512 KiB symbol table
const INSNS_PER_FUNCTION: i64 = 24; // far below TT = 128

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "gcc");
    let symtab = mb.add_global("symtab", (SYMTAB_ENTRIES * 8) as u64);

    // rtx attribute accessor: an out-loop load per call.
    let get_attr = mb.declare_function("get_attr", 1);
    {
        let mut fb = mb.function(get_attr);
        let insn = fb.param(0);
        let (v, _) = fb.load(insn, NODE_DATA);
        let h0 = fb.bin(BinOp::Lshr, v, 13i64);
        let h1 = fb.bin(BinOp::Xor, v, h0);
        let h = fb.mul(h1, 0xff51afd7ed558ccdu64 as i64);
        let h2 = fb.bin(BinOp::Lshr, h, 33i64);
        let h3 = fb.bin(BinOp::Xor, h, h2);
        fb.ret(Some(Operand::Reg(h3)));
    }

    let f = mb.declare_function("main", 3);
    {
        let mut fb = mb.function(f);
        let num_funcs = fb.param(0);
        let passes = fb.param(1);
        let seed = fb.param(2);
        let lcg = Lcg::init(&mut fb, seed);

        let sym_base = fb.global_addr(symtab);
        let d = fb.mov(sym_base);
        fb.counted_loop(SYMTAB_ENTRIES, |fb, _| {
            let v = lcg.next_masked(fb, 0xffff);
            fb.store(v, d, 0);
            fb.bin_to(d, BinOp::Add, d, 8i64);
        });

        let total = fb.mov(0i64);
        fb.counted_loop(passes, |fb, _| {
            fb.counted_loop(num_funcs, |fb, _| {
                // parse: build this function's insn list (churned — gcc's
                // obstacks get reused)
                let head = emit_build_list(fb, &lcg, INSNS_PER_FUNCTION, 48, 0, 20i64);
                // two optimization walks over a *short* list
                fb.counted_loop(2i64, |fb, _| {
                    let p = fb.mov(head);
                    fb.while_nonzero(p, |fb, p| {
                        let (v, _) = fb.load(p, NODE_DATA);
                        let attr = fb.call(get_attr, &[Operand::Reg(p)]);
                        let idx = fb.bin(BinOp::And, attr, SYMTAB_ENTRIES - 1);
                        let soff = fb.mul(idx, 8i64);
                        let sa = fb.add(sym_base, soff);
                        let (sym, _) = fb.load(sa, 0); // random symtab probe
                        let t = fb.add(v, sym);
                        fb.bin_to(total, BinOp::Add, total, t);
                        let pv = peri.emit_use(fb, 3);
                        fb.bin_to(total, BinOp::Add, total, pv);
                        fb.load_to(p, p, NODE_NEXT);
                    });
                });
            });
        });
        fb.ret(Some(Operand::Reg(total)));
    }
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![20, 2, 61], vec![40, 2, 63]),
        Scale::Paper => (vec![250, 2, 61], vec![450, 3, 63]),
    };
    Workload {
        name: "176.gcc",
        lang: "C",
        description: "C programming language compiler",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        assert!(r.loads > 0);
    }

    #[test]
    fn insn_walks_are_short_loops() {
        // The walk loop's trip count (24) is below the paper's TT = 128,
        // so the trip-count filter must reject gcc's in-loop loads.
        assert!(std::hint::black_box(INSNS_PER_FUNCTION) < 128);
    }

    #[test]
    fn out_loop_accessor_exists() {
        let w = build(Scale::Test);
        let f = w.module.function_by_name("get_attr").expect("accessor");
        let analysis = stride_ir::FuncAnalysis::compute(f);
        assert!(analysis.loops.loops().is_empty());
        assert_eq!(f.loads().len(), 1);
    }
}
