//! 197.parser — word processing (link grammar parser).
//!
//! The paper's Fig. 1 comes from this benchmark: the tokenizer chases a
//! linked list of words whose nodes *and* strings were allocated in
//! traversal order by parser's custom allocator, so both the `next` load
//! and the string load stride regularly — 94% of the time; the remaining
//! 6% comes from free-list reuse. Dictionary hash lookups dilute the
//! memory-bound fraction, giving the paper's 1.08x (1.10x when out-loop
//! loads in helper routines are prefetched too, §4.1).
//!
//! The synthetic version: a churned linked list with satellite "strings",
//! a dictionary global probed by a hash *function call* — whose body
//! contains an out-loop load that inherits the caller's stride, the
//! naive-all bonus — and repeated sentence scans.
//!
//! Entry arguments: `[num_words, sentences, churn_percent, seed]`.

use crate::common::{emit_build_list, Lcg, Peripheral, NODE_NEXT, NODE_PTR};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const DICT_ENTRIES: i64 = 32 * 1024; // 256 KiB
const CONNECTORS: i64 = 6; // per-word connector table (L1-resident)
const STRING_SIZE: i64 = 16;
const NODE_SIZE: i64 = 56;

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "parser");
    let dict = mb.add_global("dictionary", (DICT_ENTRIES * 8) as u64);
    let conn = mb.add_global("connectors", (CONNECTORS * 8) as u64);
    let morph = mb.add_global("morphology", 1 << 20);

    // hash(string) -> bucket index. The load inside is an *out-loop* load:
    // successive calls see successive strings, so it strides with the
    // caller's traversal (the §4.1 out-loop SSST case).
    let hash = mb.declare_function("hash_word", 1);
    {
        let mut fb = mb.function(hash);
        let s = fb.param(0);
        let (w, _) = fb.load(s, 8);
        // splitmix-style finalizer: xor-shift rounds break the linearity a
        // plain multiply would keep for sequential keys
        let h1 = fb.bin(BinOp::Lshr, w, 30i64);
        let h2 = fb.bin(BinOp::Xor, w, h1);
        let h3 = fb.mul(h2, 0xbf58476d1ce4e5b9u64 as i64);
        let h4 = fb.bin(BinOp::Lshr, h3, 27i64);
        let h5 = fb.bin(BinOp::Xor, h3, h4);
        let h6 = fb.mul(h5, 0x94d049bb133111ebu64 as i64);
        let h7 = fb.bin(BinOp::Lshr, h6, 31i64);
        let idx = fb.bin(BinOp::And, h7, DICT_ENTRIES - 1);
        fb.ret(Some(Operand::Reg(idx)));
    }

    let f = mb.declare_function("main", 4);
    {
        let mut fb = mb.function(f);
        let num_words = fb.param(0);
        let sentences = fb.param(1);
        let churn = fb.param(2);
        let seed = fb.param(3);
        let lcg = Lcg::init(&mut fb, seed);

        // Fill the dictionary with pseudo-random connector data.
        let dict_base = fb.global_addr(dict);
        let d = fb.mov(dict_base);
        fb.counted_loop(DICT_ENTRIES, |fb, _| {
            let v = lcg.next_masked(fb, 0xffff);
            fb.store(v, d, 0);
            fb.bin_to(d, BinOp::Add, d, 8i64);
        });

        // Tokenize: build the word list (churn breaks ~churn% of strides).
        let head = emit_build_list(&mut fb, &lcg, num_words, NODE_SIZE, STRING_SIZE, churn);

        // Connector table (tiny, L1-resident): the linguistic inner work.
        let conn_base = fb.global_addr(conn);
        let cinit = fb.mov(conn_base);
        fb.counted_loop(CONNECTORS, |fb, j| {
            fb.store(j, cinit, 0);
            fb.bin_to(cinit, BinOp::Add, cinit, 8i64);
        });

        // Parse each sentence: walk the list, touch each word's string,
        // probe the dictionary, and run the connector-matching inner loop
        // (short trip count — the TT filter rejects it, like most of
        // gcc/parser's small loops).
        let total = fb.mov(0i64);
        let mo_base = fb.global_addr(morph);
        let mo_end = fb.add(mo_base, (1i64 << 19) - 640 * 64);
        let mo_cur = fb.mov(mo_base);
        let word_count = fb.mov(0i64);
        fb.counted_loop(sentences, |fb, _| {
            let p = fb.mov(head);
            fb.while_nonzero(p, |fb, p| {
                let (s, _) = fb.load(p, NODE_PTR); // S2: word string ptr
                                                   // hash first: its out-loop load is the *first touch* of
                                                   // the string line, so under edge-check (which never
                                                   // prefetches out-loop loads) the string miss stays
                                                   // uncovered; naive-all covers it (the §4.1 bonus).
                let idx = fb.call(hash, &[Operand::Reg(s)]);
                let off = fb.mul(idx, 8i64);
                let da = fb.add(dict_base, off);
                let (dv, _) = fb.load(da, 0); // random dictionary probe
                                              // connector matching (linguistic work per word)
                let acc = fb.mov(idx);
                let q = fb.mov(conn_base);
                fb.counted_loop(CONNECTORS, |fb, _| {
                    let (cv, _) = fb.load(q, 0);
                    let x = fb.bin(BinOp::Xor, acc, cv);
                    let y = fb.mul(x, 3i64);
                    let z = fb.bin(BinOp::Shr, y, 1i64);
                    fb.bin_to(acc, BinOp::Add, acc, z);
                    fb.bin_to(q, BinOp::Add, q, 8i64);
                });
                let t = fb.add(acc, dv);
                fb.bin_to(total, BinOp::Add, total, t);
                let pv = peri.emit_use(fb, 2);
                fb.bin_to(total, BinOp::Add, total, pv);

                // Morphology table pass, one 160-trip entry every 1200
                // words: total frequency just below FT on train, above it
                // on ref (the Figs. 23-25 edge-profile sensitivity).
                fb.bin_to(word_count, BinOp::Add, word_count, 1);
                let masked = fb.bin(BinOp::Rem, word_count, 1200i64);
                let fire = fb.cmp(stride_ir::CmpOp::Eq, masked, 0i64);
                let morph_b = fb.new_block();
                let cont_b = fb.new_block();
                fb.cond_br(fire, morph_b, cont_b);
                fb.switch_to(morph_b);
                fb.counted_loop(160i64, |fb, _| {
                    let (a, _) = fb.load(mo_cur, 0);
                    let (b, _) = fb.load(mo_cur, 1 << 19);
                    let ab = fb.add(a, b);
                    fb.bin_to(total, BinOp::Add, total, ab);
                    fb.bin_to(mo_cur, BinOp::Add, mo_cur, 64i64);
                });
                let wrap = fb.cmp(stride_ir::CmpOp::Ge, mo_cur, mo_end);
                let nc = fb.select(wrap, mo_base, mo_cur);
                fb.mov_to(mo_cur, nc);
                fb.br(cont_b);
                fb.switch_to(cont_b);
                fb.load_to(p, p, NODE_NEXT); // S1: next word
            });
        });
        fb.ret(Some(Operand::Reg(total)));
    }
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale. Train input uses slightly
/// higher allocation churn than ref (8% vs 6%), standing in for SPEC's
/// different text corpora.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![300, 2, 8, 21], vec![600, 2, 6, 23]),
        Scale::Paper => (vec![5_000, 3, 4, 21], vec![10_000, 5, 3, 23]),
    };
    Workload {
        name: "197.parser",
        lang: "C",
        description: "Word Processing",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn module_verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&w.ref_args, &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        assert!(r.loads > 0);
        assert!(r.return_value.is_some());
    }

    #[test]
    fn hash_callee_has_an_out_loop_load() {
        let w = build(Scale::Test);
        let hash = w.module.function_by_name("hash_word").expect("hash fn");
        let analysis = stride_ir::FuncAnalysis::compute(hash);
        assert!(analysis.loops.loops().is_empty());
        assert_eq!(hash.loads().len(), 1);
    }

    #[test]
    fn churn_changes_layout_but_not_semantics() {
        let w = build(Scale::Test);
        let sum = |churn: i64| {
            let mut vm = Vm::new(&w.module, VmConfig::default());
            vm.run(&[200, 1, churn, 5], &mut FlatTiming, &mut NullRuntime)
                .unwrap()
                .return_value
                .unwrap()
        };
        // the list walk visits the same logical words either way; the
        // dictionary probes differ only via string contents, which are
        // index-based, so the sum is churn-invariant
        assert_eq!(sum(0), sum(50));
    }
}
