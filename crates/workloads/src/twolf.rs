//! 300.twolf — place and route simulator.
//!
//! twolf sweeps cell and net arrays during annealing. Cell records are
//! visited in order (regular); the cells' net terminals are followed
//! irregularly. A small-to-moderate gain in the paper.
//!
//! Entry arguments: `[cells, steps, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const CELL_SIZE: i64 = 96;
const NET_WORDS: i64 = 512 * 1024; // 4 MiB net table (uncovered probes)

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "twolf");
    let nets = mb.add_global("nets", (NET_WORDS * 8) as u64);

    let f = mb.declare_function("main", 3);
    let mut fb = mb.function(f);
    let cells = fb.param(0);
    let steps = fb.param(1);
    let seed = fb.param(2);
    let lcg = Lcg::init(&mut fb, seed);

    let nets_base = fb.global_addr(nets);
    let d = fb.mov(nets_base);
    fb.counted_loop(NET_WORDS, |fb, _| {
        let v = lcg.next_masked(fb, 0x7ff);
        fb.store(v, d, 0);
        fb.bin_to(d, BinOp::Add, d, 8i64);
    });

    let size = fb.mul(cells, CELL_SIZE);
    let arr = fb.alloc(size);
    fb.counted_loop(cells, |fb, i| {
        let off = fb.mul(i, CELL_SIZE);
        let c = fb.add(arr, off);
        let x = lcg.next_masked(fb, 0xfff);
        fb.store(x, c, 8); // x coordinate
        let n = lcg.next_masked(fb, NET_WORDS - 1);
        fb.store(n, c, 16); // first net terminal
        fb.store(i, c, 24); // cell id
    });

    let total = fb.mov(0i64);
    fb.counted_loop(steps, |fb, _| {
        let p = fb.mov(arr);
        fb.counted_loop(cells, |fb, _| {
            let (x, _) = fb.load(p, 8); // strided cell fields
            let (net, _) = fb.load(p, 16);
            let noff = fb.mul(net, 8i64);
            let na = fb.add(nets_base, noff);
            let (wire, _) = fb.load(na, 0); // irregular net terminal
                                            // wirelength arithmetic
            let a1 = fb.sub(wire, x);
            let a2 = fb.mul(a1, a1);
            let a3 = fb.bin(BinOp::Shr, a2, 4i64);
            let a4 = fb.bin(BinOp::Xor, a3, wire);
            let cost = fb.add(a4, x);
            fb.store(cost, p, 32);
            fb.bin_to(total, BinOp::Add, total, cost);
            let pv = peri.emit_use(fb, 2);
            fb.bin_to(total, BinOp::Add, total, pv);
            fb.bin_to(p, BinOp::Add, p, CELL_SIZE);
        });
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![400, 2, 121], vec![800, 2, 123]),
        Scale::Paper => (vec![5_000, 3, 121], vec![8_000, 5, 123]),
    };
    Workload {
        name: "300.twolf",
        lang: "C",
        description: "Place and route simulator",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[400, 2, 121], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        assert_eq!(r.loads, 2 * 400 * (3 + 12));
        assert!(r.return_value.is_some());
    }
}
