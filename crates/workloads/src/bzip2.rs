//! 256.bzip2 — block-sorting compression.
//!
//! bzip2 alternates sequential block scans with pointer-array
//! indirections into the block (sorted order). The pointer-array scan
//! itself strides perfectly; the indirected loads do not. A small-to-
//! moderate gain in the paper.
//!
//! Entry arguments: `[block_words, passes, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const BLOCK_WORDS: i64 = 128 * 1024; // 1 MiB block
const PTR_WORDS: i64 = 128 * 1024; // 1 MiB pointer array

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "bzip2");
    let block = mb.add_global("block", (BLOCK_WORDS * 8) as u64);
    let ptrs = mb.add_global("ptrs", (PTR_WORDS * 8) as u64);

    let f = mb.declare_function("main", 3);
    let mut fb = mb.function(f);
    let block_words = fb.param(0);
    let passes = fb.param(1);
    let seed = fb.param(2);
    let lcg = Lcg::init(&mut fb, seed);

    let b_base = fb.global_addr(block);
    let p_base = fb.global_addr(ptrs);
    let d = fb.mov(b_base);
    let q = fb.mov(p_base);
    fb.counted_loop(block_words, |fb, _| {
        let v = lcg.next_masked(fb, 0xff);
        fb.store(v, d, 0);
        fb.bin_to(d, BinOp::Add, d, 8i64);
        // "sorted" pointer = pseudo-random permutation index
        let r = lcg.next_bounded(fb, block_words);
        fb.store(r, q, 0);
        fb.bin_to(q, BinOp::Add, q, 8i64);
    });

    let total = fb.mov(0i64);
    fb.counted_loop(passes, |fb, _| {
        // RLE/transform pass: sequential block scan
        let s = fb.mov(b_base);
        fb.counted_loop(block_words, |fb, _| {
            let (v, _) = fb.load(s, 0);
            fb.bin_to(total, BinOp::Add, total, v);
            fb.bin_to(s, BinOp::Add, s, 16i64);
        });
        // output pass: walk the pointer array, indirect into the block
        let t = fb.mov(p_base);
        fb.counted_loop(block_words, |fb, _| {
            let (idx, _) = fb.load(t, 0); // strided pointer-array load
            let boff = fb.mul(idx, 8i64);
            let ba = fb.add(b_base, boff);
            let (v, _) = fb.load(ba, 0); // irregular block load
            fb.bin_to(total, BinOp::Add, total, v);
            let pv = peri.emit_use(fb, 2);
            fb.bin_to(total, BinOp::Add, total, pv);
            fb.bin_to(t, BinOp::Add, t, 16i64);
        });
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![900, 2, 111], vec![1800, 2, 113]),
        Scale::Paper => (vec![24_000, 3, 111], vec![48_000, 5, 113]),
    };
    Workload {
        name: "256.bzip2",
        lang: "C",
        description: "Compression",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[900, 2, 111], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // scan pass: 1 load/word; output pass: 2 + peripheral 11
        assert_eq!(r.loads, 2 * (900 + 900 * 14));
    }

    #[test]
    fn scales_fit_the_globals() {
        for w in [build(Scale::Test), build(Scale::Paper)] {
            // both scans advance 16 bytes per processed word
            assert!(w.ref_args[0] * 2 <= BLOCK_WORDS);
        }
    }
}
