//! Shared IR-building blocks for the synthetic benchmarks: a deterministic
//! in-IR pseudo-random generator, linked-list construction with
//! configurable allocation churn, and array-walk emitters.
//!
//! Everything random is computed *inside* the simulated program (a 64-bit
//! LCG), so runs are bit-reproducible and the train/ref inputs steer
//! behaviour only through the entry-function arguments.

use stride_ir::{BinOp, CmpOp, FunctionBuilder, Operand, Reg};

/// A linear congruential generator living in IR registers
/// (Knuth's MMIX multiplier).
#[derive(Clone, Copy, Debug)]
pub struct Lcg {
    state: Reg,
}

impl Lcg {
    /// Emits initialization `state = seed` in the current block.
    pub fn init(fb: &mut FunctionBuilder<'_>, seed: impl Into<Operand>) -> Self {
        let state = fb.mov(seed);
        Lcg { state }
    }

    /// Emits one LCG step and returns a register holding the next raw
    /// 64-bit value.
    pub fn next(&self, fb: &mut FunctionBuilder<'_>) -> Reg {
        fb.bin_to(self.state, BinOp::Mul, self.state, 6364136223846793005i64);
        fb.bin_to(self.state, BinOp::Add, self.state, 1442695040888963407i64);
        // use the upper bits: they have the best statistical quality
        fb.bin(BinOp::Lshr, self.state, 33i64)
    }

    /// Emits `next() & mask` — a bounded value for power-of-two ranges.
    pub fn next_masked(&self, fb: &mut FunctionBuilder<'_>, mask: i64) -> Reg {
        let v = self.next(fb);
        fb.bin(BinOp::And, v, mask)
    }

    /// Emits `next() % bound` (bound need not be a power of two).
    pub fn next_bounded(&self, fb: &mut FunctionBuilder<'_>, bound: impl Into<Operand>) -> Reg {
        let v = self.next(fb);
        fb.bin(BinOp::Rem, v, bound)
    }
}

/// Peripheral memory traffic: the out-loop and low-trip-loop loads that
/// dominate real programs' reference mix (about 40% of SPECINT2000's load
/// references are out-loop and only ~7.5% sit in loops with trip counts
/// above 128, §3.2/§4.1 of the paper). Each benchmark wires one of these
/// into its hot loop so Figs. 17, 18 and 21 have the right populations.
///
/// The helper function contains three *out-loop* loads over a small
/// (L1/L2-resident) scratch global:
///
/// * a fixed-address cursor read — zero stride ("no pattern");
/// * a cursor walk whose step alternates between two values in 64-call
///   phases — a *phased multi-stride* (PMST) out-loop load, which §2.3
///   classifies but refuses to prefetch;
/// * a hash-scattered probe — no pattern.
///
/// [`Peripheral::emit_use`] additionally emits a short (8-trip) scan loop
/// at the call site: in-loop loads the trip-count filter rejects.
#[derive(Clone, Copy, Debug)]
pub struct Peripheral {
    helper: stride_ir::FuncId,
    scratch: stride_ir::GlobalId,
}

/// Scratch words addressable by the peripheral cursor (16 KiB).
const SCRATCH_WORDS: i64 = 2048;

impl Peripheral {
    /// Declares the scratch global and helper function.
    pub fn declare(mb: &mut stride_ir::ModuleBuilder, prefix: &str) -> Self {
        let scratch = mb.add_global(format!("{prefix}_scratch"), (SCRATCH_WORDS * 8 + 64) as u64);
        let helper = mb.declare_function(format!("{prefix}_misc"), 1);
        let mut fb = mb.function(helper);
        let base = fb.param(0);
        let (c, _) = fb.load(base, 0); // fixed address: zero stride
        let ph = fb.bin(BinOp::Shr, c, 6i64);
        let ph1 = fb.bin(BinOp::And, ph, 1i64);
        let step = fb.select(ph1, 3i64, 5i64);
        let idx = fb.bin(BinOp::And, c, SCRATCH_WORDS - 1);
        let off = fb.mul(idx, 8i64);
        let a1 = fb.add(base, off);
        let (v1, _) = fb.load(a1, 64); // phased cursor walk: PMST out-loop
        let m0 = fb.bin(BinOp::Xor, v1, c);
        let m1 = fb.mul(m0, 0x9e3779b97f4a7c15u64 as i64);
        let m2 = fb.bin(BinOp::Lshr, m1, 23i64);
        let idx2 = fb.bin(BinOp::And, m2, SCRATCH_WORDS - 1);
        let off2 = fb.mul(idx2, 8i64);
        let a2 = fb.add(base, off2);
        let (v2, _) = fb.load(a2, 64); // scattered: no pattern
        let c2 = fb.add(c, step);
        fb.store(c2, base, 0);
        let r = fb.add(v1, v2);
        fb.ret(Some(stride_ir::Operand::Reg(r)));
        Peripheral { helper, scratch }
    }

    /// Emits `calls` helper invocations plus one 8-trip scratch scan in
    /// the current block, accumulating into a fresh register (returned so
    /// results stay live).
    pub fn emit_use(&self, fb: &mut FunctionBuilder<'_>, calls: u32) -> Reg {
        let base = fb.global_addr(self.scratch);
        let acc = fb.mov(0i64);
        for _ in 0..calls {
            let v = fb.call(self.helper, &[stride_ir::Operand::Reg(base)]);
            fb.bin_to(acc, BinOp::Add, acc, v);
        }
        // low-trip scan: rejected by the TT filter, profiled by naive-*
        let q = fb.mov(base);
        fb.counted_loop(6i64, |fb, _| {
            let (v, _) = fb.load(q, 64);
            fb.bin_to(acc, BinOp::Add, acc, v);
            fb.bin_to(q, BinOp::Add, q, 16i64);
        });
        acc
    }
}

/// Field offsets of the standard list node used by the pointer-chasing
/// benchmarks: `next` pointer at 0, payload words after it.
pub const NODE_NEXT: i64 = 0;
/// First payload field.
pub const NODE_DATA: i64 = 8;
/// Second payload field (commonly a pointer to satellite data).
pub const NODE_PTR: i64 = 16;

/// Emits code that builds a singly linked list of `count` nodes of
/// `node_size` bytes and returns the head register.
///
/// `churn_percent` (0–100, an IR operand so train/ref inputs can differ)
/// controls allocation-order perturbation: with probability
/// `churn_percent`% a node is first freed and reallocated after a decoy
/// allocation, so its address breaks the bump-allocation stride — the
/// mechanism behind 197.parser's "94% same stride" (§1).
///
/// Each node's `NODE_DATA` field holds its index; `NODE_PTR` holds a
/// pointer to a satellite allocation of `sat_size` bytes (0 = none),
/// allocated in the same order (like parser's strings).
pub fn emit_build_list(
    fb: &mut FunctionBuilder<'_>,
    lcg: &Lcg,
    count: impl Into<Operand>,
    node_size: i64,
    sat_size: i64,
    churn_percent: impl Into<Operand>,
) -> Reg {
    let count = count.into();
    let churn = fb.mov(churn_percent);
    let head = fb.mov(0i64);
    let tail = fb.mov(0i64);
    fb.counted_loop(count, |fb, i| {
        let node = fb.alloc(node_size);
        // churn: sometimes free + decoy-alloc + realloc to break the stride
        let r = lcg.next_bounded(fb, 100i64);
        let do_churn = fb.cmp(CmpOp::Lt, r, churn);
        let churn_b = fb.new_block();
        let cont_b = fb.new_block();
        fb.cond_br(do_churn, churn_b, cont_b);
        fb.switch_to(churn_b);
        // decoy occupies the node's slot; node is re-allocated further on
        fb.free(node);
        let decoy = fb.alloc(node_size);
        let node2 = fb.alloc(node_size);
        fb.free(decoy);
        fb.mov_to(node, node2);
        fb.br(cont_b);
        fb.switch_to(cont_b);

        fb.store(0i64, node, NODE_NEXT);
        fb.store(i, node, NODE_DATA);
        // append
        let have_tail = fb.cmp(CmpOp::Ne, tail, 0i64);
        let app_b = fb.new_block();
        let first_b = fb.new_block();
        let join = fb.new_block();
        fb.cond_br(have_tail, app_b, first_b);
        fb.switch_to(app_b);
        fb.store(node, tail, NODE_NEXT);
        fb.br(join);
        fb.switch_to(first_b);
        fb.mov_to(head, node);
        fb.br(join);
        fb.switch_to(join);
        fb.mov_to(tail, node);
    });

    // Satellite phase: a second pass allocates the satellite blocks in a
    // *separate* arena region (their own bump range), in traversal order
    // and with the same churn probability — like parser's string arena.
    if sat_size > 0 {
        let idx = fb.mov(0i64);
        let p = fb.mov(head);
        fb.while_nonzero(p, |fb, p| {
            let sat = fb.alloc(sat_size);
            let r = lcg.next_bounded(fb, 100i64);
            let do_churn = fb.cmp(CmpOp::Lt, r, churn);
            let churn_b = fb.new_block();
            let cont_b = fb.new_block();
            fb.cond_br(do_churn, churn_b, cont_b);
            fb.switch_to(churn_b);
            fb.free(sat);
            let decoy = fb.alloc(sat_size);
            let sat2 = fb.alloc(sat_size);
            fb.free(decoy);
            fb.mov_to(sat, sat2);
            fb.br(cont_b);
            fb.switch_to(cont_b);
            fb.store(idx, sat, 0);
            fb.store(idx, sat, 8);
            fb.store(sat, p, NODE_PTR);
            fb.bin_to(idx, BinOp::Add, idx, 1);
            fb.load_to(p, p, NODE_NEXT);
        });
    }
    head
}

/// Emits a strided read loop over `[base, base + count*stride)`,
/// accumulating into a fresh register which is returned. Returns also the
/// load's site via the closure-free API: the caller can find it as the
/// only load of the loop if needed.
pub fn emit_array_walk(
    fb: &mut FunctionBuilder<'_>,
    base: Reg,
    count: impl Into<Operand>,
    stride: i64,
) -> Reg {
    let sum = fb.mov(0i64);
    fb.counted_loop(count, |fb, i| {
        let off = fb.mul(i, stride);
        let a = fb.add(base, off);
        let (v, _) = fb.load(a, 0);
        fb.bin_to(sum, BinOp::Add, sum, v);
    });
    sum
}

/// Emits a pointer-chasing walk (`p = p->next`) reading `NODE_DATA` of
/// each node into an accumulator, which is returned.
pub fn emit_list_walk(fb: &mut FunctionBuilder<'_>, head: Reg) -> Reg {
    let sum = fb.mov(0i64);
    let p = fb.mov(head);
    fb.while_nonzero(p, |fb, p| {
        let (v, _) = fb.load(p, NODE_DATA);
        fb.bin_to(sum, BinOp::Add, sum, v);
        fb.load_to(p, p, NODE_NEXT);
    });
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{ModuleBuilder, Operand};
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    fn run(module: &stride_ir::Module, args: &[i64]) -> i64 {
        let mut vm = Vm::new(module, VmConfig::default());
        vm.run(args, &mut FlatTiming, &mut NullRuntime)
            .expect("run")
            .return_value
            .expect("return value")
    }

    #[test]
    fn lcg_is_deterministic_and_varied() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let seed = fb.param(0);
        let lcg = Lcg::init(&mut fb, seed);
        let a = lcg.next(&mut fb);
        let b = lcg.next(&mut fb);
        let differ = fb.cmp(CmpOp::Ne, a, b);
        fb.ret(Some(Operand::Reg(differ)));
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run(&m, &[42]), 1);
        assert_eq!(run(&m, &[42]), 1); // deterministic across runs
    }

    #[test]
    fn lcg_bounded_stays_in_range() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let seed = fb.param(0);
        let lcg = Lcg::init(&mut fb, seed);
        // max over 100 draws of next_bounded(10) must be < 10
        let max = fb.mov(0i64);
        fb.counted_loop(100i64, |fb, _| {
            let v = lcg.next_bounded(fb, 10i64);
            let gt = fb.cmp(CmpOp::Gt, v, max);
            let nv = fb.select(gt, v, max);
            fb.mov_to(max, nv);
        });
        fb.ret(Some(Operand::Reg(max)));
        mb.set_entry(f);
        let m = mb.finish();
        let v = run(&m, &[7]);
        assert!((0..10).contains(&v), "got {v}");
    }

    #[test]
    fn list_walk_sums_indices() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 2);
        let mut fb = mb.function(f);
        let lcg = Lcg::init(&mut fb, 1i64);
        let n = fb.param(0);
        let churn = fb.param(1);
        let head = emit_build_list(&mut fb, &lcg, n, 32, 0, churn);
        let sum = emit_list_walk(&mut fb, head);
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        let m = mb.finish();
        stride_ir::verify_module(&m).expect("verifies");
        // sum of 0..100 regardless of churn
        assert_eq!(run(&m, &[100, 0]), 4950);
        assert_eq!(run(&m, &[100, 50]), 4950);
    }

    #[test]
    fn zero_churn_list_has_constant_stride() {
        // With churn 0 nodes are bump-allocated: addresses differ by the
        // rounded node size + satellite size.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let lcg = Lcg::init(&mut fb, 1i64);
        let n = fb.param(0);
        let head = emit_build_list(&mut fb, &lcg, n, 48, 0, 0i64);
        // return head->next - head (the stride)
        let (next, _) = fb.load(head, NODE_NEXT);
        let stride = fb.sub(next, head);
        fb.ret(Some(Operand::Reg(stride)));
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run(&m, &[10]), 48);
    }

    #[test]
    fn satellites_are_allocated_in_order() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let lcg = Lcg::init(&mut fb, 1i64);
        let n = fb.param(0);
        let head = emit_build_list(&mut fb, &lcg, n, 32, 24, 0i64);
        // stride between satellite pointers of consecutive nodes
        let (n2, _) = fb.load(head, NODE_NEXT);
        let (s1, _) = fb.load(head, NODE_PTR);
        let (s2, _) = fb.load(n2, NODE_PTR);
        let stride = fb.sub(s2, s1);
        fb.ret(Some(Operand::Reg(stride)));
        mb.set_entry(f);
        let m = mb.finish();
        // separate satellite arena: stride = the rounded satellite size
        assert_eq!(run(&m, &[10]), 32);
    }

    #[test]
    fn array_walk_sums() {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 4096);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        fb.counted_loop(8i64, |fb, i| {
            let off = fb.mul(i, 8i64);
            let a = fb.add(base, off);
            fb.store(i, a, 0);
        });
        let sum = emit_array_walk(&mut fb, base, 8i64, 8);
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        let m = mb.finish();
        assert_eq!(run(&m, &[]), 28);
    }
}
