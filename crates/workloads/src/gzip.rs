//! 164.gzip — compression/decompression.
//!
//! gzip's hot loops scan the input buffer sequentially and probe a small
//! hash chain. Sequential byte scans are already cache-friendly (one miss
//! per line, and the buffer fits low in the hierarchy), so the paper shows
//! only a small gain here.
//!
//! Entry arguments: `[input_words, blocks, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const IN_WORDS: i64 = 64 * 1024; // 512 KiB input buffer
const CHAIN_WORDS: i64 = 8 * 1024; // 64 KiB hash chain

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "gzip");
    let input = mb.add_global("input", (IN_WORDS * 8) as u64);
    let chain = mb.add_global("chain", (CHAIN_WORDS * 8) as u64);

    let f = mb.declare_function("main", 3);
    let mut fb = mb.function(f);
    let input_words = fb.param(0);
    let blocks = fb.param(1);
    let seed = fb.param(2);
    let lcg = Lcg::init(&mut fb, seed);

    let in_base = fb.global_addr(input);
    let chain_base = fb.global_addr(chain);
    let d = fb.mov(in_base);
    fb.counted_loop(input_words, |fb, _| {
        let v = lcg.next_masked(fb, 0xff);
        fb.store(v, d, 0);
        fb.bin_to(d, BinOp::Add, d, 8i64);
    });

    let total = fb.mov(0i64);
    fb.counted_loop(blocks, |fb, _| {
        // deflate: sequential scan + hash-chain probe/update
        let p = fb.mov(in_base);
        fb.counted_loop(input_words, |fb, _| {
            let (v, _) = fb.load(p, 0); // sequential, stride 8
            let m = fb.mul(v, 2654435761i64);
            let h = fb.bin(BinOp::Lshr, m, 20i64);
            let idx = fb.bin(BinOp::And, h, CHAIN_WORDS - 1);
            let coff = fb.mul(idx, 8i64);
            let ca = fb.add(chain_base, coff);
            let (prev, _) = fb.load(ca, 0); // hash chain (L2-resident)
            fb.store(p, ca, 0);
            // match-length / CRC arithmetic
            let c1 = fb.bin(BinOp::Xor, v, prev);
            let c2 = fb.mul(c1, 0xedb88320i64);
            let c3 = fb.bin(BinOp::Lshr, c2, 11i64);
            let c4 = fb.add(c3, v);
            let x = fb.add(c4, prev);
            fb.bin_to(total, BinOp::Add, total, x);
            let pv = peri.emit_use(fb, 2);
            fb.bin_to(total, BinOp::Add, total, pv);
            fb.bin_to(p, BinOp::Add, p, 16i64);
        });
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![800, 2, 41], vec![1600, 2, 43]),
        Scale::Paper => (vec![12_000, 4, 41], vec![24_000, 8, 43]),
    };
    Workload {
        name: "164.gzip",
        lang: "C",
        description: "Compression/Decompression",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[800, 2, 41], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // 2 loads + peripheral 12 per word per block
        assert_eq!(r.loads, (2 + 12) * 800 * 2);
    }

    #[test]
    fn input_cap_respected() {
        // input_words larger than the buffer would wrap into the chain
        // global; the scales stay below IN_WORDS.
        for w in [build(Scale::Test), build(Scale::Paper)] {
            // the scan advances 16 bytes per word processed
            assert!(w.ref_args[0] * 2 <= IN_WORDS);
            assert!(w.train_args[0] * 2 <= IN_WORDS);
        }
    }
}
