//! 252.eon — probabilistic ray tracer (the suite's only C++ program).
//!
//! eon iterates over scene-object arrays (regular, L3-resident) and
//! samples material tables irregularly. Strides exist but the data is
//! close to the core, so the paper shows only a small gain.
//!
//! Entry arguments: `[objects, frames, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const OBJ_SIZE: i64 = 128;
const TEX_WORDS: i64 = 8 * 1024; // 64 KiB texture table (L2-resident)

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "eon");
    let tex = mb.add_global("textures", (TEX_WORDS * 8) as u64);

    let f = mb.declare_function("main", 3);
    let mut fb = mb.function(f);
    let objects = fb.param(0);
    let frames = fb.param(1);
    let seed = fb.param(2);
    let lcg = Lcg::init(&mut fb, seed);

    let tex_base = fb.global_addr(tex);
    let d = fb.mov(tex_base);
    fb.counted_loop(TEX_WORDS, |fb, _| {
        let v = lcg.next_masked(fb, 0xfff);
        fb.store(v, d, 0);
        fb.bin_to(d, BinOp::Add, d, 8i64);
    });

    let size = fb.mul(objects, OBJ_SIZE);
    let objs = fb.alloc(size);
    fb.counted_loop(objects, |fb, i| {
        let off = fb.mul(i, OBJ_SIZE);
        let o = fb.add(objs, off);
        let n = lcg.next_masked(fb, TEX_WORDS - 1);
        fb.store(n, o, 8); // material index
        fb.store(i, o, 16); // geometry word
    });

    let total = fb.mov(0i64);
    fb.counted_loop(frames, |fb, _| {
        let p = fb.mov(objs);
        fb.counted_loop(objects, |fb, _| {
            let (mat, _) = fb.load(p, 8); // strided object fields
            let (geo, _) = fb.load(p, 16);
            let toff = fb.mul(mat, 8i64);
            let ta = fb.add(tex_base, toff);
            let (shade, _) = fb.load(ta, 0); // irregular texture sample
                                             // shading math: eon is compute-heavy, not memory-bound
            let mut c = fb.add(geo, shade);
            for k in 0..12 {
                let a = fb.mul(c, 2654435761i64 + k);
                let b = fb.bin(BinOp::Lshr, a, 7i64);
                let x = fb.bin(BinOp::Xor, b, geo);
                let y = fb.add(x, shade);
                let z = fb.bin(BinOp::And, y, 0xffffffi64);
                c = fb.add(z, c);
            }
            fb.store(c, p, 24); // shaded color
            fb.bin_to(total, BinOp::Add, total, c);
            let pv = peri.emit_use(fb, 2);
            fb.bin_to(total, BinOp::Add, total, pv);
            fb.bin_to(p, BinOp::Add, p, OBJ_SIZE);
        });
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![300, 2, 81], vec![600, 2, 83]),
        Scale::Paper => (vec![350, 18, 81], vec![400, 45, 83]),
    };
    Workload {
        name: "252.eon",
        lang: "C++",
        description: "Computer Visualization",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[300, 2, 81], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        assert_eq!(r.loads, 2 * 300 * (3 + 12));
        // texture init + per-object material/color stores + one
        // peripheral cursor write-back per helper call
        assert_eq!(r.stores, TEX_WORDS as u64 + 2 * 300 + 2 * 300 + 1200);
    }
}
