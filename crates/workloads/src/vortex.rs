//! 255.vortex — object-oriented database.
//!
//! vortex traverses object records that were mostly inserted in key order
//! (mild allocation churn), with satellite attribute blocks — strong but
//! not perfect strides over a memory-sized working set. The paper shows a
//! moderate gain.
//!
//! Entry arguments: `[records, queries, seed]`.

use crate::common::{emit_build_list, Lcg, Peripheral, NODE_DATA, NODE_NEXT, NODE_PTR};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const NODE_SIZE: i64 = 64;
const ATTR_SIZE: i64 = 64;

const CATALOG_WORDS: i64 = 256 * 1024; // 2 MiB catalog (uncovered probes)

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "vortex");
    let catalog = mb.add_global("catalog", (CATALOG_WORDS * 8) as u64);

    // attribute accessor (out-loop load in a callee)
    let get_key = mb.declare_function("get_key", 1);
    {
        let mut fb = mb.function(get_key);
        let rec = fb.param(0);
        let (k, _) = fb.load(rec, NODE_DATA);
        fb.ret(Some(Operand::Reg(k)));
    }

    let f = mb.declare_function("main", 3);
    {
        let mut fb = mb.function(f);
        let records = fb.param(0);
        let queries = fb.param(1);
        let seed = fb.param(2);
        let lcg = Lcg::init(&mut fb, seed);

        // 5% churn (the free-list dance breaks two strides per event):
        // most records stay in insertion order.
        let head = emit_build_list(&mut fb, &lcg, records, NODE_SIZE, ATTR_SIZE, 5i64);
        let cat_base = fb.global_addr(catalog);

        let total = fb.mov(0i64);
        fb.counted_loop(queries, |fb, _| {
            let p = fb.mov(head);
            fb.while_nonzero(p, |fb, p| {
                let key = fb.call(get_key, &[Operand::Reg(p)]);
                let (attr_p, _) = fb.load(p, NODE_PTR);
                let (attr, _) = fb.load(attr_p, 0); // satellite block
                                                    // catalog lookup: hash-indexed, uncovered
                let h0 = fb.bin(BinOp::Lshr, key, 17i64);
                let h1 = fb.bin(BinOp::Xor, key, h0);
                let h = fb.mul(h1, 0x9e3779b97f4a7c15u64 as i64);
                let h2 = fb.bin(BinOp::Lshr, h, 29i64);
                let h3 = fb.bin(BinOp::Xor, h, h2);
                let h4 = fb.mul(h3, 0xbf58476d1ce4e5b9u64 as i64);
                let hi = fb.bin(BinOp::Lshr, h4, 33i64);
                let idx = fb.bin(BinOp::And, hi, CATALOG_WORDS - 1);
                let coff = fb.mul(idx, 8i64);
                let ca = fb.add(cat_base, coff);
                let (cv, _) = fb.load(ca, 0);
                let g1 = fb.bin(BinOp::Xor, cv, idx);
                let g2 = fb.mul(g1, 0xc2b2ae35i64);
                let g3 = fb.bin(BinOp::Lshr, g2, 19i64);
                let g4 = fb.bin(BinOp::And, g3, CATALOG_WORDS - 1);
                let coff2 = fb.mul(g4, 8i64);
                let ca2 = fb.add(cat_base, coff2);
                let (cv2, _) = fb.load(ca2, 0); // second catalog probe
                let cv = fb.add(cv, cv2);
                // key-compare chain
                let k1 = fb.bin(BinOp::Xor, cv, attr);
                let k2 = fb.mul(k1, 3i64);
                let k3 = fb.bin(BinOp::Shr, k2, 2i64);
                let k4 = fb.mul(k3, 0x51ed27i64);
                let k5 = fb.bin(BinOp::Lshr, k4, 9i64);
                let k6 = fb.bin(BinOp::Xor, k5, key);
                let k7 = fb.add(k6, cv);
                let k8 = fb.bin(BinOp::And, k7, 0xfffffi64);
                let k9 = fb.mul(k8, 3i64);
                let k10 = fb.bin(BinOp::Xor, k9, k5);
                let k11 = fb.add(k10, k2);
                let k12 = fb.bin(BinOp::Shr, k11, 3i64);
                let k13 = fb.mul(k12, 5i64);
                let k14 = fb.bin(BinOp::And, k13, 0x3ffffffi64);
                let t = fb.add(key, k14);
                fb.bin_to(total, BinOp::Add, total, t);
                let pv = peri.emit_use(fb, 2);
                fb.bin_to(total, BinOp::Add, total, pv);
                fb.load_to(p, p, NODE_NEXT);
            });
        });
        fb.ret(Some(Operand::Reg(total)));
    }
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![400, 2, 101], vec![800, 2, 103]),
        Scale::Paper => (vec![1_500, 4, 101], vec![2_000, 8, 103]),
    };
    Workload {
        name: "255.vortex",
        lang: "C",
        description: "Object-oriented database",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[400, 2, 101], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // per record per query: get_key + NODE_PTR + attr + 2 catalog +
        // next + peripheral 11, plus one next-load per record in the
        // satellite build pass
        assert_eq!(r.loads, 2 * 400 * (6 + 12) + 400);
    }

    #[test]
    fn accessor_is_out_loop() {
        let w = build(Scale::Test);
        let f = w.module.function_by_name("get_key").unwrap();
        assert!(stride_ir::FuncAnalysis::compute(f).loops.loops().is_empty());
    }
}
