//! Synthetic SPECINT2000 workloads for the stride-prefetch reproduction.
//!
//! The paper evaluates on the twelve SPECINT2000 programs (Fig. 15). We
//! cannot compile their C/C++ sources; what the paper's techniques consume
//! is each program's *loop structure and address stream*, so every
//! benchmark here is an IR program reproducing its namesake's
//! memory-reference character:
//!
//! | Benchmark | Reproduced behaviour |
//! |---|---|
//! | 164.gzip | sequential buffer scans + small hash chain |
//! | 175.vpr | strided cost sweeps + random swap pairs |
//! | 176.gcc | short (sub-TT) insn-list loops, random symtab |
//! | 181.mcf | huge strided arc scans + random node lookups |
//! | 186.crafty | random transposition-table probes |
//! | 197.parser | Fig. 1: churned list + strings + dictionary hash |
//! | 252.eon | L3-resident object sweeps + texture sampling |
//! | 253.perlbmk | heavily churned op arena (weak strides) |
//! | 254.gap | Fig. 2: phased multi-stride GC sweep |
//! | 255.vortex | mildly churned record traversal + satellites |
//! | 256.bzip2 | pointer-array scan + block indirection |
//! | 300.twolf | strided cell sweeps + irregular net terminals |
//!
//! # Example
//!
//! ```
//! use stride_workloads::{workload_by_name, Scale};
//! use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};
//!
//! let w = workload_by_name("181.mcf", Scale::Test).expect("known benchmark");
//! let mut vm = Vm::new(&w.module, VmConfig::default());
//! let result = vm.run(&w.train_args, &mut FlatTiming, &mut NullRuntime)?;
//! assert!(result.loads > 0);
//! # Ok::<(), stride_vm::VmError>(())
//! ```

pub mod bzip2;
pub mod common;
pub mod crafty;
pub mod eon;
pub mod gap;
pub mod gcc;
pub mod gzip;
pub mod mcf;
pub mod parser;
pub mod perlbmk;
pub mod spec;
pub mod twolf;
pub mod vortex;
pub mod vpr;

pub use common::{emit_array_walk, emit_build_list, emit_list_walk, Lcg, Peripheral};
pub use spec::{
    all_workloads, spec_by_name, workload_by_name, Scale, Workload, WorkloadSpec, REGISTRY,
};
