//! 186.crafty — chess.
//!
//! crafty's memory time goes to transposition-table probes: hash-indexed
//! accesses into a table comparable in size to the L3. There is no stride
//! to discover, so the paper shows no gain — the interesting property is
//! that the profiler must *not* be fooled into prefetching.
//!
//! Entry arguments: `[positions, seed]`.

use crate::common::{Lcg, Peripheral};
use crate::spec::{Scale, Workload};
use stride_ir::{BinOp, Module, ModuleBuilder, Operand};

const TT_ENTRIES: i64 = 256 * 1024; // 2 MiB transposition table
const ATTACK_WORDS: i64 = 512; // 4 KiB attack tables (L1-resident)

fn build_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let peri = Peripheral::declare(&mut mb, "crafty");
    let tt = mb.add_global("ttable", (TT_ENTRIES * 8) as u64);
    let atk = mb.add_global("attacks", (ATTACK_WORDS * 8) as u64);

    let f = mb.declare_function("main", 2);
    let mut fb = mb.function(f);
    let positions = fb.param(0);
    let seed = fb.param(1);
    let lcg = Lcg::init(&mut fb, seed);

    let tt_base = fb.global_addr(tt);
    let atk_base = fb.global_addr(atk);
    let d = fb.mov(atk_base);
    fb.counted_loop(ATTACK_WORDS, |fb, _| {
        let v = lcg.next_masked(fb, 0xff);
        fb.store(v, d, 0);
        fb.bin_to(d, BinOp::Add, d, 8i64);
    });

    let total = fb.mov(0i64);
    fb.counted_loop(positions, |fb, _| {
        // transposition probe: random 16-byte entry
        let key = lcg.next(&mut *fb);
        let idx = fb.bin(BinOp::And, key, TT_ENTRIES - 2);
        let off = fb.mul(idx, 8i64);
        let e = fb.add(tt_base, off);
        let (sig, _) = fb.load(e, 0);
        let (score, _) = fb.load(e, 8);
        fb.store(key, e, 0);
        // move generation: short attack-table scan (trip 8 — filtered)
        let acc = fb.mov(0i64);
        fb.counted_loop(8i64, |fb, j| {
            let aoff = fb.mul(j, 8i64);
            let aa = fb.add(atk_base, aoff);
            let (a, _) = fb.load(aa, 0);
            fb.bin_to(acc, BinOp::Add, acc, a);
        });
        let s = fb.add(sig, score);
        let s2 = fb.add(s, acc);
        fb.bin_to(total, BinOp::Add, total, s2);
        let pv = peri.emit_use(fb, 3);
        fb.bin_to(total, BinOp::Add, total, pv);
    });
    fb.ret(Some(Operand::Reg(total)));
    mb.set_entry(f);
    mb.finish()
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (train, reference) = match scale {
        Scale::Test => (vec![600, 71], vec![1200, 73]),
        Scale::Paper => (vec![15_000, 71], vec![35_000, 73]),
    };
    Workload {
        name: "186.crafty",
        lang: "C",
        description: "Game Playing: Chess",
        module: build_module(),
        train_args: train,
        ref_args: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};

    #[test]
    fn verifies_and_runs() {
        let w = build(Scale::Test);
        stride_ir::verify_module(&w.module).expect("verifies");
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let r = vm
            .run(&[600, 71], &mut FlatTiming, &mut NullRuntime)
            .unwrap();
        // per position: 2 TT + 8 attack + peripheral (3 calls x 3 + 6)
        assert_eq!(r.loads, 600 * (10 + 15));
    }

    #[test]
    fn probes_are_spread_across_the_table() {
        // The LCG must not collapse probes onto a few entries: run two
        // seeds and confirm different results (stores hit different
        // entries).
        let w = build(Scale::Test);
        let run = |seed: i64| {
            let mut vm = Vm::new(&w.module, VmConfig::default());
            vm.run(&[600, seed], &mut FlatTiming, &mut NullRuntime)
                .unwrap()
                .return_value
                .unwrap()
        };
        assert_ne!(run(71), run(72));
    }
}
