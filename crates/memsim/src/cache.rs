//! Set-associative cache with LRU replacement.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_size: u64,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or sizes are not
    /// powers of two.
    pub fn num_sets(&self) -> u64 {
        assert!(self.line_size.is_power_of_two(), "line size must be 2^k");
        let lines = self.size_bytes / self.line_size;
        assert_eq!(
            lines % self.ways as u64,
            0,
            "capacity must divide evenly into ways"
        );
        let sets = lines / self.ways as u64;
        assert!(sets.is_power_of_two(), "set count must be 2^k");
        sets
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

/// One set-associative, LRU cache level.
///
/// The cache is a timing structure only — it tracks presence of line
/// addresses, not data (the VM's [`stride_vm::Memory`] holds the data).
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    set_mask: u64,
    line_shift: u32,
    ways: Vec<Way>,
    /// Per-set most-recently-used way offset. A lookup hint only: the
    /// stamps stay authoritative for LRU eviction, so hit/miss results and
    /// eviction order are identical to a plain linear scan.
    mru: Vec<u32>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Hits served by the MRU fast path without scanning the set
    /// (observability only — never affects hit/miss results).
    way_hint_hits: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see
    /// [`CacheGeometry::num_sets`]).
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.num_sets();
        Cache {
            geometry,
            set_mask: sets - 1,
            line_shift: geometry.line_size.trailing_zeros(),
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    stamp: 0
                };
                (sets * geometry.ways as u64) as usize
            ],
            mru: vec![0; sets as usize],
            tick: 0,
            hits: 0,
            misses: 0,
            way_hint_hits: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_range(&self, addr: u64) -> (std::ops::Range<usize>, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = self.geometry.ways as usize;
        (set * ways..(set + 1) * ways, line)
    }

    /// Looks `addr` up, updating LRU and hit/miss statistics. Returns true
    /// on hit. Does not allocate on miss (use [`Cache::install`]).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = self.geometry.ways as usize;
        let base = set * ways;
        // Fast path: most accesses re-touch the way touched last.
        let m = self.mru[set] as usize;
        let w = &mut self.ways[base + m];
        if w.valid && w.tag == line {
            w.stamp = self.tick;
            self.hits += 1;
            self.way_hint_hits += 1;
            return true;
        }
        for i in 0..ways {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == line {
                w.stamp = self.tick;
                self.mru[set] = i as u32;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Applies `n` guaranteed hits of `addr`'s line in one batch. Exactly
    /// equivalent to calling [`Cache::access`] `n` times *when the line is
    /// resident in the MRU way of its set* (each such access would take the
    /// MRU fast path: tick +1, stamp refresh, hit +1, way-hint hit +1). If
    /// the precondition does not hold — the caller's tracking was wrong —
    /// the accesses are replayed individually so statistics stay exact.
    pub fn note_repeat_hits(&mut self, addr: u64, n: u64) {
        if n == 0 {
            return;
        }
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = self.geometry.ways as usize;
        let m = self.mru[set] as usize;
        let w = &mut self.ways[set * ways + m];
        if w.valid && w.tag == line {
            self.tick += n;
            w.stamp = self.tick;
            self.hits += n;
            self.way_hint_hits += n;
        } else {
            debug_assert!(false, "note_repeat_hits: line not in the MRU way");
            for _ in 0..n {
                self.access(addr);
            }
        }
    }

    /// Checks for presence without touching LRU or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let (range, line) = self.set_range(addr);
        self.ways[range].iter().any(|w| w.valid && w.tag == line)
    }

    /// Installs the line of `addr`, evicting the LRU way if needed.
    /// Returns the evicted line's base address, if any.
    pub fn install(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let line_shift = self.line_shift;
        let line = addr >> line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let ways = self.geometry.ways as usize;
        let base = set_idx * ways;
        // Fast path: re-install of the way touched last (refresh).
        let m = self.mru[set_idx] as usize;
        let w = &mut self.ways[base + m];
        if w.valid && w.tag == line {
            w.stamp = tick;
            return None;
        }
        let set = &mut self.ways[base..base + ways];
        // already present: refresh
        if let Some((i, w)) = set
            .iter_mut()
            .enumerate()
            .find(|(_, w)| w.valid && w.tag == line)
        {
            w.stamp = tick;
            self.mru[set_idx] = i as u32;
            return None;
        }
        // empty way
        if let Some((i, w)) = set.iter_mut().enumerate().find(|(_, w)| !w.valid) {
            *w = Way {
                tag: line,
                valid: true,
                stamp: tick,
            };
            self.mru[set_idx] = i as u32;
            return None;
        }
        // evict LRU
        let (i, victim) = set
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .expect("nonzero associativity");
        let evicted = victim.tag << line_shift;
        *victim = Way {
            tag: line,
            valid: true,
            stamp: tick,
        };
        self.mru[set_idx] = i as u32;
        Some(evicted)
    }

    /// Invalidates the line of `addr` if present.
    pub fn invalidate(&mut self, addr: u64) {
        let (range, line) = self.set_range(addr);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.valid = false;
            }
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hits the MRU way hint served without a set scan (a subset of the
    /// hit count; Fig.-20-style overhead accounting for the simulator
    /// itself).
    pub fn way_hint_hits(&self) -> u64 {
        self.way_hint_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B
        Cache::new(CacheGeometry {
            size_bytes: 512,
            ways: 2,
            line_size: 64,
        })
    }

    #[test]
    fn geometry_set_count() {
        let g = CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_size: 64,
        };
        assert_eq!(g.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn geometry_rejects_non_power_of_two_sets() {
        CacheGeometry {
            size_bytes: 192,
            ways: 1,
            line_size: 64,
        }
        .num_sets();
    }

    #[test]
    fn miss_then_hit_after_install() {
        let mut c = small();
        assert!(!c.access(0x1000));
        c.install(0x1000);
        assert!(c.access(0x1000));
        assert!(c.access(0x1038)); // same 64B line
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // set index = (addr/64) & 3; choose three lines mapping to set 0
        let a = 0;
        let b = 64 * 4;
        let d = 2 * 64 * 4;
        c.install(a);
        c.install(b);
        c.access(a); // a most recent
        let evicted = c.install(d); // evicts b
        assert_eq!(evicted, Some(b));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn install_existing_line_refreshes_without_evicting() {
        let mut c = small();
        let a = 0;
        let b = 64 * 4;
        c.install(a);
        c.install(b);
        assert_eq!(c.install(a), None); // refresh, nothing evicted
        let d = 2 * 64 * 4;
        assert_eq!(c.install(d), Some(b)); // b was LRU
    }

    #[test]
    fn batched_repeat_hits_match_individual_accesses() {
        let mut a = small();
        let mut b = small();
        for c in [&mut a, &mut b] {
            c.install(0x1000);
            c.access(0x1000);
        }
        for _ in 0..7 {
            a.access(0x1000);
        }
        b.note_repeat_hits(0x1000, 7);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.way_hint_hits(), b.way_hint_hits());
        // Full state (ticks, stamps, MRU hints) must be identical too.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.install(0x40);
        assert!(c.contains(0x40));
        c.invalidate(0x40);
        assert!(!c.contains(0x40));
    }

    #[test]
    fn contains_does_not_affect_stats() {
        let mut c = small();
        c.install(0);
        let before = c.stats();
        let _ = c.contains(0);
        assert_eq!(c.stats(), before);
    }

    /// Regression for the MRU fast path: the exact sequence of evictions
    /// must match a plain linear-scan LRU model over a mixed access /
    /// install / invalidate workload.
    #[test]
    fn eviction_order_matches_reference_lru() {
        // Reference model: per-set list of (tag, last-use tick).
        struct RefLru {
            sets: Vec<Vec<(u64, u64)>>,
            ways: usize,
            tick: u64,
        }
        impl RefLru {
            fn access(&mut self, set: usize, tag: u64) -> bool {
                self.tick += 1;
                if let Some(e) = self.sets[set].iter_mut().find(|e| e.0 == tag) {
                    e.1 = self.tick;
                    return true;
                }
                false
            }
            fn install(&mut self, set: usize, tag: u64) -> Option<u64> {
                self.tick += 1;
                if let Some(e) = self.sets[set].iter_mut().find(|e| e.0 == tag) {
                    e.1 = self.tick;
                    return None;
                }
                if self.sets[set].len() < self.ways {
                    self.sets[set].push((tag, self.tick));
                    return None;
                }
                let i = (0..self.sets[set].len())
                    .min_by_key(|&i| self.sets[set][i].1)
                    .unwrap();
                let evicted = self.sets[set][i].0;
                self.sets[set][i] = (tag, self.tick);
                Some(evicted)
            }
        }

        let mut c = Cache::new(CacheGeometry {
            size_bytes: 1024,
            ways: 4,
            line_size: 64,
        }); // 4 sets x 4 ways
        let mut r = RefLru {
            sets: vec![Vec::new(); 4],
            ways: 4,
            tick: 0,
        };
        // Deterministic pseudo-random mixed workload with heavy re-touch
        // (exercising the MRU hint) and enough distinct lines to evict.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut last = 0u64;
        for step in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = if step % 3 == 0 { last } else { (x % 48) * 64 };
            last = addr;
            let line = addr / 64;
            let set = (line % 4) as usize;
            match step % 5 {
                0..=2 => {
                    assert_eq!(c.access(addr), r.access(set, line), "step {step}");
                }
                3 => {
                    let ev = c.install(addr);
                    let rv = r.install(set, line);
                    assert_eq!(ev, rv.map(|t| t * 64), "step {step}: eviction order");
                }
                _ => {
                    c.invalidate(addr);
                    r.sets[set].retain(|e| e.0 != line);
                    // keep model ticks aligned (invalidate does not tick)
                }
            }
        }
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        // fill all 8 ways with distinct sets and ways
        for i in 0..8u64 {
            c.install(i * 64);
        }
        for i in 0..8u64 {
            assert!(c.contains(i * 64), "line {i} evicted unexpectedly");
        }
    }
}
