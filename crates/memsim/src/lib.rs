//! Trace-driven memory-hierarchy simulator for the stride-prefetch
//! reproduction: the 733 MHz Itanium machine of the paper's §4 (16 KB
//! 4-way L1D, 96 KB 6-way L2, 2 MB 4-way L3, DTLB), with non-blocking
//! prefetch fills and an MSHR-style in-flight limit.
//!
//! [`CacheHierarchy`] implements [`stride_vm::MemoryTiming`], so a VM run
//! over it produces the cycle counts from which speedups (Fig. 16) and
//! profiling overheads (Fig. 20) are computed.
//!
//! # Example
//!
//! ```
//! use stride_memsim::{CacheHierarchy, HierarchyConfig};
//! use stride_vm::{AccessKind, MemoryTiming};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::itanium733());
//! let cold = h.access(0x10_000, 0, AccessKind::Load);
//! let warm = h.access(0x10_000, 1_000, AccessKind::Load);
//! assert!(cold > warm);
//! ```

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheGeometry};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HierarchyStats};
