//! The three-level cache hierarchy + DTLB of the paper's 733 MHz Itanium,
//! with non-blocking prefetch fills.
//!
//! Geometry (from §4 of the paper): 16 KB 4-way L1D, 96 KB 6-way unified
//! L2, 2 MB 4-way unified L3, 1 GB memory. Latencies are representative of
//! the 733 MHz Itanium: the L1 hit latency is folded into the VM's base
//! load cost; deeper levels add stalls.

use crate::cache::{Cache, CacheGeometry};
use std::collections::HashMap;
use stride_vm::{AccessKind, MemoryTiming};

/// Latency and geometry configuration of the whole hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Unified L3 geometry.
    pub l3: CacheGeometry,
    /// Extra stall cycles for an L2 hit.
    pub l2_latency: u64,
    /// Extra stall cycles for an L3 hit.
    pub l3_latency: u64,
    /// Extra stall cycles for a memory access.
    pub mem_latency: u64,
    /// DTLB entries (0 disables the TLB).
    pub tlb_entries: u32,
    /// DTLB associativity.
    pub tlb_ways: u32,
    /// Page size in bytes.
    pub page_size: u64,
    /// Stall cycles for a TLB miss (hardware page walk).
    pub tlb_miss_latency: u64,
    /// Maximum simultaneously in-flight prefetches (MSHR-style limit);
    /// further prefetches are dropped.
    pub max_inflight_prefetches: usize,
    /// Minimum cycles between successive memory-line fills (the memory
    /// bus/bandwidth constraint; 0 = unlimited). Demand misses *and*
    /// prefetch fills that reach memory contend for the same slots, so
    /// aggressive prefetching cannot hide more latency than the bus can
    /// stream — the effect that bounds the paper's speedups on real
    /// hardware.
    pub mem_bus_interval: u64,
}

impl HierarchyConfig {
    /// The 733 MHz Itanium of §4.
    pub const fn itanium733() -> Self {
        HierarchyConfig {
            l1: CacheGeometry {
                size_bytes: 16 * 1024,
                ways: 4,
                line_size: 64,
            },
            l2: CacheGeometry {
                size_bytes: 96 * 1024,
                ways: 6,
                line_size: 64,
            },
            l3: CacheGeometry {
                size_bytes: 2 * 1024 * 1024,
                ways: 4,
                line_size: 64,
            },
            l2_latency: 7,
            l3_latency: 22,
            mem_latency: 140,
            tlb_entries: 128,
            tlb_ways: 4,
            page_size: 8192,
            tlb_miss_latency: 28,
            max_inflight_prefetches: 32,
            mem_bus_interval: 24,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::itanium733()
    }
}

/// Hit/miss and prefetch statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Demand accesses that hit L1 (or a completed prefetch fill).
    pub l1_hits: u64,
    /// Demand accesses served by L2.
    pub l2_hits: u64,
    /// Demand accesses served by L3.
    pub l3_hits: u64,
    /// Demand accesses served by memory.
    pub mem_accesses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Prefetches accepted into the in-flight queue.
    pub prefetches_issued: u64,
    /// Prefetches dropped (already cached, already in flight, or MSHRs
    /// full).
    pub prefetches_dropped: u64,
    /// Demand accesses that found a completed prefetch (full latency
    /// hidden).
    pub prefetch_timely: u64,
    /// Demand accesses that found an in-flight prefetch (partial latency
    /// hidden).
    pub prefetch_late: u64,
    /// Lookups (across L1/L2/L3 and the TLB) the MRU way hint served
    /// without a set scan. Pure observability: the hint never changes
    /// hit/miss results.
    pub way_hint_hits: u64,
}

impl HierarchyStats {
    /// Total demand accesses observed.
    pub fn demand_accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.mem_accesses
    }
}

/// The simulated hierarchy. Implements [`MemoryTiming`] so it plugs
/// directly into the VM.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    tlb: Option<Cache>,
    /// line base address -> completion cycle of an in-flight prefetch.
    inflight: HashMap<u64, u64>,
    /// Earliest cycle at which the memory bus can start another line fill.
    next_mem_slot: u64,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Creates an empty (cold) hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        let tlb = (config.tlb_entries > 0).then(|| {
            Cache::new(CacheGeometry {
                size_bytes: config.tlb_entries as u64 * config.page_size,
                ways: config.tlb_ways,
                line_size: config.page_size,
            })
        });
        CacheHierarchy {
            config,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            tlb,
            inflight: HashMap::new(),
            next_mem_slot: 0,
            stats: HierarchyStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> HierarchyStats {
        let mut stats = self.stats;
        stats.way_hint_hits = self.l1.way_hint_hits()
            + self.l2.way_hint_hits()
            + self.l3.way_hint_hits()
            + self.tlb.as_ref().map_or(0, Cache::way_hint_hits);
        stats
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.config.l1.line_size - 1)
    }

    /// Completion time of a fill of `addr` issued at `cycle`, probing L2,
    /// L3 and finally memory. Memory fills contend for bus slots spaced
    /// [`HierarchyConfig::mem_bus_interval`] cycles apart; cache-to-cache
    /// fills are unconstrained.
    fn fill_completion(&mut self, addr: u64, cycle: u64) -> (u64, bool) {
        if self.l2.access(addr) {
            (cycle + self.config.l2_latency, false)
        } else if self.l3.access(addr) {
            (cycle + self.config.l3_latency, false)
        } else {
            let start = cycle.max(self.next_mem_slot);
            self.next_mem_slot = start + self.config.mem_bus_interval;
            (start + self.config.mem_latency, true)
        }
    }

    fn install_all(&mut self, addr: u64) {
        self.l1.install(addr);
        self.l2.install(addr);
        self.l3.install(addr);
    }

    fn tlb_stall(&mut self, addr: u64) -> u64 {
        let Some(tlb) = self.tlb.as_mut() else {
            return 0;
        };
        if tlb.access(addr) {
            0
        } else {
            tlb.install(addr);
            self.stats.tlb_misses += 1;
            self.config.tlb_miss_latency
        }
    }
}

impl MemoryTiming for CacheHierarchy {
    fn access(&mut self, addr: u64, cycle: u64, _kind: AccessKind) -> u64 {
        let mut stall = self.tlb_stall(addr);
        let line = self.line_base(addr);

        // A prefetch in flight for this line? The emptiness guard skips
        // hashing the line entirely in runs that never prefetch (every
        // baseline run): remove on an empty map always returns None.
        if !self.inflight.is_empty() {
            if let Some(ready) = self.inflight.remove(&line) {
                if ready <= cycle + stall {
                    self.stats.prefetch_timely += 1;
                    self.stats.l1_hits += 1;
                    self.l1.install(addr);
                    return stall;
                }
                self.stats.prefetch_late += 1;
                self.stats.l1_hits += 1; // classified as an (expensive) L1 fill
                self.l1.install(addr);
                stall += ready - (cycle + stall);
                return stall;
            }
        }

        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return stall;
        }
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            self.l1.install(addr);
            return stall + self.config.l2_latency;
        }
        if self.l3.access(addr) {
            self.stats.l3_hits += 1;
            self.l1.install(addr);
            self.l2.install(addr);
            return stall + self.config.l3_latency;
        }
        self.stats.mem_accesses += 1;
        self.install_all(addr);
        let start = (cycle + stall).max(self.next_mem_slot);
        self.next_mem_slot = start + self.config.mem_bus_interval;
        stall + (start + self.config.mem_latency) - (cycle + stall)
    }

    /// A repeat of the most recently demand-accessed line is a guaranteed
    /// L1 + TLB MRU hit (every `access` path leaves the line MRU in both,
    /// and a line never spans pages), so the VM may batch such accesses.
    fn repeat_line_size(&self) -> Option<u64> {
        Some(self.config.l1.line_size)
    }

    fn note_line_repeats(&mut self, addr: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.l1.note_repeat_hits(addr, n);
        if let Some(tlb) = self.tlb.as_mut() {
            tlb.note_repeat_hits(addr, n);
        }
        self.stats.l1_hits += n;
    }

    fn prefetch(&mut self, addr: u64, cycle: u64) {
        let line = self.line_base(addr);
        if self.l1.contains(addr)
            || self.inflight.contains_key(&line)
            || self.inflight.len() >= self.config.max_inflight_prefetches
        {
            self.stats.prefetches_dropped += 1;
            return;
        }
        let (ready, _from_mem) = self.fill_completion(addr, cycle);
        // The fill completes after the full miss latency (plus any memory
        // bus queueing); install into the caches now so capacity/conflict
        // effects (pollution) are modeled, and record readiness for
        // partial-latency hits.
        self.install_all(addr);
        self.inflight.insert(line, ready);
        self.stats.prefetches_issued += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::itanium733())
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let mut h = hierarchy();
        let stall = h.access(0x1_0000, 0, AccessKind::Load);
        let cfg = *h.config();
        assert_eq!(stall, cfg.mem_latency + cfg.tlb_miss_latency);
        assert_eq!(h.stats().mem_accesses, 1);
        assert_eq!(h.stats().tlb_misses, 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = hierarchy();
        h.access(0x1_0000, 0, AccessKind::Load);
        let stall = h.access(0x1_0008, 10_000, AccessKind::Load);
        assert_eq!(stall, 0);
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = hierarchy();
        // L1 = 16KB 4-way, 64 sets. Touch 5 lines mapping to the same set:
        // stride = 64 sets * 64B = 4096.
        let base = 0x10_0000;
        for i in 0..5u64 {
            h.access(base + i * 4096, 0, AccessKind::Load);
        }
        // First line was evicted from L1 but still in L2.
        let stall = h.access(base, 100_000, AccessKind::Load);
        assert_eq!(stall, h.config().l2_latency);
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn timely_prefetch_hides_all_latency() {
        let mut h = hierarchy();
        h.prefetch(0x2_0000, 0);
        assert_eq!(h.stats().prefetches_issued, 1);
        // Demand access long after the fill completed.
        let stall = h.access(0x2_0000, 1_000_000, AccessKind::Load);
        // TLB miss still applies (prefetch does not warm the TLB here).
        assert_eq!(stall, h.config().tlb_miss_latency);
        assert_eq!(h.stats().prefetch_timely, 1);
    }

    #[test]
    fn late_prefetch_hides_partial_latency() {
        let mut h = hierarchy();
        h.prefetch(0x2_0000, 1000);
        // Demand access immediately after issuing: fill not complete.
        let tlb = h.config().tlb_miss_latency;
        let stall = h.access(0x2_0000, 1000 + 10, AccessKind::Load);
        assert!(stall > tlb, "some stall expected");
        assert!(
            stall < h.config().mem_latency + tlb,
            "but less than a full miss"
        );
        assert_eq!(h.stats().prefetch_late, 1);
    }

    #[test]
    fn batched_line_repeats_match_individual_accesses() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        a.access(0x1_0000, 0, AccessKind::Load);
        b.access(0x1_0000, 0, AccessKind::Load);
        for i in 0..5u64 {
            let stall = a.access(0x1_0008, 10 + i, AccessKind::Load);
            assert_eq!(stall, 0, "repeat of the MRU line is a free hit");
        }
        b.note_line_repeats(0x1_0008, 5);
        assert_eq!(a.stats(), b.stats());
        // Full state equality: later evictions/timings cannot diverge.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn prefetch_of_cached_line_is_dropped() {
        let mut h = hierarchy();
        h.access(0x3_0000, 0, AccessKind::Load);
        h.prefetch(0x3_0000, 10);
        assert_eq!(h.stats().prefetches_dropped, 1);
        assert_eq!(h.stats().prefetches_issued, 0);
    }

    #[test]
    fn duplicate_inflight_prefetch_is_dropped() {
        let mut h = hierarchy();
        h.prefetch(0x4_0000, 0);
        h.prefetch(0x4_0000, 1);
        assert_eq!(h.stats().prefetches_issued, 1);
        assert_eq!(h.stats().prefetches_dropped, 1);
    }

    #[test]
    fn mshr_limit_drops_excess_prefetches() {
        let mut h = CacheHierarchy::new(HierarchyConfig {
            max_inflight_prefetches: 2,
            ..HierarchyConfig::itanium733()
        });
        h.prefetch(0x10_0000, 0);
        h.prefetch(0x20_0000, 0);
        h.prefetch(0x30_0000, 0);
        assert_eq!(h.stats().prefetches_issued, 2);
        assert_eq!(h.stats().prefetches_dropped, 1);
    }

    #[test]
    fn stores_also_use_the_hierarchy() {
        let mut h = hierarchy();
        let s1 = h.access(0x5_0000, 0, AccessKind::Store);
        assert!(s1 > 0);
        let s2 = h.access(0x5_0000, 100_000, AccessKind::Store);
        assert_eq!(s2, 0);
    }

    #[test]
    fn tlb_disabled_when_zero_entries() {
        let mut h = CacheHierarchy::new(HierarchyConfig {
            tlb_entries: 0,
            ..HierarchyConfig::itanium733()
        });
        let stall = h.access(0x1_0000, 0, AccessKind::Load);
        assert_eq!(stall, h.config().mem_latency);
        assert_eq!(h.stats().tlb_misses, 0);
    }

    #[test]
    fn sequential_scan_mostly_hits_after_first_touch() {
        let mut h = hierarchy();
        let mut total = 0;
        for i in 0..64u64 {
            total += h.access(0x8_0000 + i * 8, i * 10, AccessKind::Load);
        }
        // 64 accesses cover 8 lines and 1 page: 8 memory misses, 1 TLB miss.
        assert_eq!(h.stats().mem_accesses, 8);
        assert_eq!(h.stats().l1_hits, 56);
        assert_eq!(
            total,
            8 * h.config().mem_latency + h.config().tlb_miss_latency
        );
    }

    #[test]
    fn memory_bus_serializes_back_to_back_misses() {
        // Two cold misses issued at the same cycle: the second waits for a
        // bus slot, so its stall exceeds the raw memory latency.
        let mut h = CacheHierarchy::new(HierarchyConfig {
            tlb_entries: 0,
            ..HierarchyConfig::itanium733()
        });
        let cfg = *h.config();
        let s1 = h.access(0x10_0000, 0, AccessKind::Load);
        assert_eq!(s1, cfg.mem_latency);
        let s2 = h.access(0x20_0000, 0, AccessKind::Load);
        assert_eq!(s2, cfg.mem_latency + cfg.mem_bus_interval);
        // far apart in time: no queueing
        let s3 = h.access(0x30_0000, 1_000_000, AccessKind::Load);
        assert_eq!(s3, cfg.mem_latency);
    }

    #[test]
    fn prefetch_fills_consume_bus_slots_too() {
        let mut h = CacheHierarchy::new(HierarchyConfig {
            tlb_entries: 0,
            ..HierarchyConfig::itanium733()
        });
        let cfg = *h.config();
        h.prefetch(0x40_0000, 0); // takes the first bus slot
        let stall = h.access(0x50_0000, 0, AccessKind::Load);
        assert_eq!(
            stall,
            cfg.mem_latency + cfg.mem_bus_interval,
            "demand miss must queue behind the prefetch fill"
        );
    }

    #[test]
    fn unlimited_bus_when_interval_zero() {
        let mut h = CacheHierarchy::new(HierarchyConfig {
            tlb_entries: 0,
            mem_bus_interval: 0,
            ..HierarchyConfig::itanium733()
        });
        let cfg = *h.config();
        for i in 0..8u64 {
            let s = h.access(0x100_0000 + i * 4096, 0, AccessKind::Load);
            assert_eq!(s, cfg.mem_latency);
        }
    }

    #[test]
    fn demand_accesses_sum() {
        let mut h = hierarchy();
        for i in 0..10u64 {
            h.access(i * 64, 0, AccessKind::Load);
        }
        assert_eq!(h.stats().demand_accesses(), 10);
    }
}
