//! Cluster-facing properties of the generated corpus: the golden
//! `ShardMap` spreads a 500-module corpus across shards within bounded
//! imbalance, and a live cluster survives `route-update` with every
//! generated workload still routed to its owning shard (no misrouting,
//! no lost acked merges).

use std::collections::HashMap;
use stride_genwork::{build, generate, GenConfig};
use stride_ir::module_to_string;
use stride_profdb::{module_hash, ProfileEntry, ShardMap};
use stride_server::{
    Client, Request, Response, RouterConfig, RouterServer, Server, ServerConfig, ServiceConfig,
};

/// `(name, module text, module hash)` for the first `count` workloads of
/// a campaign seed.
fn corpus(seed: u64, count: u32) -> Vec<(String, String, u64)> {
    let gen = GenConfig::campaign();
    (0..count)
        .map(|index| {
            let spec = generate(seed, index, &gen);
            let built = build(&spec);
            let text = module_to_string(&built.module);
            let hash = module_hash(&built.module);
            (spec.name(), text, hash)
        })
        .collect()
}

#[test]
fn generated_corpus_spreads_across_shards_within_bounded_imbalance() {
    let corpus = corpus(0xfeed_beef, 500);
    for shards in [3u32, 5, 8] {
        let map = ShardMap::new(shards);
        let mut per_shard = vec![0u64; shards as usize];
        for (name, _, hash) in &corpus {
            per_shard[map.shard_of(name, *hash) as usize] += 1;
        }
        let ideal = corpus.len() as f64 / f64::from(shards);
        for (k, &n) in per_shard.iter().enumerate() {
            assert!(
                (n as f64) >= 0.5 * ideal && (n as f64) <= 1.5 * ideal,
                "shard {k}/{shards} holds {n} of {} (ideal {ideal:.1}): {per_shard:?}",
                corpus.len()
            );
        }
    }
}

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("stride-genplace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Submits + merges a generated corpus through a router, re-points one
/// shard's replica at a restarted daemon (same database root), and
/// verifies every workload's profile is still served with all acked
/// merges present.
#[test]
fn placement_survives_route_update_without_misrouting() {
    const SHARDS: usize = 3;
    let corpus = corpus(0xace_0f5bade5, 18);
    let map = ShardMap::new(SHARDS as u32);

    // Boot SHARDS × 1 daemons and a router over them.
    let mut backends = Vec::new();
    let mut topology = Vec::new();
    let mut roots = Vec::new();
    for k in 0..SHARDS {
        let root = tmp_root(&format!("s{k}"));
        roots.push(root.clone());
        let server =
            Server::start(ServerConfig::loopback(ServiceConfig::new(root))).expect("start backend");
        topology.push(vec![server.addr().to_string()]);
        backends.push(server);
    }
    let router = RouterServer::start(RouterConfig::loopback(topology)).expect("start router");
    let mut client = Client::connect(router.addr()).expect("connect");

    let mut expected_shard = HashMap::new();
    for (name, text, hash) in &corpus {
        expected_shard.insert(name.clone(), map.shard_of(name, *hash));
        let resp = client
            .call(&Request::SubmitModule {
                workload: name.clone(),
                text: text.clone(),
            })
            .expect("submit");
        assert!(matches!(resp, Response::Ok(_)), "{name}: {resp:?}");
        let entry = ProfileEntry {
            workload: name.clone(),
            module_hash: *hash,
            runs: 1,
            edge_tables: vec![vec![1, 2, 3]],
            stride: stride_profiling::StrideProfile::new(),
        };
        let resp = client
            .call(&Request::MergeProfile {
                entry_text: entry.to_text(),
            })
            .expect("merge");
        assert!(matches!(resp, Response::Ok(_)), "{name}: {resp:?}");
    }
    let hit: std::collections::HashSet<u32> = expected_shard.values().copied().collect();
    assert_eq!(
        hit.len(),
        SHARDS,
        "corpus missed a shard: {expected_shard:?}"
    );

    // Restart shard 1's only replica on a fresh port over the same
    // database root, then re-point the router at it. Trigger shutdown
    // without joining: the old daemon's worker is parked on the router's
    // cached connection and only exits when `route-update` drops it —
    // joining here would deadlock. Dropping the handle detaches the
    // threads; the un-checkpointed round-one merges come back via WAL
    // replay, which is exactly what the test wants to exercise.
    let moved = backends.remove(1);
    moved.shutdown();
    drop(moved);
    let restarted = Server::start(ServerConfig::loopback(ServiceConfig::new(roots[1].clone())))
        .expect("restart backend");
    let resp = client
        .call(&Request::RouteUpdate {
            shard: 1,
            replica: 0,
            addr: restarted.addr().to_string(),
        })
        .expect("route-update");
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    backends.insert(1, restarted);

    // Second merge round after the update: every ack must land on the
    // owning shard's (possibly restarted) replica.
    for (name, _, hash) in &corpus {
        let entry = ProfileEntry {
            workload: name.clone(),
            module_hash: *hash,
            runs: 1,
            edge_tables: vec![vec![1, 2, 3]],
            stride: stride_profiling::StrideProfile::new(),
        };
        let resp = client
            .call(&Request::MergeProfile {
                entry_text: entry.to_text(),
            })
            .expect("merge 2");
        assert!(matches!(resp, Response::Ok(_)), "{name}: {resp:?}");
    }

    // No misrouting: every workload reads back from its owner with both
    // acked merges accumulated (the restarted shard recovered round one
    // from its WAL).
    for (name, _, hash) in &corpus {
        let resp = client
            .call(&Request::GetProfile {
                workload: name.clone(),
            })
            .expect("get-profile");
        let Response::Ok(body) = resp else {
            panic!("{name} (shard {}): {resp:?}", expected_shard[name]);
        };
        let entry = ProfileEntry::from_text(&body).expect("entry text");
        assert_eq!(entry.workload, *name);
        assert_eq!(entry.module_hash, *hash, "{name}: wrong module entry");
        assert_eq!(entry.runs, 2, "{name}: lost an acked merge");
    }

    let resp = client.call(&Request::Shutdown).expect("shutdown");
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    router.join();
    for b in backends {
        b.join();
    }
    for root in roots {
        let _ = std::fs::remove_dir_all(root);
    }
}
