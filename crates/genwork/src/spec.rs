//! Generated-workload specifications: a seeded draw from a catalog of
//! access-pattern archetypes, each with tightly controlled parameters so
//! the constructive oracle's ratios sit a safe margin away from every
//! Fig. 5 threshold.

use crate::rng::Rng;
use stride_core::{ClassifyThresholds, StrideClass};

/// One access-pattern archetype. Every stride parameter is a multiple of
/// 16 bytes: the enhanced Fig. 7 routine compares addresses and strides
/// with the low 4 bits masked, so 16-aligned strides keep the profiled
/// value space in one-to-one correspondence with the generated schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum SiteKind {
    /// Array sweep with one constant stride: the canonical SSST load.
    ConstStride {
        /// Byte stride per iteration (may be negative).
        stride: i64,
    },
    /// Pointer chase over a bump-built list (constant node spacing):
    /// address-dependent loads that still classify SSST, the paper's §1
    /// motivating case.
    PointerChase {
        /// Node spacing in bytes.
        node_size: i64,
    },
    /// One load whose stride switches among `strides` every
    /// `1 << phase_len_log2` iterations: PMST (paper Fig. 2).
    PhasedStride {
        /// Distinct strides cycled through phase-by-phase (2 or 4).
        strides: Vec<i64>,
        /// log2 of the phase length in iterations.
        phase_len_log2: u32,
    },
    /// Real control flow: the loop body branches on a phase bit (64-iter
    /// phases); each arm advances its own cursor by its own stride and a
    /// shared cursor by the arm's stride. Emits *three* load sites: the
    /// per-arm loads (pure SSST — only visible as such across iterations
    /// of the same path, the multi-iteration path-sensitive case of
    /// D'Elia & Demetrescu) and a post-join load on the shared cursor
    /// (PMST).
    PathPhased {
        /// Stride of the first arm.
        a: i64,
        /// Stride of the second arm.
        b: i64,
    },
    /// Strides alternate `a, b, a, b` every iteration: top-2 covers 100%
    /// of references but no stride ever repeats back-to-back, so
    /// `zero_diff` is 0 and Fig. 5 classifies *nothing* — a documented
    /// limit of the paper's phase model (multi-strided grouping, Blom et
    /// al. 2024, would catch it).
    AlternatingStride {
        /// First stride.
        a: i64,
        /// Second stride (distinct from `a`).
        b: i64,
    },
    /// Period-7 mix: 4 strided references then 3 hash-scattered ones.
    /// The dominant stride covers ~43% of references with ~29% zero
    /// diffs: WSST.
    WeakStride {
        /// The recurring stride.
        stride: i64,
        /// In-IR LCG seed for the scattered references.
        lcg_seed: i64,
    },
    /// Uniform hash-table probing: no pattern at all.
    HashProbe {
        /// Slot-index mask (slots are 16 bytes apart).
        mask: i64,
        /// In-IR LCG seed.
        lcg_seed: i64,
    },
    /// A hot (high-frequency) loop whose trip count sits under TT: the
    /// trip-count filter must reject it even though its stride is
    /// perfectly regular.
    LowTrip {
        /// Byte stride per iteration.
        stride: i64,
    },
    /// A single-entry loop nest executed once: under FT *and* never
    /// stride-profiled by the guarded methods (§3.2).
    ColdLoop {
        /// Byte stride per iteration.
        stride: i64,
    },
}

impl SiteKind {
    /// Short kind tag used in site labels and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            SiteKind::ConstStride { .. } => "const",
            SiteKind::PointerChase { .. } => "chase",
            SiteKind::PhasedStride { .. } => "phased",
            SiteKind::PathPhased { .. } => "path",
            SiteKind::AlternatingStride { .. } => "alt",
            SiteKind::WeakStride { .. } => "weak",
            SiteKind::HashProbe { .. } => "hash",
            SiteKind::LowTrip { .. } => "lowtrip",
            SiteKind::ColdLoop { .. } => "cold",
        }
    }

    /// The classes this kind is designed to produce, one per emitted load
    /// site. The constructive oracle re-derives these from the schedule;
    /// generator tests assert both agree.
    pub fn intended(&self) -> Vec<Option<StrideClass>> {
        match self {
            SiteKind::ConstStride { .. } | SiteKind::PointerChase { .. } => {
                vec![Some(StrideClass::Ssst)]
            }
            SiteKind::PhasedStride { .. } => vec![Some(StrideClass::Pmst)],
            SiteKind::PathPhased { .. } => vec![
                Some(StrideClass::Ssst),
                Some(StrideClass::Ssst),
                Some(StrideClass::Pmst),
            ],
            SiteKind::WeakStride { .. } => vec![Some(StrideClass::Wsst)],
            SiteKind::AlternatingStride { .. }
            | SiteKind::HashProbe { .. }
            | SiteKind::LowTrip { .. }
            | SiteKind::ColdLoop { .. } => vec![None],
        }
    }
}

/// Listing record for one generated-workload archetype — the generated
/// suite's counterpart of `stride_workloads::WorkloadSpec`, so `genwork
/// workloads` can enumerate both suites through one path.
#[derive(Clone, Copy, Debug)]
pub struct ArchetypeInfo {
    /// The kind tag (`SiteKind::tag`).
    pub tag: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Designed classes, one per emitted load site.
    pub expected_classes: &'static [&'static str],
}

/// The archetype catalog, in `draw_site` order.
pub const ARCHETYPES: &[ArchetypeInfo] = &[
    ArchetypeInfo {
        tag: "const",
        description: "constant-stride array sweep",
        expected_classes: &["SSST"],
    },
    ArchetypeInfo {
        tag: "chase",
        description: "pointer chase over a bump-built list",
        expected_classes: &["SSST"],
    },
    ArchetypeInfo {
        tag: "phased",
        description: "phase-switching stride mix (2 or 4 strides)",
        expected_classes: &["PMST"],
    },
    ArchetypeInfo {
        tag: "path",
        description: "branchy loop: per-arm cursors plus a shared post-join cursor",
        expected_classes: &["SSST", "SSST", "PMST"],
    },
    ArchetypeInfo {
        tag: "alt",
        description: "per-iteration alternating strides (documented Fig. 5 blind spot)",
        expected_classes: &["none"],
    },
    ArchetypeInfo {
        tag: "weak",
        description: "period-7 strided/scattered mix",
        expected_classes: &["WSST"],
    },
    ArchetypeInfo {
        tag: "hash",
        description: "uniform hash-table probing",
        expected_classes: &["none"],
    },
    ArchetypeInfo {
        tag: "lowtrip",
        description: "hot loop under the trip-count threshold",
        expected_classes: &["none"],
    },
    ArchetypeInfo {
        tag: "cold",
        description: "single-pass cold loop under the frequency threshold",
        expected_classes: &["none"],
    },
];

/// One loop nest of a generated workload: `passes` outer iterations of a
/// `trip`-iteration inner loop around the kind's load site(s). Cursors
/// advance continuously across passes (never reset), so the guarded
/// profile — which activates only once the trip-count predicate has seen
/// a completed pass — observes a suffix of one homogeneous schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteSpec {
    /// The access pattern.
    pub kind: SiteKind,
    /// Outer (re-entry) passes.
    pub passes: u64,
    /// Inner trip count.
    pub trip: u64,
}

/// A complete generated workload.
#[derive(Clone, Debug, PartialEq)]
pub struct GenSpec {
    /// Campaign seed this spec was drawn from.
    pub seed: u64,
    /// Index within the campaign.
    pub index: u32,
    /// The loop nests, emitted in order into one entry function.
    pub sites: Vec<SiteSpec>,
}

impl GenSpec {
    /// Workload name, usable as a profdb key.
    pub fn name(&self) -> String {
        format!("gen-{:016x}-{:04}", self.seed, self.index)
    }
}

/// Generation parameters. The thresholds are the ones the oracle (and the
/// campaign's classifier run) evaluate; `FT` defaults to 500 so generated
/// programs stay debug-build sized while still exercising the filter.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Thresholds shared by oracle and classifier.
    pub thresholds: ClassifyThresholds,
    /// Minimum loop nests per workload.
    pub min_sites: usize,
    /// Maximum loop nests per workload.
    pub max_sites: usize,
}

impl GenConfig {
    /// Default campaign configuration.
    pub fn campaign() -> Self {
        GenConfig {
            thresholds: ClassifyThresholds {
                frequency_threshold: 500,
                ..ClassifyThresholds::paper()
            },
            min_sites: 2,
            max_sites: 4,
        }
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        Self::campaign()
    }
}

/// Draws a 16-aligned stride magnitude in `[32, 512]`.
fn draw_stride(rng: &mut Rng) -> i64 {
    16 * rng.range(2, 32) as i64
}

/// Draws `n` pairwise-distinct 16-aligned strides.
fn draw_distinct_strides(rng: &mut Rng, n: usize) -> Vec<i64> {
    let mut out: Vec<i64> = Vec::with_capacity(n);
    while out.len() < n {
        let s = draw_stride(rng);
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// Draws one site spec. Parameter ranges keep every oracle ratio a wide
/// margin away from the Fig. 5 thresholds (see `oracle::margin_check`).
pub fn draw_site(rng: &mut Rng) -> SiteSpec {
    let passes = rng.range(4, 6);
    let trip = rng.range(384, 640);
    let kind = match rng.index(9) {
        0 => {
            let s = draw_stride(rng);
            SiteKind::ConstStride {
                stride: if rng.coin() { s } else { -s },
            }
        }
        1 => SiteKind::PointerChase {
            node_size: draw_stride(rng),
        },
        2 => {
            let k = if rng.coin() { 2 } else { 4 };
            SiteKind::PhasedStride {
                strides: draw_distinct_strides(rng, k),
                phase_len_log2: rng.range(5, 6) as u32,
            }
        }
        3 => {
            let s = draw_distinct_strides(rng, 2);
            SiteKind::PathPhased { a: s[0], b: s[1] }
        }
        4 => {
            let s = draw_distinct_strides(rng, 2);
            SiteKind::AlternatingStride { a: s[0], b: s[1] }
        }
        5 => SiteKind::WeakStride {
            stride: draw_stride(rng),
            lcg_seed: rng.range(1, i32::MAX as u64) as i64,
        },
        6 => SiteKind::HashProbe {
            mask: 0x3ff,
            lcg_seed: rng.range(1, i32::MAX as u64) as i64,
        },
        7 => {
            return SiteSpec {
                kind: SiteKind::LowTrip {
                    stride: draw_stride(rng),
                },
                passes: rng.range(24, 48),
                trip: rng.range(16, 48),
            }
        }
        _ => {
            return SiteSpec {
                kind: SiteKind::ColdLoop {
                    stride: draw_stride(rng),
                },
                passes: 1,
                trip: rng.range(48, 96),
            }
        }
    };
    SiteSpec { kind, passes, trip }
}

/// Draws the full spec of workload `index` under `seed`. Redraws any site
/// whose constructive ratios land inside the oracle's safety margin
/// around a threshold (bounded retries; see `oracle`).
pub fn generate(seed: u64, index: u32, cfg: &GenConfig) -> GenSpec {
    let mut rng = Rng::for_workload(seed, index);
    let n = rng.range(cfg.min_sites as u64, cfg.max_sites as u64) as usize;
    let mut sites = Vec::with_capacity(n);
    for _ in 0..n {
        let mut site = draw_site(&mut rng);
        let mut tries = 0;
        while !crate::oracle::margin_check(&site, &cfg.thresholds) {
            site = draw_site(&mut rng);
            tries += 1;
            assert!(
                tries < 64,
                "margin redraw did not converge for {site:?} — parameter ranges too tight"
            );
        }
        sites.push(site);
    }
    GenSpec { seed, index, sites }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::campaign();
        let a = generate(0xfeed, 3, &cfg);
        let b = generate(0xfeed, 3, &cfg);
        assert_eq!(a, b);
        let c = generate(0xfeed, 4, &cfg);
        assert_ne!(a.sites, c.sites);
    }

    #[test]
    fn strides_are_16_aligned_and_distinct_where_required() {
        let mut rng = Rng::new(9);
        for _ in 0..200 {
            let s = draw_site(&mut rng);
            match &s.kind {
                SiteKind::PhasedStride { strides, .. } => {
                    for &x in strides {
                        assert_eq!(x % 16, 0);
                    }
                    let mut d = strides.clone();
                    d.dedup();
                    assert_eq!(d.len(), strides.len());
                }
                SiteKind::AlternatingStride { a, b } | SiteKind::PathPhased { a, b } => {
                    assert_ne!(a, b);
                    assert_eq!(a % 16, 0);
                    assert_eq!(b % 16, 0);
                }
                SiteKind::ConstStride { stride }
                | SiteKind::LowTrip { stride }
                | SiteKind::ColdLoop { stride }
                | SiteKind::WeakStride { stride, .. } => assert_eq!(stride % 16, 0),
                SiteKind::PointerChase { node_size } => assert_eq!(node_size % 16, 0),
                SiteKind::HashProbe { .. } => {}
            }
        }
    }

    #[test]
    fn archetype_catalog_matches_kind_intent() {
        let mut rng = Rng::new(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let s = draw_site(&mut rng);
            let tag = s.kind.tag();
            seen.insert(tag);
            let info = ARCHETYPES
                .iter()
                .find(|a| a.tag == tag)
                .unwrap_or_else(|| panic!("archetype {tag} missing from catalog"));
            let intended: Vec<&str> = s
                .kind
                .intended()
                .iter()
                .map(|c| match c {
                    Some(StrideClass::Ssst) => "SSST",
                    Some(StrideClass::Pmst) => "PMST",
                    Some(StrideClass::Wsst) => "WSST",
                    None => "none",
                })
                .collect();
            assert_eq!(intended, info.expected_classes, "catalog drift for {tag}");
        }
        assert_eq!(
            seen.len(),
            ARCHETYPES.len(),
            "500 draws must hit every kind"
        );
    }

    #[test]
    fn names_are_stable() {
        let cfg = GenConfig::campaign();
        assert_eq!(generate(0xabc, 7, &cfg).name(), "gen-0000000000000abc-0007");
    }
}
