//! The crate's deterministic PRNG: splitmix64, the same generator every
//! other seeded subsystem of the repo uses (fault plans, bench reports,
//! client backoff). Each generated workload derives its own independent
//! stream from `(campaign seed, workload index)`, so corpora are
//! reproducible from the seed alone and independent of `--jobs`.

/// Splitmix64 stream.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives the stream of workload `index` under campaign `seed`.
    pub fn for_workload(seed: u64, index: u32) -> Self {
        let mut r = Rng::new(seed ^ (u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        // Warm up so adjacent indices decorrelate immediately.
        r.next();
        r
    }

    /// Next raw 64-bit value. Not an `Iterator`: the stream is infinite
    /// and never yields `None`, so the trait's contract doesn't fit.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    /// Uniform `usize` index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = Rng::for_workload(42, 7);
            (0..8).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::for_workload(42, 7);
            (0..8).map(|_| r.next()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::for_workload(42, 8);
            (0..8).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
    }
}
