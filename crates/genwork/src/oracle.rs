//! The constructive ground-truth oracle.
//!
//! For every load site a generated workload will contain, this module
//! derives the site's Fig. 5 classification *from the generator's own
//! stride schedule* — by simulating the exact address sequence the
//! emitted IR will produce (including the in-IR LCG, replicated
//! bit-for-bit) and applying the documented counting rules, **without
//! running the profiler or the VM**:
//!
//! * the guarded methods' activation predicate `(header_freq >> W) >
//!   entry_freq`, evaluated per loop entry exactly as Figs. 11–14 insert
//!   it, decides which outer passes are profiled at all;
//! * the enhanced Fig. 7 `strideProf` counting rules (16-byte
//!   `is_same_value` zero-stride fast path that leaves `prev_address`
//!   unchanged, diff bookkeeping against the current phase's stride) are
//!   applied with *full* per-stride counts — a `BTreeMap` instead of the
//!   production LFU, so the oracle is independent of the LFU
//!   implementation it helps test;
//! * the frequency/trip filters and SSST/PMST/WSST thresholds come from
//!   the same [`ClassifyThresholds`] the production classifier reads.
//!
//! The only freedom left to the production stack is LFU count erosion
//! under eviction pressure and floating-point noise at thresholds; the
//! generator closes that gap by redrawing any site whose exact ratios
//! fall within a safety margin of a decision boundary
//! ([`margin_check`]).

use crate::spec::{GenSpec, SiteKind, SiteSpec};
use std::collections::BTreeMap;
use stride_core::{ClassifyThresholds, StrideClass};

/// Knuth's MMIX LCG constants — must match `stride_workloads::common::Lcg`.
const LCG_MUL: i64 = 6364136223846793005;
const LCG_ADD: i64 = 1442695040888963407;

/// One step of the in-IR LCG, mirrored in host arithmetic: `Mul`/`Add`
/// wrap on i64, `Lshr` is a logical shift of the 64-bit pattern.
fn lcg_next(state: &mut i64) -> i64 {
    *state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
    ((*state as u64) >> 33) as i64
}

/// Full-count mirror of the enhanced Fig. 7 `strideProf` routine: same
/// zero-stride fast path (which bypasses the counters *and* leaves
/// `prev_address` unchanged), same diff bookkeeping, but exact per-stride
/// counts instead of an LFU approximation.
#[derive(Clone, Debug, Default)]
pub struct FullProf {
    prev_addr: Option<u64>,
    prev_stride: Option<i64>,
    /// References on the zero-stride fast path (not counted in `total`).
    pub zero_stride: u64,
    /// Zero stride-differences (the phased signal).
    pub zero_diff: u64,
    /// Stride differences observed.
    pub total_diffs: u64,
    /// Exact stride histogram.
    pub counts: BTreeMap<i64, u64>,
    /// Non-zero strides recorded (Fig. 5's `total_freq`).
    pub total: u64,
}

/// Low bits ignored by the enhanced `is_same_value` comparison.
const SAME_VALUE_SHIFT: u32 = 4;

impl FullProf {
    fn feed(&mut self, addr: u64) {
        let Some(prev) = self.prev_addr else {
            self.prev_addr = Some(addr);
            return;
        };
        if (addr >> SAME_VALUE_SHIFT) == (prev >> SAME_VALUE_SHIFT) {
            self.zero_stride += 1;
            return; // prev_addr intentionally NOT updated (Fig. 7)
        }
        let stride = addr.wrapping_sub(prev) as i64;
        match self.prev_stride {
            Some(ps) => {
                self.total_diffs += 1;
                if stride == ps {
                    self.zero_diff += 1;
                } else {
                    self.prev_stride = Some(stride);
                }
            }
            None => self.prev_stride = Some(stride),
        }
        self.prev_addr = Some(addr);
        *self.counts.entry(stride).or_default() += 1;
        self.total += 1;
    }

    /// `(top1_count, top1_stride)` — ties broken toward the smaller
    /// stride (irrelevant for ratio checks; only reported).
    fn top1(&self) -> (u64, i64) {
        self.counts
            .iter()
            .map(|(&s, &c)| (c, s))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .unwrap_or((0, 0))
    }

    /// Sum of the four largest counts.
    fn top4(&self) -> u64 {
        let mut c: Vec<u64> = self.counts.values().copied().collect();
        c.sort_unstable_by(|a, b| b.cmp(a));
        c.iter().take(4).sum()
    }
}

/// Ground truth for one emitted load site.
#[derive(Clone, Debug)]
pub struct SiteTruth {
    /// Site label, e.g. `s1.phased` or `s2.path.join` — matches
    /// `emit::build`'s tracked-site order exactly.
    pub label: String,
    /// Index of the owning [`SiteSpec`] in the workload.
    pub spec_index: usize,
    /// The constructive classification.
    pub expected: Option<StrideClass>,
    /// Block frequency the edge counters will report (all passes).
    pub freq: u64,
    /// Trip-count estimate the classifier will compute.
    pub trip_est: f64,
    /// References fed to the (guard-gated) profile.
    pub profiled_refs: u64,
    /// Non-zero strides recorded.
    pub total: u64,
    /// Exact `top1/total` ratio.
    pub top1: f64,
    /// Exact `top4/total` ratio.
    pub top4: f64,
    /// Exact `zero_diffs/total` ratio.
    pub zero_diff: f64,
    /// The dominant stride (0 when no stride was recorded).
    pub dominant: i64,
}

impl SiteTruth {
    /// Renders a class option the way reports spell it.
    pub fn class_name(c: Option<StrideClass>) -> &'static str {
        match c {
            Some(StrideClass::Ssst) => "SSST",
            Some(StrideClass::Pmst) => "PMST",
            Some(StrideClass::Wsst) => "WSST",
            None => "none",
        }
    }
}

/// A simulated site: the label suffix plus its profile-in-progress and
/// block-execution count.
struct SimSite {
    suffix: &'static str,
    prof: FullProf,
    freq: u64,
}

/// Simulates one loop nest and returns its site profiles in emission
/// order. `guarded` selects the edge/block-check activation model; the
/// naïve methods profile every pass.
fn simulate(site: &SiteSpec, t: &ClassifyThresholds, guarded: bool) -> Vec<SimSite> {
    let shift = t.trip_shift();
    let (passes, trip) = (site.passes, site.trip);
    // Guard predicate at entry k (1-based): checked after the entry
    // counter bump, so r1 = k and r2 = prior header executions
    // (trip body iterations + 1 exit check per completed pass).
    let pass_on = |k: u64| !guarded || ((k - 1) * (trip + 1)) >> shift > k;

    let mk = |suffix| SimSite {
        suffix,
        prof: FullProf::default(),
        freq: 0,
    };

    match &site.kind {
        SiteKind::ConstStride { stride }
        | SiteKind::LowTrip { stride }
        | SiteKind::ColdLoop { stride } => {
            let mut s = mk("");
            let mut w: u64 = 1 << 22;
            for k in 1..=passes {
                let on = pass_on(k);
                for _ in 0..trip {
                    w = w.wrapping_add(*stride as u64);
                    s.freq += 1;
                    if on {
                        s.prof.feed(w);
                    }
                }
            }
            vec![s]
        }
        SiteKind::PointerChase { node_size } => {
            let mut s = mk("");
            for k in 1..=passes {
                let on = pass_on(k);
                let mut p: u64 = 0;
                for _ in 0..trip {
                    s.freq += 1;
                    if on {
                        s.prof.feed(p);
                    }
                    p = p.wrapping_add(*node_size as u64);
                }
            }
            vec![s]
        }
        SiteKind::PhasedStride {
            strides,
            phase_len_log2,
        } => {
            let mut s = mk("");
            let mut w: u64 = 0;
            let mut g: u64 = 0;
            let kmask = strides.len() as u64 - 1;
            for k in 1..=passes {
                let on = pass_on(k);
                for _ in 0..trip {
                    let ph = (g >> phase_len_log2) & kmask;
                    w = w.wrapping_add(strides[ph as usize] as u64);
                    s.freq += 1;
                    if on {
                        s.prof.feed(w);
                    }
                    g += 1;
                }
            }
            vec![s]
        }
        SiteKind::PathPhased { a, b } => {
            let mut sa = mk(".a");
            let mut sb = mk(".b");
            let mut sj = mk(".join");
            let (mut cx, mut cy, mut sh) = (0u64, 1u64 << 21, 1u64 << 22);
            let mut g: u64 = 0;
            for k in 1..=passes {
                let on = pass_on(k);
                for _ in 0..trip {
                    let ph = (g >> 6) & 1;
                    if ph == 0 {
                        cx = cx.wrapping_add(*a as u64);
                        sa.freq += 1;
                        if on {
                            sa.prof.feed(cx);
                        }
                        sh = sh.wrapping_add(*a as u64);
                    } else {
                        cy = cy.wrapping_add(*b as u64);
                        sb.freq += 1;
                        if on {
                            sb.prof.feed(cy);
                        }
                        sh = sh.wrapping_add(*b as u64);
                    }
                    sj.freq += 1;
                    if on {
                        sj.prof.feed(sh);
                    }
                    g += 1;
                }
            }
            vec![sa, sb, sj]
        }
        SiteKind::AlternatingStride { a, b } => {
            let mut s = mk("");
            let mut w: u64 = 0;
            let mut g: u64 = 0;
            for k in 1..=passes {
                let on = pass_on(k);
                for _ in 0..trip {
                    let step = if g & 1 == 0 { *a } else { *b };
                    w = w.wrapping_add(step as u64);
                    s.freq += 1;
                    if on {
                        s.prof.feed(w);
                    }
                    g += 1;
                }
            }
            vec![s]
        }
        SiteKind::WeakStride { stride, lcg_seed } => {
            let mut s = mk("");
            let mut w: u64 = 0;
            let mut g: u64 = 0;
            let mut lcg = *lcg_seed;
            for k in 1..=passes {
                let on = pass_on(k);
                for _ in 0..trip {
                    let strided = g % 7 < 4;
                    if strided {
                        w = w.wrapping_add(*stride as u64);
                    }
                    let off = (lcg_next(&mut lcg) & 0x7ff) as u64 * 16;
                    let addr = if strided { w } else { (1 << 22) + off };
                    s.freq += 1;
                    if on {
                        s.prof.feed(addr);
                    }
                    g += 1;
                }
            }
            vec![s]
        }
        SiteKind::HashProbe { mask, lcg_seed } => {
            let mut s = mk("");
            let mut lcg = *lcg_seed;
            for k in 1..=passes {
                let on = pass_on(k);
                for _ in 0..trip {
                    let addr = (lcg_next(&mut lcg) & mask) as u64 * 16;
                    s.freq += 1;
                    if on {
                        s.prof.feed(addr);
                    }
                }
            }
            vec![s]
        }
    }
}

/// Applies the Fig. 5 decision tree to exact ratios. Mirrors
/// `classify_profile` + the frequency/trip filters of `classify`.
fn decide(
    t: &ClassifyThresholds,
    freq: u64,
    trip_est: f64,
    total: u64,
    top1: f64,
    top4: f64,
    zero_diff: f64,
) -> Option<StrideClass> {
    if freq < t.frequency_threshold {
        return None;
    }
    if trip_est < t.trip_count_threshold as f64 {
        return None;
    }
    if total == 0 {
        return None; // empty or never-activated profile
    }
    if top1 >= t.ssst_threshold {
        Some(StrideClass::Ssst)
    } else if top4 >= t.pmst_threshold && zero_diff >= t.pmst_diff_threshold {
        Some(StrideClass::Pmst)
    } else if top1 >= t.wsst_threshold && zero_diff >= t.wsst_diff_threshold {
        Some(StrideClass::Wsst)
    } else {
        None
    }
}

/// Derives the ground truth of one loop nest's sites.
fn site_truths(
    site: &SiteSpec,
    spec_index: usize,
    t: &ClassifyThresholds,
    guarded: bool,
) -> Vec<SiteTruth> {
    let trip_est = (site.passes * (site.trip + 1)) as f64 / site.passes as f64;
    simulate(site, t, guarded)
        .into_iter()
        .map(|s| {
            let (c1, dominant) = s.prof.top1();
            let total = s.prof.total;
            let ratio = |n: u64| {
                if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                }
            };
            let (top1, top4, zero_diff) =
                (ratio(c1), ratio(s.prof.top4()), ratio(s.prof.zero_diff));
            SiteTruth {
                label: format!("s{spec_index}.{}{}", site.kind.tag(), s.suffix),
                spec_index,
                expected: decide(t, s.freq, trip_est, total, top1, top4, zero_diff),
                freq: s.freq,
                trip_est,
                profiled_refs: s.prof.total
                    + s.prof.zero_stride
                    + if s.prof.prev_addr.is_some() { 1 } else { 0 },
                total,
                top1,
                top4,
                zero_diff,
                dominant: if c1 == 0 { 0 } else { dominant },
            }
        })
        .collect()
}

/// Ground truth for a whole workload, in the emitter's tracked-site
/// order. `guarded` must match the profiling variant the campaign runs
/// (edge/block-check: true; naive-loop/naive-all: false).
pub fn ground_truth(spec: &GenSpec, t: &ClassifyThresholds, guarded: bool) -> Vec<SiteTruth> {
    spec.sites
        .iter()
        .enumerate()
        .flat_map(|(i, s)| site_truths(s, i, t, guarded))
        .collect()
}

/// Margin of safety around every ratio threshold: the production LFU may
/// erode dominant-stride counts slightly under eviction pressure, and the
/// profiled suffix differs from the full schedule by at most the
/// activation prefix. Ratios must clear every *decision-relevant*
/// threshold by this much.
const RATIO_MARGIN: f64 = 0.04;

/// The classification must be invariant when all three ratios are
/// perturbed by ±margin in any combination — i.e. no decision path
/// through Fig. 5 changes within the margin box.
fn ratio_stable(
    t: &ClassifyThresholds,
    freq: u64,
    trip_est: f64,
    total: u64,
    top1: f64,
    top4: f64,
    zero_diff: f64,
) -> bool {
    let base = decide(t, freq, trip_est, total, top1, top4, zero_diff);
    for sel in 0..8u32 {
        let d = |bit: u32| {
            if sel & (1 << bit) != 0 {
                RATIO_MARGIN
            } else {
                -RATIO_MARGIN
            }
        };
        let p = decide(
            t,
            freq,
            trip_est,
            total,
            (top1 + d(0)).clamp(0.0, 1.0),
            (top4 + d(1)).clamp(0.0, 1.0),
            (zero_diff + d(2)).clamp(0.0, 1.0),
        );
        if p != base {
            return false;
        }
    }
    true
}

/// Accepts a drawn site only when its constructive classification is
/// robust: frequency clearly above/below `FT` (×1.5 / ×0.6), trip
/// estimate clearly above/below `TT` when frequency passes, ratios
/// outside the ±[`RATIO_MARGIN`] box around every decision path — under
/// both the guarded and the unguarded profiling models.
pub fn margin_check(site: &SiteSpec, t: &ClassifyThresholds) -> bool {
    let ft = t.frequency_threshold as f64;
    let tt = t.trip_count_threshold as f64;
    for guarded in [true, false] {
        for truth in site_truths(site, 0, t, guarded) {
            let f = truth.freq as f64;
            if f > 0.6 * ft && f < 1.5 * ft {
                return false;
            }
            if f >= 1.5 * ft {
                let te = truth.trip_est;
                if te > 0.6 * tt && te < 1.5 * tt {
                    return false;
                }
                if te >= 1.5 * tt
                    && !ratio_stable(
                        t,
                        truth.freq,
                        te,
                        truth.total,
                        truth.top1,
                        truth.top4,
                        truth.zero_diff,
                    )
                {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::spec::{draw_site, GenConfig};

    fn t() -> ClassifyThresholds {
        GenConfig::campaign().thresholds
    }

    #[test]
    fn lcg_mirror_matches_mmix_constants() {
        // One step from state 1: the constants must be Knuth's MMIX pair
        // used by stride_workloads::common::Lcg.
        let mut s = 1i64;
        let v = lcg_next(&mut s);
        let expect_state = 1i64
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        assert_eq!(s, expect_state);
        assert_eq!(v, ((expect_state as u64) >> 33) as i64);
    }

    #[test]
    fn const_stride_is_ssst_with_exact_dominant() {
        let site = SiteSpec {
            kind: SiteKind::ConstStride { stride: 128 },
            passes: 4,
            trip: 512,
        };
        let tr = &site_truths(&site, 0, &t(), true)[0];
        assert_eq!(tr.expected, Some(StrideClass::Ssst));
        assert_eq!(tr.dominant, 128);
        assert!(tr.top1 > 0.999);
        // Guard activates at pass 2: exactly 3 of 4 passes profiled.
        assert_eq!(tr.profiled_refs, 3 * 512);
        assert_eq!(tr.freq, 4 * 512);
    }

    #[test]
    fn negative_stride_is_ssst() {
        let site = SiteSpec {
            kind: SiteKind::ConstStride { stride: -64 },
            passes: 5,
            trip: 400,
        };
        let tr = &site_truths(&site, 0, &t(), true)[0];
        assert_eq!(tr.expected, Some(StrideClass::Ssst));
        assert_eq!(tr.dominant, -64);
    }

    #[test]
    fn intended_classes_match_constructive_truth() {
        // 300 random draws: the archetype's design intent must equal the
        // schedule-derived truth for every site, guarded and unguarded.
        let mut rng = Rng::new(0x5eed);
        let th = t();
        for case in 0..300 {
            let mut site = draw_site(&mut rng);
            while !margin_check(&site, &th) {
                site = draw_site(&mut rng);
            }
            for guarded in [true, false] {
                let got: Vec<_> = site_truths(&site, 0, &th, guarded)
                    .iter()
                    .map(|s| s.expected)
                    .collect();
                assert_eq!(
                    got,
                    site.kind.intended(),
                    "case {case} ({}; guarded={guarded}): {site:?}",
                    site.kind.tag()
                );
            }
        }
    }

    #[test]
    fn alternating_is_the_documented_blind_spot() {
        // Top-2 strides cover every reference, yet Fig. 5 classifies
        // nothing: zero_diff is identically 0.
        let site = SiteSpec {
            kind: SiteKind::AlternatingStride { a: 64, b: 160 },
            passes: 5,
            trip: 500,
        };
        let tr = &site_truths(&site, 0, &t(), true)[0];
        assert_eq!(tr.expected, None);
        assert_eq!(tr.zero_diff, 0.0);
        assert!(tr.top4 > 0.99);
    }

    #[test]
    fn low_trip_and_cold_never_activate_the_guard() {
        let low = SiteSpec {
            kind: SiteKind::LowTrip { stride: 64 },
            passes: 40,
            trip: 32,
        };
        let tr = &site_truths(&low, 0, &t(), true)[0];
        assert_eq!(tr.expected, None);
        assert_eq!(tr.profiled_refs, 0, "guard must never fire below TT");
        let cold = SiteSpec {
            kind: SiteKind::ColdLoop { stride: 64 },
            passes: 1,
            trip: 64,
        };
        let tr = &site_truths(&cold, 0, &t(), true)[0];
        assert_eq!(tr.expected, None);
        assert_eq!(tr.profiled_refs, 0, "single-entry nests are never profiled");
    }

    #[test]
    fn path_phased_arms_are_pure_ssst() {
        let site = SiteSpec {
            kind: SiteKind::PathPhased { a: 96, b: 224 },
            passes: 4,
            trip: 512,
        };
        let ts = site_truths(&site, 0, &t(), true);
        assert_eq!(ts.len(), 3);
        // Per-arm cursors advance only on their own path, so across the
        // 64-iteration phase gaps the stride is *still* constant: the
        // multi-iteration path-sensitive signal.
        assert_eq!(ts[0].expected, Some(StrideClass::Ssst));
        assert_eq!(ts[0].top1, 1.0);
        assert_eq!(ts[0].dominant, 96);
        assert_eq!(ts[1].expected, Some(StrideClass::Ssst));
        assert_eq!(ts[1].dominant, 224);
        assert_eq!(ts[2].expected, Some(StrideClass::Pmst));
        assert_eq!(ts[2].label, "s0.path.join");
    }

    #[test]
    fn weak_stride_ratios_sit_mid_band() {
        let site = SiteSpec {
            kind: SiteKind::WeakStride {
                stride: 128,
                lcg_seed: 99,
            },
            passes: 5,
            trip: 600,
        };
        let tr = &site_truths(&site, 0, &t(), true)[0];
        assert_eq!(tr.expected, Some(StrideClass::Wsst));
        assert!(tr.top1 > 0.35 && tr.top1 < 0.5, "top1 {}", tr.top1);
        assert!(tr.zero_diff > 0.2 && tr.zero_diff < 0.35);
    }
}
