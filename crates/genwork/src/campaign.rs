//! The oracle campaign: run generated workloads through the production
//! profile→classify pipeline and diff the result against the
//! constructive ground truth.
//!
//! The campaign is deterministic end to end: workload specs derive from
//! `(seed, index)` alone, evaluation fans out over
//! `stride_core::parallel_map` (input-order results), and the report is
//! rendered from the ordered outcome — so the same seed produces a
//! byte-identical report at any `--jobs` level.
//!
//! Any disagreement is minimized by a greedy shrinker (drop whole loop
//! nests, then halve passes/trips) before being reported, so a failure
//! report leads with the smallest reproducing spec.

use crate::emit;
use crate::oracle::{self, SiteTruth};
use crate::spec::{generate, GenConfig, GenSpec};
use stride_core::{
    classify, parallel_map, run_profiling, PipelineConfig, PrefetchConfig, ProfilingVariant,
    StrideClass,
};

/// The profiling variants a campaign may target: the four *unsampled*
/// instrumentation methods. Sampling deliberately loses references, so a
/// full-count oracle has nothing exact to say about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignVariant {
    /// Guarded, edge-counter trip predicate (the paper's headline method).
    EdgeCheck,
    /// Guarded, block-counter trip predicate.
    BlockCheck,
    /// Unguarded, every in-loop load.
    NaiveLoop,
    /// Unguarded, every load.
    NaiveAll,
}

impl CampaignVariant {
    /// The pipeline variant to run.
    pub fn variant(self) -> ProfilingVariant {
        match self {
            CampaignVariant::EdgeCheck => ProfilingVariant::EdgeCheck,
            CampaignVariant::BlockCheck => ProfilingVariant::BlockCheck,
            CampaignVariant::NaiveLoop => ProfilingVariant::NaiveLoop,
            CampaignVariant::NaiveAll => ProfilingVariant::NaiveAll,
        }
    }

    /// Whether the oracle must model the trip-count guard.
    pub fn guarded(self) -> bool {
        matches!(
            self,
            CampaignVariant::EdgeCheck | CampaignVariant::BlockCheck
        )
    }
}

impl std::str::FromStr for CampaignVariant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "edge-check" => Ok(CampaignVariant::EdgeCheck),
            "block-check" => Ok(CampaignVariant::BlockCheck),
            "naive-loop" => Ok(CampaignVariant::NaiveLoop),
            "naive-all" => Ok(CampaignVariant::NaiveAll),
            _ => Err(format!(
                "unknown campaign variant `{s}` (sampled variants have no exact oracle)"
            )),
        }
    }
}

impl std::fmt::Display for CampaignVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CampaignVariant::EdgeCheck => "edge-check",
            CampaignVariant::BlockCheck => "block-check",
            CampaignVariant::NaiveLoop => "naive-loop",
            CampaignVariant::NaiveAll => "naive-all",
        })
    }
}

/// Oracle-vs-pipeline result for one load site.
#[derive(Clone, Debug)]
pub struct SiteOutcome {
    /// The oracle's view of the site.
    pub truth: SiteTruth,
    /// What the production classifier assigned (`None` = filtered or no
    /// pattern).
    pub got: Option<StrideClass>,
    /// The classifier's dominant stride (0 when unclassified).
    pub dominant_got: i64,
}

impl SiteOutcome {
    /// True when pipeline and oracle agree. For SSST sites the dominant
    /// stride must match too (generation margins make it unambiguous);
    /// for PMST/WSST the top-1 among close peers may legitimately differ
    /// under LFU merging, so only the class is binding.
    pub fn agrees(&self) -> bool {
        self.truth.expected == self.got
            && (self.truth.expected != Some(StrideClass::Ssst)
                || self.truth.dominant == self.dominant_got)
    }
}

/// One evaluated workload.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name (`gen-<seed>-<index>`).
    pub name: String,
    /// Campaign index.
    pub index: u32,
    /// Per-site outcomes in tracked order; empty when `error` is set.
    pub sites: Vec<SiteOutcome>,
    /// Pipeline failure (a campaign failure in itself).
    pub error: Option<String>,
}

impl WorkloadResult {
    /// True when the pipeline ran and every site agrees with the oracle.
    pub fn agrees(&self) -> bool {
        self.error.is_none() && self.sites.iter().all(SiteOutcome::agrees)
    }
}

/// A disagreement minimized by the shrinker.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The original failing workload name.
    pub name: String,
    /// The minimized spec that still disagrees.
    pub spec: GenSpec,
    /// Its evaluation.
    pub result: WorkloadResult,
    /// Shrink steps that reduced the spec.
    pub steps: u32,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Corpus seed.
    pub seed: u64,
    /// Number of generated workloads.
    pub count: u32,
    /// Worker threads for the evaluation fan-out.
    pub jobs: usize,
    /// Profiling variant under test.
    pub variant: CampaignVariant,
    /// Generation parameters (thresholds shared with the classifier).
    pub gen: GenConfig,
}

impl CampaignConfig {
    /// Default campaign: 200 workloads under the paper method.
    pub fn new(seed: u64) -> Self {
        CampaignConfig {
            seed,
            count: 200,
            jobs: 1,
            variant: CampaignVariant::EdgeCheck,
            gen: GenConfig::campaign(),
        }
    }
}

/// Everything a campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Per-workload results in index order.
    pub workloads: Vec<WorkloadResult>,
    /// Minimized disagreements (empty on a clean campaign).
    pub disagreements: Vec<Shrunk>,
}

impl CampaignOutcome {
    /// True when every workload agreed with the oracle.
    pub fn clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// The pipeline configuration the campaign classifies under: paper
/// defaults with the generator's thresholds substituted.
fn pipeline_config(gen: &GenConfig) -> PipelineConfig {
    PipelineConfig {
        prefetch: PrefetchConfig {
            thresholds: gen.thresholds,
            ..PrefetchConfig::paper()
        },
        ..PipelineConfig::default()
    }
}

/// Evaluates one spec: emit, profile, classify, diff against the oracle.
pub fn evaluate_spec(spec: &GenSpec, gen: &GenConfig, variant: CampaignVariant) -> WorkloadResult {
    let name = spec.name();
    let built = emit::build(spec);
    let truths = oracle::ground_truth(spec, &gen.thresholds, variant.guarded());
    debug_assert_eq!(built.sites.len(), truths.len());
    let config = pipeline_config(gen);
    let outcome = match run_profiling(&built.module, &[0], variant.variant(), &config) {
        Ok(o) => o,
        Err(e) => {
            return WorkloadResult {
                name,
                index: spec.index,
                sites: Vec::new(),
                error: Some(e.to_string()),
            }
        }
    };
    let classification = classify(
        &built.module,
        &outcome.stride,
        &outcome.edge,
        outcome.source,
        &config.prefetch,
    );
    let sites = built
        .sites
        .iter()
        .zip(truths)
        .map(|(tracked, truth)| {
            let hit = classification
                .loads
                .iter()
                .find(|l| l.func == tracked.func && l.site == tracked.site);
            SiteOutcome {
                truth,
                got: hit.map(|l| l.class),
                dominant_got: hit.map(|l| l.dominant_stride).unwrap_or(0),
            }
        })
        .collect();
    WorkloadResult {
        name,
        index: spec.index,
        sites,
        error: None,
    }
}

/// Shrink-step budget: each step is one full pipeline run of an
/// already-small module, so this bounds worst-case shrink time.
const MAX_SHRINK_EVALS: u32 = 200;

/// Greedy minimization of a disagreeing spec: first drop whole loop
/// nests, then halve passes and trips, keeping any reduction that still
/// disagrees.
pub fn shrink(spec: &GenSpec, gen: &GenConfig, variant: CampaignVariant) -> Shrunk {
    let mut cur = spec.clone();
    let mut cur_res = evaluate_spec(&cur, gen, variant);
    let mut steps = 0;
    let mut evals = 0;
    'outer: loop {
        // 1. Drop a site.
        if cur.sites.len() > 1 {
            for i in 0..cur.sites.len() {
                let mut cand = cur.clone();
                cand.sites.remove(i);
                evals += 1;
                let res = evaluate_spec(&cand, gen, variant);
                if !res.agrees() {
                    cur = cand;
                    cur_res = res;
                    steps += 1;
                    if evals >= MAX_SHRINK_EVALS {
                        break 'outer;
                    }
                    continue 'outer;
                }
                if evals >= MAX_SHRINK_EVALS {
                    break 'outer;
                }
            }
        }
        // 2. Halve a site's passes or trip.
        for i in 0..cur.sites.len() {
            let mut cands = Vec::new();
            if cur.sites[i].passes >= 2 {
                let mut c = cur.clone();
                c.sites[i].passes /= 2;
                cands.push(c);
            }
            if cur.sites[i].trip >= 16 {
                let mut c = cur.clone();
                c.sites[i].trip /= 2;
                cands.push(c);
            }
            for cand in cands {
                evals += 1;
                let res = evaluate_spec(&cand, gen, variant);
                if !res.agrees() {
                    cur = cand;
                    cur_res = res;
                    steps += 1;
                    if evals >= MAX_SHRINK_EVALS {
                        break 'outer;
                    }
                    continue 'outer;
                }
                if evals >= MAX_SHRINK_EVALS {
                    break 'outer;
                }
            }
        }
        break; // no reduction kept the disagreement
    }
    Shrunk {
        name: spec.name(),
        spec: cur,
        result: cur_res,
        steps,
    }
}

/// Runs the full campaign: generate, evaluate in parallel, shrink any
/// disagreements (serially, in index order, for determinism).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    let indices: Vec<u32> = (0..cfg.count).collect();
    let workloads = parallel_map(&indices, cfg.jobs, |_, &index| {
        let spec = generate(cfg.seed, index, &cfg.gen);
        evaluate_spec(&spec, &cfg.gen, cfg.variant)
    });
    let disagreements = workloads
        .iter()
        .filter(|r| !r.agrees())
        .map(|r| {
            shrink(
                &generate(cfg.seed, r.index, &cfg.gen),
                &cfg.gen,
                cfg.variant,
            )
        })
        .collect();
    CampaignOutcome {
        workloads,
        disagreements,
    }
}

/// Renders a class option the way reports spell it.
fn class_str(c: Option<StrideClass>) -> &'static str {
    SiteTruth::class_name(c)
}

/// Renders the deterministic campaign report. Identical for identical
/// `(seed, count, variant, thresholds)` regardless of `--jobs`.
pub fn render_report(cfg: &CampaignConfig, outcome: &CampaignOutcome) -> String {
    use std::fmt::Write as _;
    let t = &cfg.gen.thresholds;
    let mut s = String::new();
    let _ = writeln!(s, "# genwork campaign v1");
    let _ = writeln!(s, "seed 0x{:016x}", cfg.seed);
    let _ = writeln!(s, "count {}", cfg.count);
    let _ = writeln!(s, "variant {}", cfg.variant);
    let _ = writeln!(
        s,
        "thresholds ft={} tt={} ssst={:.3} pmst={:.3}/{:.3} wsst={:.3}/{:.3}",
        t.frequency_threshold,
        t.trip_count_threshold,
        t.ssst_threshold,
        t.pmst_threshold,
        t.pmst_diff_threshold,
        t.wsst_threshold,
        t.wsst_diff_threshold
    );
    let mut by_class = [0usize; 4];
    let mut sites_total = 0;
    for w in &outcome.workloads {
        for site in &w.sites {
            sites_total += 1;
            let slot = match site.truth.expected {
                Some(StrideClass::Ssst) => 0,
                Some(StrideClass::Pmst) => 1,
                Some(StrideClass::Wsst) => 2,
                None => 3,
            };
            by_class[slot] += 1;
        }
    }
    let _ = writeln!(s, "sites {sites_total}");
    let _ = writeln!(
        s,
        "expected ssst={} pmst={} wsst={} none={}",
        by_class[0], by_class[1], by_class[2], by_class[3]
    );
    let _ = writeln!(s, "disagreements {}", outcome.disagreements.len());
    let _ = writeln!(s);
    for w in &outcome.workloads {
        let mark = if w.agrees() { "ok" } else { "DISAGREE" };
        let mut line = format!("workload {} {mark}", w.name);
        if let Some(e) = &w.error {
            let _ = write!(line, " error={e}");
        }
        for site in &w.sites {
            let _ = write!(
                line,
                " {}:{}",
                site.truth.label,
                class_str(site.truth.expected)
            );
            if !site.agrees() {
                let _ = write!(line, "!got={}", class_str(site.got));
            }
        }
        let _ = writeln!(s, "{line}");
    }
    for d in &outcome.disagreements {
        let _ = writeln!(s);
        let _ = writeln!(s, "disagreement {} shrink-steps={}", d.name, d.steps);
        for (i, site) in d.spec.sites.iter().enumerate() {
            let _ = writeln!(
                s,
                "  spec s{i} kind={:?} passes={} trip={}",
                site.kind, site.passes, site.trip
            );
        }
        if let Some(e) = &d.result.error {
            let _ = writeln!(s, "  error {e}");
        }
        for site in &d.result.sites {
            if !site.agrees() {
                let _ = writeln!(
                    s,
                    "  site {} expected={} got={} dominant={}vs{} top1={:.6} top4={:.6} zero_diff={:.6} freq={} trip={:.2}",
                    site.truth.label,
                    class_str(site.truth.expected),
                    class_str(site.got),
                    site.truth.dominant,
                    site.dominant_got,
                    site.truth.top1,
                    site.truth.top4,
                    site.truth.zero_diff,
                    site.truth.freq,
                    site.truth.trip_est
                );
            }
        }
    }
    s
}

/// Renders the per-workload ground-truth sidecar written next to each
/// corpus module.
pub fn render_truth(spec: &GenSpec, truths: &[SiteTruth]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# genwork truth v1");
    let _ = writeln!(s, "name {}", spec.name());
    let _ = writeln!(s, "sites {}", truths.len());
    for t in truths {
        let _ = writeln!(
            s,
            "site {} expected={} freq={} trip={:.2} total={} top1={:.6} top4={:.6} zero_diff={:.6} dominant={}",
            t.label,
            class_str(t.expected),
            t.freq,
            t.trip_est,
            t.total,
            t.top1,
            t.top4,
            t.zero_diff,
            t.dominant
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small but real: every workload through the full debug-build
    /// pipeline. The release-mode 200-workload campaign runs in ci.sh.
    fn small_config(jobs: usize) -> CampaignConfig {
        CampaignConfig {
            seed: 0x9e37,
            count: 16,
            jobs,
            ..CampaignConfig::new(0x9e37)
        }
    }

    #[test]
    fn campaign_agrees_with_oracle() {
        let cfg = small_config(2);
        let out = run_campaign(&cfg);
        let report = render_report(&cfg, &out);
        assert!(out.clean(), "oracle disagreements:\n{report}");
        // The corpus must exercise every class.
        assert!(report.contains(":SSST"));
        assert!(report.contains(":PMST"));
        assert!(report.contains(":none"));
    }

    #[test]
    fn report_is_identical_across_jobs() {
        let c1 = small_config(1);
        let c4 = small_config(4);
        let r1 = render_report(&c1, &run_campaign(&c1));
        let r4 = render_report(&c4, &run_campaign(&c4));
        assert_eq!(r1, r4);
    }

    #[test]
    fn naive_variants_agree_too() {
        for variant in [CampaignVariant::NaiveLoop, CampaignVariant::BlockCheck] {
            let cfg = CampaignConfig {
                count: 6,
                variant,
                ..small_config(2)
            };
            let out = run_campaign(&cfg);
            assert!(
                out.clean(),
                "{variant} disagreements:\n{}",
                render_report(&cfg, &out)
            );
        }
    }

    #[test]
    fn shrinker_minimizes_an_artificial_disagreement() {
        // Force a disagreement by lying to the oracle: evaluate under
        // edge-check but derive truth unguarded via a naive-variant
        // mismatch is not expressible through the public API, so instead
        // check the shrinker's contract on an agreeing spec: it must
        // return the spec unchanged only for disagreeing inputs — here we
        // verify it terminates and reports zero steps when the "failure"
        // vanishes (the guard: shrink() is only called on disagreements
        // in run_campaign).
        let gen = GenConfig::campaign();
        let spec = generate(1, 0, &gen);
        let s = shrink(&spec, &gen, CampaignVariant::EdgeCheck);
        assert_eq!(s.steps, 0);
        assert!(s.result.agrees());
    }
}
