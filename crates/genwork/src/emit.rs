//! Lowers a [`GenSpec`] to a verified IR module.
//!
//! The emitted address schedule must match `oracle::simulate`
//! *instruction for instruction*: cursor updates happen before the load,
//! cursors are continuous across outer passes, the in-IR LCG is stepped
//! exactly once per iteration where the oracle steps its mirror, and all
//! cursor regions live at the same offsets from the site's global base
//! that the oracle uses as absolute addresses (strides and 16-byte
//! bucket identity are translation-invariant, so the oracle can simulate
//! at base 0).
//!
//! Every tracked load uses its own address register, so under the
//! guarded methods each load is the sole member of its equivalence class
//! and is selected as its own representative; the modules contain no
//! other loads at all, making `Classification::loads` lookups exact.

use crate::spec::{GenSpec, SiteKind, SiteSpec};
use stride_ir::{
    BinOp, CmpOp, FuncId, FunctionBuilder, GlobalId, InstrId, Module, ModuleBuilder, Operand,
};
use stride_workloads::Lcg;

/// One emitted load site, in the same order as `oracle::ground_truth`.
#[derive(Clone, Debug)]
pub struct TrackedSite {
    /// `s{index}.{tag}{suffix}` — equal to the matching `SiteTruth` label.
    pub label: String,
    /// Index of the owning [`SiteSpec`].
    pub spec_index: usize,
    /// Containing function (always the entry function).
    pub func: FuncId,
    /// The load instruction id — the classification key.
    pub site: InstrId,
}

/// A generated workload lowered to IR.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The source spec.
    pub spec: GenSpec,
    /// The module (single entry function taking one ignored argument).
    pub module: Module,
    /// Tracked load sites, parallel to the oracle's truth vector.
    pub sites: Vec<TrackedSite>,
}

/// Per-site global size: large enough for every cursor region (shared
/// cursors start at `1 << 22` and advance at most ~2 MiB). Globals are
/// zero-initialized address ranges in the VM's sparse memory, so the size
/// costs nothing until written.
const GLOBAL_SIZE: u64 = 1 << 23;

/// Offset of the second-arm cursor region (PathPhased).
const ARM_B_OFF: i64 = 1 << 21;
/// Offset of the shared/scattered region (PathPhased join, WeakStride
/// scatter) and start of the ConstStride cursor.
const MID_OFF: i64 = 1 << 22;

/// Lowers `spec` to IR. The module is *not* verified here; generator
/// tests and the campaign run `verify_module` on every corpus member.
pub fn build(spec: &GenSpec) -> Generated {
    let mut mb = ModuleBuilder::new();
    let globals: Vec<GlobalId> = spec
        .sites
        .iter()
        .enumerate()
        .map(|(i, s)| mb.add_global(format!("g{i}_{}", s.kind.tag()), GLOBAL_SIZE))
        .collect();
    let main = mb.declare_function("main", 1);
    let mut fb = mb.function(main);
    let sink = fb.mov(0i64);
    let mut sites = Vec::new();
    for (i, site) in spec.sites.iter().enumerate() {
        for (suffix, id) in emit_site(&mut fb, site, globals[i], sink) {
            sites.push(TrackedSite {
                label: format!("s{i}.{}{suffix}", site.kind.tag()),
                spec_index: i,
                func: main,
                site: id,
            });
        }
    }
    fb.ret(Some(Operand::Reg(sink)));
    mb.set_entry(main);
    Generated {
        spec: spec.clone(),
        module: mb.finish(),
        sites,
    }
}

/// Emits one loop nest; returns `(label suffix, load id)` per load site.
fn emit_site(
    fb: &mut FunctionBuilder<'_>,
    site: &SiteSpec,
    global: GlobalId,
    sink: stride_ir::Reg,
) -> Vec<(&'static str, InstrId)> {
    let passes = site.passes as i64;
    let trip = site.trip as i64;
    let base = fb.global_addr(global);
    match &site.kind {
        SiteKind::ConstStride { stride }
        | SiteKind::LowTrip { stride }
        | SiteKind::ColdLoop { stride } => {
            let stride = *stride;
            let w = fb.add(base, MID_OFF);
            let mut id = None;
            fb.counted_loop(passes, |fb, _| {
                fb.counted_loop(trip, |fb, _| {
                    fb.bin_to(w, BinOp::Add, w, stride);
                    let (v, i) = fb.load(w, 0);
                    fb.bin_to(sink, BinOp::Add, sink, v);
                    id = Some(i);
                });
            });
            vec![("", unwrap_id(id))]
        }
        SiteKind::PointerChase { node_size } => {
            let node_size = *node_size;
            // Build phase: bump-layout list inside the global, stores only
            // (no loads — the chase loads below are the module's only
            // profiled sites for this nest).
            let c = fb.mov(base);
            fb.counted_loop(trip + 1, |fb, _| {
                let nxt = fb.add(c, node_size);
                fb.store(nxt, c, 0);
                fb.mov_to(c, nxt);
            });
            let p = fb.mov(0i64);
            let mut id = None;
            fb.counted_loop(passes, |fb, _| {
                fb.mov_to(p, base);
                fb.counted_loop(trip, |fb, _| {
                    id = Some(fb.load_to(p, p, 0));
                    fb.bin_to(sink, BinOp::Add, sink, p);
                });
            });
            vec![("", unwrap_id(id))]
        }
        SiteKind::PhasedStride {
            strides,
            phase_len_log2,
        } => {
            let strides = strides.clone();
            let shift = *phase_len_log2 as i64;
            let w = fb.mov(base);
            let g = fb.mov(0i64);
            let mut id = None;
            fb.counted_loop(passes, |fb, _| {
                fb.counted_loop(trip, |fb, _| {
                    let ph = fb.bin(BinOp::Lshr, g, shift);
                    let ph = fb.bin(BinOp::And, ph, strides.len() as i64 - 1);
                    let s = fb.select_index(ph, &strides);
                    fb.bin_to(w, BinOp::Add, w, s);
                    let (v, i) = fb.load(w, 0);
                    fb.bin_to(sink, BinOp::Add, sink, v);
                    fb.bin_to(g, BinOp::Add, g, 1i64);
                    id = Some(i);
                });
            });
            vec![("", unwrap_id(id))]
        }
        SiteKind::PathPhased { a, b } => {
            let (a, b) = (*a, *b);
            let cx = fb.mov(base);
            let cy = fb.add(base, ARM_B_OFF);
            let sh = fb.add(base, MID_OFF);
            let g = fb.mov(0i64);
            let mut ids = None;
            fb.counted_loop(passes, |fb, _| {
                fb.counted_loop(trip, |fb, _| {
                    let ph = fb.bin(BinOp::Lshr, g, 6i64);
                    let ph = fb.bin(BinOp::And, ph, 1i64);
                    let on_a = fb.cmp(CmpOp::Eq, ph, 0i64);
                    let a_blk = fb.new_block();
                    let b_blk = fb.new_block();
                    let join = fb.new_block();
                    fb.cond_br(on_a, a_blk, b_blk);
                    fb.switch_to(a_blk);
                    fb.bin_to(cx, BinOp::Add, cx, a);
                    let (vx, ida) = fb.load(cx, 0);
                    fb.bin_to(sink, BinOp::Add, sink, vx);
                    fb.bin_to(sh, BinOp::Add, sh, a);
                    fb.br(join);
                    fb.switch_to(b_blk);
                    fb.bin_to(cy, BinOp::Add, cy, b);
                    let (vy, idb) = fb.load(cy, 0);
                    fb.bin_to(sink, BinOp::Add, sink, vy);
                    fb.bin_to(sh, BinOp::Add, sh, b);
                    fb.br(join);
                    fb.switch_to(join);
                    let (vj, idj) = fb.load(sh, 0);
                    fb.bin_to(sink, BinOp::Add, sink, vj);
                    fb.bin_to(g, BinOp::Add, g, 1i64);
                    ids = Some((ida, idb, idj));
                });
            });
            let (ida, idb, idj) = match ids {
                Some(t) => t,
                None => unreachable!("counted_loop body runs during emission"),
            };
            vec![(".a", ida), (".b", idb), (".join", idj)]
        }
        SiteKind::AlternatingStride { a, b } => {
            let (a, b) = (*a, *b);
            let w = fb.mov(base);
            let g = fb.mov(0i64);
            let mut id = None;
            fb.counted_loop(passes, |fb, _| {
                fb.counted_loop(trip, |fb, _| {
                    let par = fb.bin(BinOp::And, g, 1i64);
                    let even = fb.cmp(CmpOp::Eq, par, 0i64);
                    let s = fb.select(even, a, b);
                    fb.bin_to(w, BinOp::Add, w, s);
                    let (v, i) = fb.load(w, 0);
                    fb.bin_to(sink, BinOp::Add, sink, v);
                    fb.bin_to(g, BinOp::Add, g, 1i64);
                    id = Some(i);
                });
            });
            vec![("", unwrap_id(id))]
        }
        SiteKind::WeakStride { stride, lcg_seed } => {
            let stride = *stride;
            let w = fb.mov(base);
            let scat_base = fb.add(base, MID_OFF);
            let lcg = Lcg::init(fb, *lcg_seed);
            let g = fb.mov(0i64);
            let mut id = None;
            fb.counted_loop(passes, |fb, _| {
                fb.counted_loop(trip, |fb, _| {
                    let jm = fb.bin(BinOp::Rem, g, 7i64);
                    let strided = fb.cmp(CmpOp::Lt, jm, 4i64);
                    let adv = fb.select(strided, stride, 0i64);
                    fb.bin_to(w, BinOp::Add, w, adv);
                    let off = lcg.next_masked(fb, 0x7ff);
                    let off16 = fb.mul(off, 16i64);
                    let scat = fb.add(scat_base, off16);
                    let addr = fb.select(strided, w, scat);
                    let (v, i) = fb.load(addr, 0);
                    fb.bin_to(sink, BinOp::Add, sink, v);
                    fb.bin_to(g, BinOp::Add, g, 1i64);
                    id = Some(i);
                });
            });
            vec![("", unwrap_id(id))]
        }
        SiteKind::HashProbe { mask, lcg_seed } => {
            let mask = *mask;
            let lcg = Lcg::init(fb, *lcg_seed);
            let mut id = None;
            fb.counted_loop(passes, |fb, _| {
                fb.counted_loop(trip, |fb, _| {
                    let off = lcg.next_masked(fb, mask);
                    let off16 = fb.mul(off, 16i64);
                    let addr = fb.add(base, off16);
                    let (v, i) = fb.load(addr, 0);
                    fb.bin_to(sink, BinOp::Add, sink, v);
                    id = Some(i);
                });
            });
            vec![("", unwrap_id(id))]
        }
    }
}

/// Loop bodies always execute their closure during emission, so the
/// captured load id is always set.
fn unwrap_id(id: Option<InstrId>) -> InstrId {
    match id {
        Some(i) => i,
        None => unreachable!("counted_loop body runs during emission"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate, GenConfig};

    #[test]
    fn generated_modules_verify_and_match_truth_arity() {
        let cfg = GenConfig::campaign();
        for index in 0..12 {
            let spec = generate(0xc0ffee, index, &cfg);
            let g = build(&spec);
            stride_ir::verify_module(&g.module).expect("generated module verifies");
            let truths = crate::oracle::ground_truth(&spec, &cfg.thresholds, true);
            assert_eq!(g.sites.len(), truths.len());
            for (s, t) in g.sites.iter().zip(&truths) {
                assert_eq!(s.label, t.label, "site order must match the oracle");
            }
        }
    }

    #[test]
    fn lowering_is_deterministic() {
        let cfg = GenConfig::campaign();
        let spec = generate(7, 3, &cfg);
        let a = stride_ir::module_to_string(&build(&spec).module);
        let b = stride_ir::module_to_string(&build(&spec).module);
        assert_eq!(a, b);
    }

    #[test]
    fn modules_run_and_return_deterministically() {
        use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};
        let cfg = GenConfig::campaign();
        let spec = generate(0xbeef, 1, &cfg);
        let g = build(&spec);
        let run = |m: &stride_ir::Module| {
            Vm::new(m, VmConfig::default())
                .run(&[0], &mut FlatTiming, &mut NullRuntime)
                .expect("runs")
                .return_value
        };
        assert_eq!(run(&g.module), run(&g.module));
    }
}
