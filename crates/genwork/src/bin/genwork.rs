//! `genwork` — drive the generated-workload subsystem offline.
//!
//! ```text
//! genwork campaign [--seed S] [--count N] [--jobs J] [--variant V] [--out PATH]
//! genwork gen --out DIR [--seed S] [--count N] [--jobs J]
//! genwork workloads [--json]
//! ```
//!
//! * `campaign` — generate `N` workloads, run each through the
//!   profile→classify pipeline, diff against the constructive oracle,
//!   shrink and report any disagreement. Exit 1 if the pipeline and the
//!   oracle disagree anywhere.
//! * `gen` — write the corpus to disk: `<name>.ir` (module text) and
//!   `<name>.truth` (ground-truth sidecar) per workload plus a
//!   `MANIFEST` — byte-identical for a given seed at any `--jobs`.
//! * `workloads` — the unified suite listing: hand-built Fig. 15
//!   benchmarks (from `stride_workloads::REGISTRY`) and generated
//!   archetypes, one enumeration path, optionally as JSON.

use std::process::ExitCode;
use stride_core::parallel_map;
use stride_genwork::spec::ARCHETYPES;
use stride_genwork::{
    build, generate, ground_truth, render_report, render_truth, run_campaign, CampaignConfig,
    CampaignVariant,
};
use stride_ir::module_to_string;
use stride_workloads::REGISTRY;

/// Oracle/pipeline disagreement (campaign) or write failure (gen).
const EXIT_FAIL: u8 = 1;
/// Bad invocation.
const EXIT_USAGE: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: genwork COMMAND [FLAGS]\n\
         \n\
         commands:\n\
         \x20 campaign [--seed S] [--count N] [--jobs J] [--variant V] [--out PATH]\n\
         \x20          run the oracle campaign; exit 1 on any disagreement\n\
         \x20          (V: edge-check | block-check | naive-loop | naive-all)\n\
         \x20 gen --out DIR [--seed S] [--count N] [--jobs J]\n\
         \x20          write <name>.ir + <name>.truth per workload and a MANIFEST;\n\
         \x20          byte-identical for a given seed at any --jobs\n\
         \x20 workloads [--json]\n\
         \x20          list hand-built and generated suites through one path\n\
         \n\
         seeds accept decimal or 0x-hex; defaults: seed 42, count 200, jobs 1"
    );
    ExitCode::from(EXIT_USAGE)
}

/// `--flag value` lookup over the raw argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Campaign/gen parameters shared by both subcommands.
fn campaign_config(rest: &[String]) -> Result<CampaignConfig, String> {
    let mut cfg = CampaignConfig::new(42);
    if let Some(v) = flag_value(rest, "--seed") {
        cfg.seed = parse_seed(&v).ok_or_else(|| format!("bad --seed `{v}`"))?;
    }
    if let Some(v) = flag_value(rest, "--count") {
        cfg.count = v
            .parse::<u32>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --count `{v}`"))?;
    }
    if let Some(v) = flag_value(rest, "--jobs") {
        cfg.jobs = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --jobs `{v}`"))?;
    }
    if let Some(v) = flag_value(rest, "--variant") {
        cfg.variant = v.parse::<CampaignVariant>()?;
    }
    Ok(cfg)
}

fn write_out(path: &str, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

fn cmd_campaign(rest: &[String]) -> ExitCode {
    let cfg = match campaign_config(rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("genwork: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let outcome = run_campaign(&cfg);
    let report = render_report(&cfg, &outcome);
    match flag_value(rest, "--out") {
        Some(path) => {
            if let Err(e) = write_out(&path, &report) {
                eprintln!("genwork: {e}");
                return ExitCode::from(EXIT_FAIL);
            }
            eprintln!("genwork: report written to {path}");
        }
        None => {
            use std::io::Write;
            let _ = std::io::stdout().write_all(report.as_bytes());
        }
    }
    if outcome.clean() {
        eprintln!(
            "genwork: campaign clean — {} workloads, 0 disagreements",
            outcome.workloads.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "genwork: {} disagreement(s) — see the shrunk specs in the report",
            outcome.disagreements.len()
        );
        ExitCode::from(EXIT_FAIL)
    }
}

fn cmd_gen(rest: &[String]) -> ExitCode {
    let Some(dir) = flag_value(rest, "--out") else {
        return usage();
    };
    let cfg = match campaign_config(rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("genwork: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("genwork: cannot create {dir}: {e}");
        return ExitCode::from(EXIT_FAIL);
    }
    let indices: Vec<u32> = (0..cfg.count).collect();
    let gen = &cfg.gen;
    // Emission and truth derivation fan out; writes happen serially in
    // index order so the MANIFEST and directory contents are stable.
    let corpus: Vec<(String, String, String)> = parallel_map(&indices, cfg.jobs, |_, &index| {
        let spec = generate(cfg.seed, index, gen);
        let built = build(&spec);
        let truths = ground_truth(&spec, &gen.thresholds, true);
        (
            spec.name(),
            module_to_string(&built.module),
            render_truth(&spec, &truths),
        )
    });
    let mut manifest = String::from("# genwork corpus v1\n");
    manifest.push_str(&format!("seed 0x{:016x}\ncount {}\n", cfg.seed, cfg.count));
    for (name, ir, truth) in &corpus {
        for (ext, text) in [("ir", ir), ("truth", truth)] {
            let path = format!("{dir}/{name}.{ext}");
            if let Err(e) = write_out(&path, text) {
                eprintln!("genwork: {e}");
                return ExitCode::from(EXIT_FAIL);
            }
        }
        manifest.push_str(&format!("workload {name}\n"));
    }
    if let Err(e) = write_out(&format!("{dir}/MANIFEST"), &manifest) {
        eprintln!("genwork: {e}");
        return ExitCode::from(EXIT_FAIL);
    }
    eprintln!("genwork: wrote {} workloads to {dir}", corpus.len());
    ExitCode::SUCCESS
}

fn json_str_array(items: &[&str]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
    format!("[{}]", quoted.join(", "))
}

fn cmd_workloads(rest: &[String]) -> ExitCode {
    use std::io::Write;
    let mut out = String::new();
    if rest.iter().any(|a| a == "--json") {
        out.push_str("{\n  \"hand_built\": [\n");
        for (i, s) in REGISTRY.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"lang\": \"{}\", \"description\": \"{}\", \"expected_classes\": {}}}{}\n",
                s.name,
                s.lang,
                s.description,
                json_str_array(s.expected_classes),
                if i + 1 == REGISTRY.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"generated\": [\n");
        for (i, a) in ARCHETYPES.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"tag\": \"{}\", \"description\": \"{}\", \"expected_classes\": {}}}{}\n",
                a.tag,
                a.description,
                json_str_array(a.expected_classes),
                if i + 1 == ARCHETYPES.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("# workload catalog\n");
        for s in REGISTRY {
            out.push_str(&format!(
                "hand-built {:<12} lang={:<4} classes={:<15} {}\n",
                s.name,
                s.lang,
                s.expected_classes.join(","),
                s.description
            ));
        }
        for a in ARCHETYPES {
            out.push_str(&format!(
                "generated  {:<12} lang=ir   classes={:<15} {}\n",
                a.tag,
                a.expected_classes.join(","),
                a.description
            ));
        }
    }
    let _ = std::io::stdout().write_all(out.as_bytes());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "campaign" => cmd_campaign(rest),
        "gen" => cmd_gen(rest),
        "workloads" => cmd_workloads(rest),
        _ => usage(),
    }
}
