//! genwork: a seeded generative workload subsystem with a constructive
//! ground-truth oracle.
//!
//! The paper's evaluation (and this repo's reproduction of it) rests on
//! twelve hand-built benchmarks whose expected per-site classes were
//! derived by humans reading the loop nests. That validates the pipeline
//! against a dozen fixed points. This crate turns the validation around:
//! it *generates* workloads from a seed — loop nests composing constant
//! strides, pointer chases, phased and path-sensitive stride mixes, hash
//! probes, and filter-fodder low-trip/cold loops — and derives each load
//! site's expected classification **constructively from the generator's
//! own stride schedule** (see [`oracle`]), never from running the
//! profiler. Disagreements between pipeline and oracle are minimized by
//! a shrinker and reported ([`campaign`]).
//!
//! Layering:
//!
//! * [`rng`] — splitmix64 streams, one per `(seed, index)`;
//! * [`spec`] — the archetype catalog and the seeded draw, with
//!   margin-enforced parameters;
//! * [`oracle`] — exact schedule simulation + full-count Fig. 7 mirror +
//!   guard-activation model → expected class per site;
//! * [`emit`] — lowers a spec to verified IR whose address trace matches
//!   the oracle's simulation instruction for instruction;
//! * [`campaign`] — parallel evaluate/diff/shrink with byte-stable
//!   reports.
//!
//! The `genwork` binary drives offline campaigns and corpus generation;
//! `stridectl replay` (crates/bench) streams generated corpora at a
//! sharded profile-service cluster.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod campaign;
pub mod emit;
pub mod oracle;
pub mod rng;
pub mod spec;

pub use campaign::{
    evaluate_spec, render_report, render_truth, run_campaign, shrink, CampaignConfig,
    CampaignOutcome, CampaignVariant, SiteOutcome, WorkloadResult,
};
pub use emit::{build, Generated, TrackedSite};
pub use oracle::{ground_truth, margin_check, SiteTruth};
pub use rng::Rng;
pub use spec::{generate, GenConfig, GenSpec, SiteKind, SiteSpec};
