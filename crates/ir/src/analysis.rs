//! Analyses used by profiled-load selection: loop-invariant addresses,
//! control equivalence, and *equivalent load* grouping (§2.1 of the paper).

use crate::cfg::Cfg;
use crate::dom::{DomTree, PostDomTree};
use crate::function::Function;
use crate::instr::{Op, Operand, Terminator};
use crate::loops::{Loop, LoopForest};
use crate::types::{BlockId, InstrId, LoopId, Reg};
use std::collections::{HashMap, HashSet};

/// Bundles every per-function analysis the instrumentation and prefetch
/// passes consume.
#[derive(Clone, Debug)]
pub struct FuncAnalysis {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Postdominator tree.
    pub pdom: PostDomTree,
    /// Loop forest.
    pub loops: LoopForest,
}

impl FuncAnalysis {
    /// Runs all analyses on `func`.
    pub fn compute(func: &Function) -> Self {
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg, func.entry);
        let exits: Vec<BlockId> = func
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Ret { .. }))
            .map(|b| b.id)
            .collect();
        let pdom = PostDomTree::compute(&cfg, &exits);
        let loops = LoopForest::compute(&cfg, &dom, func.entry);
        FuncAnalysis {
            cfg,
            dom,
            pdom,
            loops,
        }
    }

    /// True if blocks `a` and `b` are control equivalent: one dominates the
    /// other and is postdominated by it, so both execute the same number of
    /// times.
    pub fn control_equivalent(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        (self.dom.dominates(a, b) && self.pdom.postdominates(b, a))
            || (self.dom.dominates(b, a) && self.pdom.postdominates(a, b))
    }
}

/// Registers assigned by any instruction inside `l` (including predicated
/// definitions and call return values).
pub fn regs_defined_in_loop(func: &Function, l: &Loop) -> HashSet<Reg> {
    let mut defs = HashSet::new();
    for &b in &l.blocks {
        for instr in &func.block(b).instrs {
            if let Some(d) = instr.def() {
                defs.insert(d);
            }
        }
    }
    defs
}

/// True if `operand` is loop-invariant with respect to the registers
/// defined inside the loop: immediates always are; a register is invariant
/// iff nothing in the loop redefines it.
///
/// Loads whose address is loop-invariant have stride 0 and are excluded
/// from stride profiling (§3.2 of the paper).
pub fn is_loop_invariant(operand: Operand, loop_defs: &HashSet<Reg>) -> bool {
    match operand {
        Operand::Imm(_) => true,
        Operand::Reg(r) => !loop_defs.contains(&r),
    }
}

/// A set of equivalent loads: same loop, control-equivalent blocks, same
/// base address operand, addresses differing only by compile-time constant
/// offsets. Only the representative is stride-profiled; at prefetch time
/// enough members are prefetched to cover the cache lines the set touches.
#[derive(Clone, Debug)]
pub struct EquivClass {
    /// The innermost loop containing every member (`None` for out-loop
    /// equivalence classes, which are grouped per block).
    pub loop_id: Option<LoopId>,
    /// The common base address operand.
    pub base: Operand,
    /// The profiled representative (first member in program order).
    pub repr: InstrId,
    /// All members as `(instr, block, offset)`, in program order.
    pub members: Vec<(InstrId, BlockId, i64)>,
}

impl EquivClass {
    /// Byte extent `[min_offset, max_offset]` spanned by the members.
    pub fn offset_range(&self) -> (i64, i64) {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for &(_, _, off) in &self.members {
            min = min.min(off);
            max = max.max(off);
        }
        (min, max)
    }
}

/// Groups the loads of `func` into equivalence classes (§2.1).
///
/// Two in-loop loads are equivalent when they share the innermost loop,
/// their blocks are control equivalent, they use the same base operand, and
/// that base register is defined at most once inside the loop (so both see
/// addresses in lock-step and their strides coincide). Out-loop loads are
/// grouped only when they sit in the same block with no intervening
/// redefinition of the base.
pub fn equivalent_load_classes(func: &Function, analysis: &FuncAnalysis) -> Vec<EquivClass> {
    // def counts per loop, computed lazily
    let mut loop_def_counts: HashMap<LoopId, HashMap<Reg, u32>> = HashMap::new();
    let count_defs = |l: &Loop| -> HashMap<Reg, u32> {
        let mut counts: HashMap<Reg, u32> = HashMap::new();
        for &b in &l.blocks {
            for instr in &func.block(b).instrs {
                if let Some(d) = instr.def() {
                    *counts.entry(d).or_insert(0) += 1;
                }
            }
        }
        counts
    };

    let mut classes: Vec<EquivClass> = Vec::new();

    // --- in-loop loads ------------------------------------------------------
    let mut in_loop: Vec<(InstrId, BlockId, Operand, i64, LoopId)> = Vec::new();
    let mut out_loop: Vec<(InstrId, BlockId, Operand, i64)> = Vec::new();
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Op::Load { addr, offset, .. } = instr.op {
                match analysis.loops.loop_of(block.id) {
                    Some(l) => in_loop.push((instr.id, block.id, addr, offset, l)),
                    None => out_loop.push((instr.id, block.id, addr, offset)),
                }
            }
        }
    }

    let mut assigned: HashSet<InstrId> = HashSet::new();
    for i in 0..in_loop.len() {
        let (id_i, b_i, base_i, off_i, l_i) = in_loop[i];
        if assigned.contains(&id_i) {
            continue;
        }
        let defs = loop_def_counts
            .entry(l_i)
            .or_insert_with(|| count_defs(analysis.loops.get(l_i)));
        let base_stable = match base_i {
            Operand::Imm(_) => true,
            Operand::Reg(r) => defs.get(&r).copied().unwrap_or(0) <= 1,
        };
        let mut members = vec![(id_i, b_i, off_i)];
        assigned.insert(id_i);
        if base_stable {
            for &(id_j, b_j, base_j, off_j, l_j) in in_loop.iter().skip(i + 1) {
                if assigned.contains(&id_j) {
                    continue;
                }
                if l_j == l_i && base_j == base_i && analysis.control_equivalent(b_i, b_j) {
                    members.push((id_j, b_j, off_j));
                    assigned.insert(id_j);
                }
            }
        }
        classes.push(EquivClass {
            loop_id: Some(l_i),
            base: base_i,
            repr: id_i,
            members,
        });
    }

    // --- out-loop loads -------------------------------------------------------
    // Group per block, scanning forward while the base register is not
    // redefined.
    let mut out_assigned: HashSet<InstrId> = HashSet::new();
    for block in &func.blocks {
        if analysis.loops.loop_of(block.id).is_some() {
            continue;
        }
        let instrs = &block.instrs;
        for (idx, instr) in instrs.iter().enumerate() {
            let Op::Load { addr, offset, .. } = instr.op else {
                continue;
            };
            if out_assigned.contains(&instr.id) {
                continue;
            }
            let mut members = vec![(instr.id, block.id, offset)];
            out_assigned.insert(instr.id);
            // Extend while the base is not redefined. A load that both uses
            // and redefines the base (pointer chasing) still reads the old
            // value, so it joins the class before terminating the scan.
            for later in &instrs[idx + 1..] {
                if let Op::Load {
                    addr: a2,
                    offset: o2,
                    ..
                } = later.op
                {
                    if a2 == addr && !out_assigned.contains(&later.id) {
                        members.push((later.id, block.id, o2));
                        out_assigned.insert(later.id);
                    }
                }
                if let Some(d) = later.def() {
                    if addr == Operand::Reg(d) {
                        break;
                    }
                }
            }
            classes.push(EquivClass {
                loop_id: None,
                base: addr,
                repr: instr.id,
                members,
            });
        }
    }

    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::BinOp;

    #[test]
    fn loop_invariance() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 2);
        let mut fb = mb.function(f);
        let base = fb.param(0); // never redefined
        let p = fb.mov(fb.param(1));
        fb.counted_loop(100i64, |fb, _| {
            let _ = fb.load(base, 0); // invariant address
            fb.load_to(p, p, 0); // variant address (p redefined)
        });
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let l = analysis.loops.loops()[0].clone();
        let defs = regs_defined_in_loop(func, &l);
        assert!(is_loop_invariant(Operand::Reg(base), &defs));
        assert!(!is_loop_invariant(Operand::Reg(p), &defs));
        assert!(is_loop_invariant(Operand::Imm(64), &defs));
    }

    #[test]
    fn equivalent_loads_same_block_same_base() {
        // The Fig. 1 shape: sn = list->next; use list->string — two loads
        // off the same base with different constant offsets.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        fb.while_nonzero(p, |fb, p| {
            let (_s, _l1) = fb.load(p, 8); // p->string
            fb.load_to(p, p, 0); // p = p->next (redefines p)
        });
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let classes = equivalent_load_classes(func, &analysis);
        // p is redefined inside the loop once; loads at +8 and +0 share the
        // base and block, so they form one class.
        let in_loop: Vec<_> = classes.iter().filter(|c| c.loop_id.is_some()).collect();
        assert_eq!(in_loop.len(), 1);
        assert_eq!(in_loop[0].members.len(), 2);
        assert_eq!(in_loop[0].offset_range(), (0, 8));
    }

    #[test]
    fn base_redefined_twice_not_grouped() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        fb.counted_loop(10i64, |fb, _| {
            let _ = fb.load(p, 0);
            fb.bin_to(p, BinOp::Add, p, 8); // first redefinition
            let _ = fb.load(p, 0);
            fb.bin_to(p, BinOp::Add, p, 8); // second redefinition
        });
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let classes = equivalent_load_classes(func, &analysis);
        let in_loop: Vec<_> = classes.iter().filter(|c| c.loop_id.is_some()).collect();
        // base defined twice in the loop: loads must not be merged
        assert_eq!(in_loop.len(), 2);
        assert!(in_loop.iter().all(|c| c.members.len() == 1));
    }

    #[test]
    fn out_loop_loads_grouped_until_redefinition() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        let _ = fb.load(p, 0);
        let _ = fb.load(p, 8); // same base, groups with previous
        fb.load_to(p, p, 16); // redefines p
        let _ = fb.load(p, 0); // new class
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let classes = equivalent_load_classes(func, &analysis);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].members.len(), 3); // loads at 0, 8 and the chasing load at 16
        assert_eq!(classes[1].members.len(), 1);
        assert!(classes.iter().all(|c| c.loop_id.is_none()));
    }

    #[test]
    fn control_equivalent_blocks_grouped_across_blocks() {
        // b0 -> header -> body1 -> body2 -> header (body1 and body2 are
        // control equivalent); base defined outside the loop.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let base = fb.param(0);
        let header = fb.new_block();
        let body1 = fb.new_block();
        let body2 = fb.new_block();
        let exit = fb.new_block();
        let i = fb.const_(0);
        fb.br(header);
        fb.switch_to(header);
        let c = fb.cmp(crate::instr::CmpOp::Lt, i, 100i64);
        fb.cond_br(c, body1, exit);
        fb.switch_to(body1);
        let _ = fb.load(base, 0);
        fb.br(body2);
        fb.switch_to(body2);
        let _ = fb.load(base, 32);
        fb.bin_to(i, BinOp::Add, i, 1);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let classes = equivalent_load_classes(func, &analysis);
        let in_loop: Vec<_> = classes.iter().filter(|c| c.loop_id.is_some()).collect();
        assert_eq!(in_loop.len(), 1);
        assert_eq!(in_loop[0].members.len(), 2);
    }

    #[test]
    fn non_equivalent_blocks_not_grouped() {
        // A load under a conditional inside the loop is not control
        // equivalent to one in the unconditional body.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let base = fb.param(0);
        fb.counted_loop(100i64, |fb, i| {
            let _ = fb.load(base, 0);
            let then_b = fb.new_block();
            let join = fb.new_block();
            let c = fb.cmp(crate::instr::CmpOp::Eq, i, 5i64);
            fb.cond_br(c, then_b, join);
            fb.switch_to(then_b);
            let _ = fb.load(base, 8);
            fb.br(join);
            fb.switch_to(join);
        });
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let classes = equivalent_load_classes(func, &analysis);
        let in_loop: Vec<_> = classes.iter().filter(|c| c.loop_id.is_some()).collect();
        assert_eq!(in_loop.len(), 2);
    }
}
