//! Instruction set of the IR.
//!
//! The instruction set is a small register machine over 64-bit signed
//! integers, shaped after what the paper's algorithms need from an
//! Itanium-class compiler IR:
//!
//! * explicit `Load`/`Store` with a base register plus compile-time byte
//!   offset (so *equivalent loads* — same base, different constant offset —
//!   are recognizable, §2.1 of the paper);
//! * a non-faulting, non-blocking [`Op::Prefetch`] (Itanium `lfetch`);
//! * instruction-level predication via [`Instr::pred`] (Itanium `p? op`),
//!   used both for the trip-count-guarded profiling calls of the
//!   *edge-check* method and for conditional WSST prefetches;
//! * profiling pseudo-instructions ([`Op::ProfileEdge`],
//!   [`Op::ProfileStride`], [`Op::TripCountCheck`]) that stand in for the
//!   counter-update and `strideProf` call sequences the paper's
//!   instrumentation inserts (Figs. 11–14). The VM charges them the cycle
//!   cost of the instruction sequences they abbreviate.

use crate::types::{BlockId, EdgeId, FuncId, GlobalId, InstrId, Reg};
use std::fmt;

/// A value operand: either a virtual register or an immediate constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Read the current value of a register.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(i64),
}

impl Operand {
    /// Returns the register if this operand reads one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate if this operand is a constant.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary arithmetic/logical operators.
///
/// Division and remainder by zero evaluate to 0 rather than trapping; the
/// simulated machine has no exception model and workload generators rely on
/// total semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; `x / 0 == 0`.
    Div,
    /// Signed remainder; `x % 0 == 0`.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// Logical (unsigned) right shift (shift amount masked to 0..64).
    Lshr,
}

impl BinOp {
    /// Evaluates the operator on two values with total, wrapping semantics.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
            BinOp::Lshr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Lshr => "lshr",
        };
        f.write_str(s)
    }
}

/// Comparison operators; results are 0 or 1 (a predicate value).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison, returning 1 for true and 0 for false.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
        r as i64
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// The operation performed by an [`Instr`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `dst = value`.
    Const { dst: Reg, value: i64 },
    /// `dst = src`.
    Mov { dst: Reg, src: Operand },
    /// `dst = lhs <op> rhs`.
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = (lhs <op> rhs) ? 1 : 0`.
    Cmp {
        dst: Reg,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cond != 0 ? on_true : on_false`.
    Select {
        dst: Reg,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    /// `dst = mem[addr + offset]` (8-byte load).
    Load {
        dst: Reg,
        addr: Operand,
        offset: i64,
    },
    /// `mem[addr + offset] = value` (8-byte store).
    Store {
        value: Operand,
        addr: Operand,
        offset: i64,
    },
    /// Non-blocking, non-faulting cache-line prefetch of `addr + offset`
    /// (Itanium `lfetch`). Never traps, even on wild addresses.
    Prefetch { addr: Operand, offset: i64 },
    /// `dst = heap_alloc(size)` — allocation from the simulated heap.
    ///
    /// Workloads use this to mimic each benchmark's allocator; allocation
    /// order is what creates (or destroys) stride patterns in pointer
    /// chasing code (§1 of the paper).
    Alloc { dst: Reg, size: Operand },
    /// Return an allocation to the simulated heap free list.
    Free { addr: Operand },
    /// `dst = address of global`.
    GlobalAddr { dst: Reg, global: GlobalId },
    /// Direct call. Arguments are copied into the callee's first registers.
    Call {
        dst: Option<Reg>,
        callee: FuncId,
        args: Vec<Operand>,
    },
    /// Increment the frequency counter of `edge`.
    ///
    /// Stands for the `r1 = load ctr; r1++; store ctr` sequence of Fig. 14;
    /// the VM charges it the profiling runtime's edge-counter cost.
    ProfileEdge { edge: EdgeId },
    /// Compute the trip-count predicate for a loop (Figs. 11–14):
    /// `dst = (entry_freq >> shift) > prehead_freq`, where `entry_freq` is
    /// the sum of the counters of `outgoing` (the loop entry block's
    /// outgoing edges) and `prehead_freq` the sum of the counters of
    /// `incoming` (the edges entering the loop from outside).
    ///
    /// `shift` is `floor(log2(trip-count threshold))`, avoiding a division
    /// exactly as the paper describes.
    TripCountCheck {
        dst: Reg,
        header: BlockId,
        incoming: Vec<EdgeId>,
        outgoing: Vec<EdgeId>,
        shift: u32,
    },
    /// Invoke the `strideProf` runtime routine (Figs. 6/7/9) on the data
    /// address of the profiled load `site`, recording into profile slot
    /// `slot`. `addr + offset` must recompute the load's address.
    ProfileStride {
        site: InstrId,
        addr: Operand,
        offset: i64,
        slot: u32,
    },
    /// Superinstruction: `bin_dst = lhs <op> rhs; load_dst = mem[bin_dst +
    /// offset]` — an address computation immediately feeding a load, fused
    /// by [`crate::fuse_module`]. Execution-only: the VM's decode step
    /// creates these from adjacent `Bin`+`Load` pairs; they are never
    /// serialized, parsed, or produced by instrumentation.
    ///
    /// `site` is the original `Load`'s [`InstrId`], preserved so dynamic
    /// per-site load counts attribute to the unfused program.
    FusedBinLoad {
        bin_dst: Reg,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
        load_dst: Reg,
        offset: i64,
        site: InstrId,
    },
    /// Superinstruction: `a_dst = a_lhs <a_op> a_rhs; b_dst = b_lhs <b_op>
    /// b_rhs` — two adjacent arithmetic operations (the hottest dynamic
    /// digram of the dispatch profile), fused by [`crate::fuse_module`].
    /// Execution-only, like [`Op::FusedBinLoad`]; the second half executes
    /// after the first, so `b_lhs`/`b_rhs` may read `a_dst`.
    ///
    /// `b_id` is the consumed second `Bin`'s [`InstrId`], owned by the
    /// superinstruction (checked by the verifier like `FusedBinLoad::site`).
    FusedBinBin {
        a_dst: Reg,
        a_op: BinOp,
        a_lhs: Operand,
        a_rhs: Operand,
        b_dst: Reg,
        b_op: BinOp,
        b_lhs: Operand,
        b_rhs: Operand,
        b_id: InstrId,
    },
}

impl Op {
    /// Returns the register this operation writes, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Op::Const { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Select { dst, .. }
            | Op::Load { dst, .. }
            | Op::Alloc { dst, .. }
            | Op::GlobalAddr { dst, .. }
            | Op::TripCountCheck { dst, .. } => Some(*dst),
            // The second half's destination: the first half's is also
            // written, which [`crate::verify_function`] checks separately.
            Op::FusedBinLoad { load_dst, .. } => Some(*load_dst),
            Op::FusedBinBin { b_dst, .. } => Some(*b_dst),
            Op::Call { dst, .. } => *dst,
            Op::Store { .. }
            | Op::Prefetch { .. }
            | Op::Free { .. }
            | Op::ProfileEdge { .. }
            | Op::ProfileStride { .. } => None,
        }
    }

    /// Visits every operand this operation reads.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Op::Const { .. }
            | Op::GlobalAddr { .. }
            | Op::ProfileEdge { .. }
            | Op::TripCountCheck { .. } => {}
            Op::Mov { src, .. } => f(*src),
            Op::Bin { lhs, rhs, .. }
            | Op::Cmp { lhs, rhs, .. }
            | Op::FusedBinLoad { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Op::FusedBinBin {
                a_lhs,
                a_rhs,
                b_lhs,
                b_rhs,
                ..
            } => {
                f(*a_lhs);
                f(*a_rhs);
                f(*b_lhs);
                f(*b_rhs);
            }
            Op::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(*cond);
                f(*on_true);
                f(*on_false);
            }
            Op::Load { addr, .. } | Op::Prefetch { addr, .. } => f(*addr),
            Op::Store { value, addr, .. } => {
                f(*value);
                f(*addr);
            }
            Op::Alloc { size, .. } => f(*size),
            Op::Free { addr } => f(*addr),
            Op::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Op::ProfileStride { addr, .. } => f(*addr),
        }
    }

    /// True if this is one of the profiling pseudo-instructions inserted by
    /// instrumentation.
    pub fn is_profiling(&self) -> bool {
        matches!(
            self,
            Op::ProfileEdge { .. } | Op::TripCountCheck { .. } | Op::ProfileStride { .. }
        )
    }
}

/// A single (optionally predicated) instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// Function-unique, allocation-order id; stable across transformations.
    pub id: InstrId,
    /// Itanium-style qualifying predicate: the instruction executes only if
    /// the register holds a non-zero value. `None` executes unconditionally.
    pub pred: Option<Reg>,
    /// The operation.
    pub op: Op,
}

impl Instr {
    /// Returns the register this instruction writes when it executes.
    pub fn def(&self) -> Option<Reg> {
        self.op.def()
    }
}

/// Block terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Br { target: BlockId },
    /// Two-way branch on `cond != 0`. The verifier rejects
    /// `then_ == else_` (use [`Terminator::Br`] instead) so that CFG edges
    /// are uniquely identified by their endpoints.
    CondBr {
        cond: Operand,
        then_: BlockId,
        else_: BlockId,
    },
    /// Return from the function with an optional value.
    Ret { value: Option<Operand> },
    /// Superinstruction: `dst = (lhs <op> rhs) ? 1 : 0`, then branch on the
    /// result — a compare feeding a conditional branch, fused by
    /// [`crate::fuse_module`] from a block-final `Cmp` and its `CondBr`.
    /// Execution-only, like [`Op::FusedBinLoad`]. `dst` is still written so
    /// later reads of the predicate register observe the compare result.
    /// `id` is the original `Cmp`'s [`InstrId`].
    FusedCmpBr {
        id: InstrId,
        dst: Reg,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
        then_: BlockId,
        else_: BlockId,
    },
}

impl Terminator {
    /// Successor blocks in deterministic order.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let pair: [Option<BlockId>; 2] = match self {
            Terminator::Br { target } => [Some(*target), None],
            Terminator::CondBr { then_, else_, .. }
            | Terminator::FusedCmpBr { then_, else_, .. } => [Some(*then_), Some(*else_)],
            Terminator::Ret { .. } => [None, None],
        };
        pair.into_iter().flatten()
    }

    /// Rewrites successor targets through `f` (used by edge splitting).
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br { target } => *target = f(*target),
            Terminator::CondBr { then_, else_, .. }
            | Terminator::FusedCmpBr { then_, else_, .. } => {
                *then_ = f(*then_);
                *else_ = f(*else_);
            }
            Terminator::Ret { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 5), 20);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Rem.eval(7, 2), 1);
        assert_eq!(BinOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Shl.eval(1, 4), 16);
        assert_eq!(BinOp::Shr.eval(-16, 2), -4);
        assert_eq!(BinOp::Lshr.eval(-1, 60), 15);
    }

    #[test]
    fn binop_division_by_zero_is_total() {
        assert_eq!(BinOp::Div.eval(5, 0), 0);
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
    }

    #[test]
    fn binop_wrapping_does_not_panic() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN); // wrapping_div
    }

    #[test]
    fn shift_amount_is_masked() {
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
        assert_eq!(BinOp::Shl.eval(1, 65), 2);
    }

    #[test]
    fn cmp_eval() {
        assert_eq!(CmpOp::Eq.eval(3, 3), 1);
        assert_eq!(CmpOp::Ne.eval(3, 3), 0);
        assert_eq!(CmpOp::Lt.eval(-1, 0), 1);
        assert_eq!(CmpOp::Le.eval(0, 0), 1);
        assert_eq!(CmpOp::Gt.eval(1, 0), 1);
        assert_eq!(CmpOp::Ge.eval(-1, 0), 0);
    }

    #[test]
    fn op_def_and_uses() {
        let op = Op::Bin {
            dst: Reg::new(3),
            op: BinOp::Add,
            lhs: Operand::Reg(Reg::new(1)),
            rhs: Operand::Imm(8),
        };
        assert_eq!(op.def(), Some(Reg::new(3)));
        let mut uses = Vec::new();
        op.for_each_use(|o| uses.push(o));
        assert_eq!(uses, vec![Operand::Reg(Reg::new(1)), Operand::Imm(8)]);
    }

    #[test]
    fn store_has_no_def() {
        let op = Op::Store {
            value: Operand::Imm(1),
            addr: Operand::Reg(Reg::new(0)),
            offset: 8,
        };
        assert_eq!(op.def(), None);
    }

    #[test]
    fn profiling_ops_are_marked() {
        assert!(Op::ProfileEdge {
            edge: EdgeId::new(0)
        }
        .is_profiling());
        assert!(!Op::Const {
            dst: Reg::new(0),
            value: 0
        }
        .is_profiling());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Operand::Imm(1),
            then_: BlockId::new(1),
            else_: BlockId::new(2),
        };
        let succs: Vec<_> = t.successors().collect();
        assert_eq!(succs, vec![BlockId::new(1), BlockId::new(2)]);
        let r = Terminator::Ret { value: None };
        assert_eq!(r.successors().count(), 0);
    }

    #[test]
    fn map_targets_rewrites() {
        let mut t = Terminator::Br {
            target: BlockId::new(1),
        };
        t.map_targets(|_| BlockId::new(9));
        assert_eq!(t.successors().next(), Some(BlockId::new(9)));
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg::new(2).into();
        assert_eq!(o.as_reg(), Some(Reg::new(2)));
        assert_eq!(o.as_imm(), None);
        let o: Operand = 5i64.into();
        assert_eq!(o.as_imm(), Some(5));
    }
}
