//! Control-flow graph: successor/predecessor maps and edge enumeration.

use crate::function::Function;
use crate::types::{BlockId, EdgeId};
use std::collections::HashMap;

/// The control-flow graph of one function.
///
/// Edge ids are assigned deterministically — blocks in id order, successors
/// in terminator order — so that a profile collected from an instrumented
/// copy of a module can be keyed by the edge ids of the *original* module.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    edges: Vec<(BlockId, BlockId)>,
    edge_index: HashMap<(BlockId, BlockId), EdgeId>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut edges = Vec::new();
        let mut edge_index = HashMap::new();
        for block in &func.blocks {
            for succ in block.term.successors() {
                let id = EdgeId::new(edges.len() as u32);
                edges.push((block.id, succ));
                edge_index.insert((block.id, succ), id);
                succs[block.id.index()].push(succ);
                preds[succ.index()].push(block.id);
            }
        }
        Cfg {
            succs,
            preds,
            edges,
            edge_index,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Successors of `b` in terminator order.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b` (in discovery order).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// All edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[(BlockId, BlockId)] {
        &self.edges
    }

    /// The id of edge `(from, to)`, if present.
    pub fn edge_id(&self, from: BlockId, to: BlockId) -> Option<EdgeId> {
        self.edge_index.get(&(from, to)).copied()
    }

    /// The endpoints of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge(&self, edge: EdgeId) -> (BlockId, BlockId) {
        self.edges[edge.index()]
    }

    /// Blocks reachable from `entry` in reverse postorder.
    pub fn reverse_postorder(&self, entry: BlockId) -> Vec<BlockId> {
        let n = self.num_blocks();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut postorder = Vec::with_capacity(n);
        // Iterative DFS with an explicit successor cursor.
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        state[entry.index()] = 1;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            let succs = self.succs(b);
            if *cursor < succs.len() {
                let next = succs[*cursor];
                *cursor += 1;
                if state[next.index()] == 0 {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[b.index()] = 2;
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    }

    /// True if `b` is reachable from `entry`.
    pub fn is_reachable(&self, entry: BlockId, b: BlockId) -> bool {
        self.reverse_postorder(entry).contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::CmpOp;

    /// Builds the diamond CFG: b0 -> {b1, b2} -> b3.
    fn diamond() -> (crate::Module, crate::types::FuncId) {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, b1, b2);
        fb.switch_to(b1);
        fb.br(b3);
        fb.switch_to(b2);
        fb.br(b3);
        fb.switch_to(b3);
        fb.ret(None);
        (mb.finish(), f)
    }

    #[test]
    fn diamond_edges() {
        let (m, f) = diamond();
        let cfg = Cfg::compute(m.function(f));
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.num_edges(), 4);
        assert_eq!(
            cfg.succs(BlockId::new(0)),
            &[BlockId::new(1), BlockId::new(2)]
        );
        assert_eq!(
            cfg.preds(BlockId::new(3)),
            &[BlockId::new(1), BlockId::new(2)]
        );
        // deterministic edge numbering: block order, successor order
        assert_eq!(cfg.edge(EdgeId::new(0)), (BlockId::new(0), BlockId::new(1)));
        assert_eq!(cfg.edge(EdgeId::new(1)), (BlockId::new(0), BlockId::new(2)));
        assert_eq!(
            cfg.edge_id(BlockId::new(1), BlockId::new(3)),
            Some(EdgeId::new(2))
        );
        assert_eq!(cfg.edge_id(BlockId::new(0), BlockId::new(3)), None);
    }

    #[test]
    fn rpo_starts_at_entry_and_orders_preds_first() {
        let (m, f) = diamond();
        let cfg = Cfg::compute(m.function(f));
        let rpo = cfg.reverse_postorder(BlockId::new(0));
        assert_eq!(rpo[0], BlockId::new(0));
        assert_eq!(rpo.len(), 4);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId::new(0)) < pos(BlockId::new(1)));
        assert!(pos(BlockId::new(1)) < pos(BlockId::new(3)));
        assert!(pos(BlockId::new(2)) < pos(BlockId::new(3)));
    }

    #[test]
    fn unreachable_blocks_are_not_in_rpo() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        let _dead = fb.new_block();
        fb.ret(None);
        let m = mb.finish();
        let cfg = Cfg::compute(m.function(f));
        let rpo = cfg.reverse_postorder(BlockId::new(0));
        assert_eq!(rpo, vec![BlockId::new(0)]);
        assert!(!cfg.is_reachable(BlockId::new(0), BlockId::new(1)));
    }

    #[test]
    fn self_loop_edge() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(body);
        fb.switch_to(body);
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, body, exit);
        fb.switch_to(exit);
        fb.ret(None);
        let m = mb.finish();
        let cfg = Cfg::compute(m.function(f));
        assert!(cfg.edge_id(BlockId::new(1), BlockId::new(1)).is_some());
        assert!(cfg.preds(BlockId::new(1)).contains(&BlockId::new(1)));
    }
}
