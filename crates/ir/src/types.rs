//! Identifier newtypes used throughout the IR.
//!
//! Every entity in a [`crate::Module`] is referred to by a small integer id.
//! Ids are allocated densely by the builders and are stable across the
//! instrumentation and prefetch-insertion passes: a pass may *append* new
//! blocks, registers or instructions, but never renumbers existing ones.
//! This stability is what lets a stride profile collected from an
//! instrumented module be applied back to the original module — a profiled
//! load is keyed by its [`InstrId`].

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index of this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`crate::Module`].
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a basic block within a [`crate::Function`].
    ///
    /// Block ids index directly into [`crate::Function::blocks`].
    BlockId,
    "b"
);
id_type!(
    /// Identifies a virtual register within a [`crate::Function`].
    ///
    /// Registers hold 64-bit signed integers. The first
    /// [`crate::Function::num_params`] registers hold the arguments on
    /// entry. Predicate values are ordinary registers holding 0 or 1,
    /// mirroring how Itanium predicate registers are modeled at the IR
    /// level.
    Reg,
    "r"
);
id_type!(
    /// Uniquely identifies an instruction within a [`crate::Function`].
    ///
    /// Instruction ids are allocation-order unique and survive
    /// instrumentation: they are how profile records name a load site.
    InstrId,
    "i"
);
id_type!(
    /// Identifies a CFG edge within a [`crate::Function`].
    ///
    /// Edge ids are assigned deterministically by [`crate::Cfg::compute`]:
    /// blocks in id order, successors in terminator order.
    EdgeId,
    "e"
);
id_type!(
    /// Identifies a global data region within a [`crate::Module`].
    GlobalId,
    "g"
);
id_type!(
    /// Identifies a natural loop within a [`crate::LoopForest`].
    LoopId,
    "loop"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(BlockId::new(3).to_string(), "b3");
        assert_eq!(Reg::new(0).to_string(), "r0");
        assert_eq!(FuncId::new(7).to_string(), "fn7");
        assert_eq!(InstrId::new(12).to_string(), "i12");
        assert_eq!(EdgeId::new(5).to_string(), "e5");
        assert_eq!(GlobalId::new(1).to_string(), "g1");
        assert_eq!(LoopId::new(2).to_string(), "loop2");
    }

    #[test]
    fn index_round_trips() {
        let id = InstrId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(InstrId::from(42u32), id);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(BlockId::new(1) < BlockId::new(2));
        let set: HashSet<Reg> = [Reg::new(1), Reg::new(1), Reg::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(BlockId::default(), BlockId::new(0));
    }
}
