//! CFG surgery used by the instrumentation and prefetch-insertion passes:
//! edge splitting, preheader creation, and instruction insertion at a site.

use crate::function::Function;
use crate::instr::{Instr, Op, Terminator};
use crate::types::{BlockId, InstrId, Reg};

/// Splits the edge `from -> to` by inserting a fresh block containing only
/// a branch to `to`, and returns the new block.
///
/// Used to give edge-frequency counters a home when neither endpoint can
/// host them (a critical edge).
///
/// # Panics
///
/// Panics if `from` has no edge to `to`.
pub fn split_edge(func: &mut Function, from: BlockId, to: BlockId) -> BlockId {
    let new = func.new_block();
    func.block_mut(new).term = Terminator::Br { target: to };
    let term = &mut func.block_mut(from).term;
    let mut found = false;
    term.map_targets(|t| {
        if t == to && !found {
            found = true;
            new
        } else {
            t
        }
    });
    assert!(found, "no edge {from} -> {to} to split");
    new
}

/// Ensures the loop headed at `header` has a preheader: a block outside the
/// loop whose only successor is the header, through which every
/// outside entry flows. Returns the preheader.
///
/// If there is exactly one outside predecessor and its only successor is
/// the header, it is reused; otherwise a fresh block is inserted and all
/// outside predecessors are rewired through it.
///
/// Callers must recompute CFG-derived analyses afterwards.
pub fn ensure_preheader(
    func: &mut Function,
    header: BlockId,
    outside_preds: &[BlockId],
) -> BlockId {
    if outside_preds.len() == 1 {
        let p = outside_preds[0];
        let succ_count = func.block(p).term.successors().count();
        if succ_count == 1 {
            return p;
        }
    }
    let pre = func.new_block();
    func.block_mut(pre).term = Terminator::Br { target: header };
    for &p in outside_preds {
        let term = &mut func.block_mut(p).term;
        term.map_targets(|t| if t == header { pre } else { t });
    }
    pre
}

/// Inserts instructions immediately before the instruction `site`,
/// allocating fresh ids; returns the ids of the inserted instructions.
///
/// If `site` is not found in `func` (e.g. a stale profile named an
/// instruction the module no longer has), nothing is inserted and an
/// empty id list is returned.
pub fn insert_before(
    func: &mut Function,
    site: InstrId,
    ops: Vec<(Option<Reg>, Op)>,
) -> Vec<InstrId> {
    let Some((block, idx)) = func.find_instr(site) else {
        return Vec::new();
    };
    let mut ids = Vec::with_capacity(ops.len());
    let new: Vec<Instr> = ops
        .into_iter()
        .map(|(pred, op)| {
            let id = func.new_instr_id();
            ids.push(id);
            Instr { id, pred, op }
        })
        .collect();
    let instrs = &mut func.block_mut(block).instrs;
    instrs.splice(idx..idx, new);
    ids
}

/// Inserts instructions at the front of `block`, allocating fresh ids.
pub fn insert_at_front(
    func: &mut Function,
    block: BlockId,
    ops: Vec<(Option<Reg>, Op)>,
) -> Vec<InstrId> {
    let mut ids = Vec::with_capacity(ops.len());
    let new: Vec<Instr> = ops
        .into_iter()
        .map(|(pred, op)| {
            let id = func.new_instr_id();
            ids.push(id);
            Instr { id, pred, op }
        })
        .collect();
    let instrs = &mut func.block_mut(block).instrs;
    instrs.splice(0..0, new);
    ids
}

/// Appends instructions at the end of `block` (before its terminator),
/// allocating fresh ids.
pub fn insert_at_end(
    func: &mut Function,
    block: BlockId,
    ops: Vec<(Option<Reg>, Op)>,
) -> Vec<InstrId> {
    let mut ids = Vec::with_capacity(ops.len());
    for (pred, op) in ops {
        let id = func.new_instr_id();
        ids.push(id);
        func.block_mut(block).instrs.push(Instr { id, pred, op });
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FuncAnalysis;
    use crate::builder::ModuleBuilder;
    use crate::cfg::Cfg;
    use crate::instr::{CmpOp, Operand};
    use crate::types::LoopId;

    #[test]
    fn split_edge_preserves_paths() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, b1, b2);
        fb.switch_to(b1);
        fb.ret(None);
        fb.switch_to(b2);
        fb.ret(None);
        let mut m = mb.finish();
        let func = m.function_mut(f);
        let new = split_edge(func, BlockId::new(0), BlockId::new(1));
        let cfg = Cfg::compute(func);
        assert_eq!(cfg.succs(BlockId::new(0)), &[new, BlockId::new(2)]);
        assert_eq!(cfg.succs(new), &[BlockId::new(1)]);
        assert_eq!(cfg.preds(BlockId::new(1)), &[new]);
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn split_missing_edge_panics() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        let mut m = mb.finish();
        split_edge(m.function_mut(f), BlockId::new(0), BlockId::new(0));
    }

    #[test]
    fn ensure_preheader_reuses_unique_pred() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        fb.counted_loop(fb.param(0), |fb, _| {
            let a = fb.const_(1);
            let _ = fb.load(a, 0);
        });
        fb.ret(None);
        let mut m = mb.finish();
        let func = m.function_mut(f);
        let analysis = FuncAnalysis::compute(func);
        let l = analysis.loops.get(LoopId::new(0));
        let header = l.header;
        let outside: Vec<BlockId> = analysis
            .cfg
            .preds(header)
            .iter()
            .copied()
            .filter(|p| !l.contains(*p))
            .collect();
        let nblocks = func.blocks.len();
        let pre = ensure_preheader(func, header, &outside);
        // entry block b0 has a single successor (the header): reused.
        assert_eq!(pre, BlockId::new(0));
        assert_eq!(func.blocks.len(), nblocks);
    }

    #[test]
    fn ensure_preheader_creates_block_for_multiple_entries() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let pre1 = fb.new_block();
        let pre2 = fb.new_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let c0 = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c0, pre1, pre2);
        fb.switch_to(pre1);
        fb.br(header);
        fb.switch_to(pre2);
        fb.br(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 5i64);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let mut m = mb.finish();
        let func = m.function_mut(f);
        let pre = ensure_preheader(func, header, &[pre1, pre2]);
        let cfg = Cfg::compute(func);
        assert_eq!(cfg.succs(pre1), &[pre]);
        assert_eq!(cfg.succs(pre2), &[pre]);
        assert_eq!(cfg.succs(pre), &[header]);
        // the back edge from the body still points at the header directly
        assert_eq!(cfg.succs(body), &[header]);
    }

    #[test]
    fn insert_before_places_and_allocates_ids() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let (_, load_id) = fb.load(fb.param(0), 0);
        fb.ret(None);
        let mut m = mb.finish();
        let func = m.function_mut(f);
        let before = func.next_instr;
        let ids = insert_before(
            func,
            load_id,
            vec![(
                None,
                Op::Prefetch {
                    addr: Operand::Reg(Reg::new(0)),
                    offset: 128,
                },
            )],
        );
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0], InstrId::new(before));
        let b0 = &func.blocks[0];
        assert!(matches!(b0.instrs[0].op, Op::Prefetch { .. }));
        assert_eq!(b0.instrs[1].id, load_id);
    }

    #[test]
    fn insert_front_and_end() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        let _ = fb.const_(7);
        fb.ret(None);
        let mut m = mb.finish();
        let func = m.function_mut(f);
        let r = func.new_reg();
        insert_at_front(
            func,
            BlockId::new(0),
            vec![(None, Op::Const { dst: r, value: 1 })],
        );
        insert_at_end(
            func,
            BlockId::new(0),
            vec![(None, Op::Const { dst: r, value: 2 })],
        );
        let b0 = &func.blocks[0];
        assert_eq!(b0.instrs.len(), 3);
        assert!(matches!(b0.instrs[0].op, Op::Const { value: 1, .. }));
        assert!(matches!(b0.instrs[2].op, Op::Const { value: 2, .. }));
    }
}
