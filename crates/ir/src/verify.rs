//! Structural IR validation.
//!
//! The verifier catches the mistakes builders and passes can realistically
//! make: dangling block targets, out-of-range registers, duplicate
//! instruction ids, malformed calls, and `CondBr` with identical targets
//! (which would make CFG edges ambiguous).

use crate::function::{Function, Module};
use crate::instr::{Op, Operand, Terminator};
use crate::types::{BlockId, FuncId, InstrId};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural defect found by [`verify_module`] or [`verify_function`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A terminator targets a block id outside the function.
    DanglingBlock {
        func: String,
        block: BlockId,
        target: BlockId,
    },
    /// An instruction reads or writes a register `>= num_regs`.
    RegOutOfRange {
        func: String,
        instr: InstrId,
        reg: u32,
    },
    /// Two instructions carry the same id.
    DuplicateInstrId { func: String, instr: InstrId },
    /// An instruction id is `>= next_instr`, so a fresh id could collide.
    InstrIdNotReserved { func: String, instr: InstrId },
    /// A `CondBr` has identical targets.
    CondBrSameTarget { func: String, block: BlockId },
    /// A call references a function id outside the module.
    UnknownCallee { func: String, callee: FuncId },
    /// A call passes the wrong number of arguments.
    BadArity {
        func: String,
        callee: FuncId,
        expected: u32,
        got: usize,
    },
    /// An instruction references a global id outside the module.
    UnknownGlobal { func: String, instr: InstrId },
    /// The module entry function id is out of range.
    BadEntry { entry: FuncId },
    /// The function entry block id is out of range.
    BadEntryBlock { func: String, entry: BlockId },
    /// A block's recorded id does not match its index.
    MisnumberedBlock { func: String, index: usize },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DanglingBlock {
                func,
                block,
                target,
            } => write!(f, "{func}: {block} branches to nonexistent {target}"),
            VerifyError::RegOutOfRange { func, instr, reg } => {
                write!(f, "{func}: {instr} uses out-of-range register r{reg}")
            }
            VerifyError::DuplicateInstrId { func, instr } => {
                write!(f, "{func}: duplicate instruction id {instr}")
            }
            VerifyError::InstrIdNotReserved { func, instr } => {
                write!(f, "{func}: instruction id {instr} >= next_instr")
            }
            VerifyError::CondBrSameTarget { func, block } => {
                write!(f, "{func}: {block} has a cond_br with identical targets")
            }
            VerifyError::UnknownCallee { func, callee } => {
                write!(f, "{func}: call to nonexistent {callee}")
            }
            VerifyError::BadArity {
                func,
                callee,
                expected,
                got,
            } => write!(
                f,
                "{func}: call to {callee} passes {got} args, expected {expected}"
            ),
            VerifyError::UnknownGlobal { func, instr } => {
                write!(f, "{func}: {instr} references nonexistent global")
            }
            VerifyError::BadEntry { entry } => write!(f, "module entry {entry} out of range"),
            VerifyError::BadEntryBlock { func, entry } => {
                write!(f, "{func}: entry block {entry} out of range")
            }
            VerifyError::MisnumberedBlock { func, index } => {
                write!(f, "{func}: block at index {index} has mismatched id")
            }
        }
    }
}

impl Error for VerifyError {}

/// Verifies one function against `module` (for call/global references).
pub fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let name = &func.name;
    let nblocks = func.blocks.len();
    if func.entry.index() >= nblocks {
        return Err(VerifyError::BadEntryBlock {
            func: name.clone(),
            entry: func.entry,
        });
    }
    let mut seen_ids: HashSet<InstrId> = HashSet::new();
    for (index, block) in func.blocks.iter().enumerate() {
        if block.id.index() != index {
            return Err(VerifyError::MisnumberedBlock {
                func: name.clone(),
                index,
            });
        }
        for instr in &block.instrs {
            if !seen_ids.insert(instr.id) {
                return Err(VerifyError::DuplicateInstrId {
                    func: name.clone(),
                    instr: instr.id,
                });
            }
            if instr.id.0 >= func.next_instr {
                return Err(VerifyError::InstrIdNotReserved {
                    func: name.clone(),
                    instr: instr.id,
                });
            }
            let mut bad_reg: Option<u32> = None;
            let mut check = |r: u32| {
                if r >= func.num_regs && bad_reg.is_none() {
                    bad_reg = Some(r);
                }
            };
            if let Some(p) = instr.pred {
                check(p.0);
            }
            if let Some(d) = instr.def() {
                check(d.0);
            }
            instr.op.for_each_use(|o| {
                if let Operand::Reg(r) = o {
                    check(r.0);
                }
            });
            if let Some(reg) = bad_reg {
                return Err(VerifyError::RegOutOfRange {
                    func: name.clone(),
                    instr: instr.id,
                    reg,
                });
            }
            match &instr.op {
                Op::Call { callee, args, .. } => {
                    let Some(cf) = module.functions.get(callee.index()) else {
                        return Err(VerifyError::UnknownCallee {
                            func: name.clone(),
                            callee: *callee,
                        });
                    };
                    if args.len() != cf.num_params as usize {
                        return Err(VerifyError::BadArity {
                            func: name.clone(),
                            callee: *callee,
                            expected: cf.num_params,
                            got: args.len(),
                        });
                    }
                }
                Op::GlobalAddr { global, .. } if global.index() >= module.globals.len() => {
                    return Err(VerifyError::UnknownGlobal {
                        func: name.clone(),
                        instr: instr.id,
                    });
                }
                // A superinstruction owns its consumed half's id: `site`
                // is the fused-away Load's id, so it must be reserved and
                // must not collide with any live instruction.
                Op::FusedBinLoad { bin_dst, site, .. } => {
                    if bin_dst.0 >= func.num_regs {
                        return Err(VerifyError::RegOutOfRange {
                            func: name.clone(),
                            instr: instr.id,
                            reg: bin_dst.0,
                        });
                    }
                    if !seen_ids.insert(*site) {
                        return Err(VerifyError::DuplicateInstrId {
                            func: name.clone(),
                            instr: *site,
                        });
                    }
                    if site.0 >= func.next_instr {
                        return Err(VerifyError::InstrIdNotReserved {
                            func: name.clone(),
                            instr: *site,
                        });
                    }
                }
                Op::FusedBinBin { a_dst, b_id, .. } => {
                    // `b_dst` is the instruction's def, checked above;
                    // the first half's destination is checked here.
                    if a_dst.0 >= func.num_regs {
                        return Err(VerifyError::RegOutOfRange {
                            func: name.clone(),
                            instr: instr.id,
                            reg: a_dst.0,
                        });
                    }
                    if !seen_ids.insert(*b_id) {
                        return Err(VerifyError::DuplicateInstrId {
                            func: name.clone(),
                            instr: *b_id,
                        });
                    }
                    if b_id.0 >= func.next_instr {
                        return Err(VerifyError::InstrIdNotReserved {
                            func: name.clone(),
                            instr: *b_id,
                        });
                    }
                }
                _ => {}
            }
        }
        match &block.term {
            Terminator::CondBr { then_, else_, .. }
            | Terminator::FusedCmpBr { then_, else_, .. }
                if then_ == else_ =>
            {
                return Err(VerifyError::CondBrSameTarget {
                    func: name.clone(),
                    block: block.id,
                });
            }
            term => {
                for t in term.successors() {
                    if t.index() >= nblocks {
                        return Err(VerifyError::DanglingBlock {
                            func: name.clone(),
                            block: block.id,
                            target: t,
                        });
                    }
                }
                if let Terminator::CondBr {
                    cond: Operand::Reg(r),
                    ..
                } = term
                {
                    if r.0 >= func.num_regs {
                        return Err(VerifyError::RegOutOfRange {
                            func: name.clone(),
                            instr: InstrId::new(u32::MAX),
                            reg: r.0,
                        });
                    }
                }
                // The fused compare-branch owns the consumed Cmp's id and
                // register operands; check both like a live instruction.
                if let Terminator::FusedCmpBr {
                    id, dst, lhs, rhs, ..
                } = term
                {
                    let mut bad_reg: Option<u32> = None;
                    let mut check = |r: u32| {
                        if r >= func.num_regs && bad_reg.is_none() {
                            bad_reg = Some(r);
                        }
                    };
                    check(dst.0);
                    for o in [lhs, rhs] {
                        if let Operand::Reg(r) = o {
                            check(r.0);
                        }
                    }
                    if let Some(reg) = bad_reg {
                        return Err(VerifyError::RegOutOfRange {
                            func: name.clone(),
                            instr: *id,
                            reg,
                        });
                    }
                    if !seen_ids.insert(*id) {
                        return Err(VerifyError::DuplicateInstrId {
                            func: name.clone(),
                            instr: *id,
                        });
                    }
                    if id.0 >= func.next_instr {
                        return Err(VerifyError::InstrIdNotReserved {
                            func: name.clone(),
                            instr: *id,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verifies every function of `module` plus the module entry point.
///
/// # Errors
///
/// Returns the first defect found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    if module.entry.index() >= module.functions.len() {
        return Err(VerifyError::BadEntry {
            entry: module.entry,
        });
    }
    for func in &module.functions {
        verify_function(module, func)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Instr;
    use crate::types::Reg;

    fn valid_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let callee = mb.declare_function("callee", 1);
        {
            let mut fb = mb.function(callee);
            let p = fb.param(0);
            fb.ret(Some(Operand::Reg(p)));
        }
        let main = mb.declare_function("main", 0);
        {
            let mut fb = mb.function(main);
            let x = fb.const_(3);
            let y = fb.call(callee, &[Operand::Reg(x)]);
            fb.ret(Some(Operand::Reg(y)));
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn valid_module_verifies() {
        assert_eq!(verify_module(&valid_module()), Ok(()));
    }

    #[test]
    fn detects_dangling_block() {
        let mut m = valid_module();
        m.functions[1].blocks[0].term = Terminator::Br {
            target: BlockId::new(99),
        };
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::DanglingBlock { .. })
        ));
    }

    #[test]
    fn detects_reg_out_of_range() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        f.blocks[0].instrs.push(Instr {
            id,
            pred: None,
            op: Op::Mov {
                dst: Reg::new(500),
                src: Operand::Imm(0),
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::RegOutOfRange { reg: 500, .. })
        ));
    }

    #[test]
    fn detects_duplicate_instr_id() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let existing = f.blocks[0].instrs[0].clone();
        f.blocks[0].instrs.push(existing);
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::DuplicateInstrId { .. })
        ));
    }

    #[test]
    fn detects_unreserved_instr_id() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        f.blocks[0].instrs.push(Instr {
            id: InstrId::new(1000),
            pred: None,
            op: Op::Const {
                dst: Reg::new(0),
                value: 0,
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::InstrIdNotReserved { .. })
        ));
    }

    #[test]
    fn detects_bad_arity() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        f.blocks[0].instrs.push(Instr {
            id,
            pred: None,
            op: Op::Call {
                dst: None,
                callee: FuncId::new(0),
                args: vec![],
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadArity { expected: 1, .. })
        ));
    }

    #[test]
    fn detects_unknown_callee_and_global() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        f.blocks[0].instrs.push(Instr {
            id,
            pred: None,
            op: Op::Call {
                dst: None,
                callee: FuncId::new(42),
                args: vec![],
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::UnknownCallee { .. })
        ));

        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        let r = f.new_reg();
        f.blocks[0].instrs.push(Instr {
            id,
            pred: None,
            op: Op::GlobalAddr {
                dst: r,
                global: crate::types::GlobalId::new(7),
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::UnknownGlobal { .. })
        ));
    }

    #[test]
    fn detects_bad_entry() {
        let mut m = valid_module();
        m.entry = FuncId::new(9);
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadEntry { .. })
        ));
    }

    #[test]
    fn rejects_fused_bin_load_with_bad_bin_dst() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        let site = f.new_instr_id();
        let load_dst = f.new_reg();
        f.blocks[0].instrs.push(Instr {
            id,
            pred: None,
            op: Op::FusedBinLoad {
                bin_dst: Reg::new(700),
                op: crate::instr::BinOp::Add,
                lhs: Operand::Imm(0),
                rhs: Operand::Imm(8),
                load_dst,
                offset: 0,
                site,
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::RegOutOfRange { reg: 700, .. })
        ));
    }

    #[test]
    fn rejects_fused_bin_load_with_unreserved_site() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        let bin_dst = f.new_reg();
        let load_dst = f.new_reg();
        f.blocks[0].instrs.push(Instr {
            id,
            pred: None,
            op: Op::FusedBinLoad {
                bin_dst,
                op: crate::instr::BinOp::Add,
                lhs: Operand::Imm(0),
                rhs: Operand::Imm(8),
                load_dst,
                offset: 0,
                site: InstrId::new(5000),
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::InstrIdNotReserved { .. })
        ));
    }

    #[test]
    fn rejects_fused_bin_load_site_colliding_with_live_instr() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let live = f.blocks[0].instrs[0].id;
        let id = f.new_instr_id();
        let bin_dst = f.new_reg();
        let load_dst = f.new_reg();
        f.blocks[0].instrs.push(Instr {
            id,
            pred: None,
            op: Op::FusedBinLoad {
                bin_dst,
                op: crate::instr::BinOp::Add,
                lhs: Operand::Imm(0),
                rhs: Operand::Imm(8),
                load_dst,
                offset: 0,
                site: live,
            },
        });
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::DuplicateInstrId { .. })
        ));
    }

    #[test]
    fn rejects_fused_cmp_br_with_same_targets() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        let dst = f.new_reg();
        f.blocks[0].term = Terminator::FusedCmpBr {
            id,
            dst,
            op: crate::instr::CmpOp::Eq,
            lhs: Operand::Imm(0),
            rhs: Operand::Imm(0),
            then_: BlockId::new(0),
            else_: BlockId::new(0),
        };
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::CondBrSameTarget { .. })
        ));
    }

    #[test]
    fn rejects_fused_cmp_br_with_bad_reg() {
        let mut m = valid_module();
        let f = &mut m.functions[1];
        let id = f.new_instr_id();
        // Targets must differ, or the same-target check fires first.
        let b1 = {
            let nb = f.blocks.len() as u32;
            f.blocks.push(crate::function::Block {
                id: BlockId::new(nb),
                instrs: vec![],
                term: Terminator::Ret { value: None },
            });
            BlockId::new(nb)
        };
        f.blocks[0].term = Terminator::FusedCmpBr {
            id,
            dst: Reg::new(900),
            op: crate::instr::CmpOp::Eq,
            lhs: Operand::Imm(0),
            rhs: Operand::Imm(0),
            then_: BlockId::new(0),
            else_: b1,
        };
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::RegOutOfRange { reg: 900, .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::BadArity {
            func: "main".into(),
            callee: FuncId::new(0),
            expected: 1,
            got: 0,
        };
        let s = e.to_string();
        assert!(s.contains("main") && s.contains("fn0"));
    }
}
