//! Textual IR printer for debugging and golden tests.

use crate::function::{Function, Module};
use crate::instr::{Instr, Op, Terminator};
use std::fmt::Write as _;

/// Renders one instruction as a line of text (without indentation).
pub fn instr_to_string(instr: &Instr) -> String {
    let mut s = String::new();
    if let Some(p) = instr.pred {
        let _ = write!(s, "({p}) ? ");
    }
    match &instr.op {
        Op::Const { dst, value } => {
            let _ = write!(s, "{dst} = const {value}");
        }
        Op::Mov { dst, src } => {
            let _ = write!(s, "{dst} = mov {src}");
        }
        Op::Bin { dst, op, lhs, rhs } => {
            let _ = write!(s, "{dst} = {op} {lhs}, {rhs}");
        }
        Op::Cmp { dst, op, lhs, rhs } => {
            let _ = write!(s, "{dst} = cmp.{op} {lhs}, {rhs}");
        }
        Op::Select {
            dst,
            cond,
            on_true,
            on_false,
        } => {
            let _ = write!(s, "{dst} = select {cond}, {on_true}, {on_false}");
        }
        Op::Load { dst, addr, offset } => {
            let _ = write!(s, "{dst} = load [{addr} + {offset}]");
        }
        Op::Store {
            value,
            addr,
            offset,
        } => {
            let _ = write!(s, "store {value}, [{addr} + {offset}]");
        }
        Op::Prefetch { addr, offset } => {
            let _ = write!(s, "prefetch [{addr} + {offset}]");
        }
        Op::Alloc { dst, size } => {
            let _ = write!(s, "{dst} = alloc {size}");
        }
        Op::Free { addr } => {
            let _ = write!(s, "free {addr}");
        }
        Op::GlobalAddr { dst, global } => {
            let _ = write!(s, "{dst} = globaladdr {global}");
        }
        Op::Call { dst, callee, args } => {
            if let Some(d) = dst {
                let _ = write!(s, "{d} = ");
            }
            let _ = write!(s, "call {callee}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    let _ = write!(s, ", ");
                }
                let _ = write!(s, "{a}");
            }
            let _ = write!(s, ")");
        }
        Op::ProfileEdge { edge } => {
            let _ = write!(s, "profile_edge {edge}");
        }
        Op::TripCountCheck {
            dst,
            header,
            incoming,
            outgoing,
            shift,
        } => {
            let fmt_edges = |edges: &[crate::types::EdgeId]| {
                edges
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = write!(
                s,
                "{dst} = trip_check header={header} in=[{}] out=[{}] shift={shift}",
                fmt_edges(incoming),
                fmt_edges(outgoing)
            );
        }
        Op::ProfileStride {
            site,
            addr,
            offset,
            slot,
        } => {
            let _ = write!(s, "stride_prof site={site} [{addr} + {offset}] slot={slot}");
        }
        // Execution-only superinstruction: printed for debugging, never
        // parsed back (the parser round-trips unfused modules only).
        Op::FusedBinLoad {
            bin_dst,
            op,
            lhs,
            rhs,
            load_dst,
            offset,
            site,
        } => {
            let _ = write!(
                s,
                "{bin_dst} = {op} {lhs}, {rhs} ; {load_dst} = load [{bin_dst} + {offset}] site={site}"
            );
        }
        Op::FusedBinBin {
            a_dst,
            a_op,
            a_lhs,
            a_rhs,
            b_dst,
            b_op,
            b_lhs,
            b_rhs,
            b_id,
        } => {
            let _ = write!(
                s,
                "{a_dst} = {a_op} {a_lhs}, {a_rhs} ; {b_dst} = {b_op} {b_lhs}, {b_rhs} ({b_id})"
            );
        }
    }
    let _ = write!(s, "    ; {}", instr.id);
    s
}

/// Renders a terminator as a line of text.
pub fn term_to_string(term: &Terminator) -> String {
    match term {
        Terminator::Br { target } => format!("br {target}"),
        Terminator::CondBr { cond, then_, else_ } => {
            format!("condbr {cond}, {then_}, {else_}")
        }
        Terminator::Ret { value: Some(v) } => format!("ret {v}"),
        Terminator::Ret { value: None } => "ret".to_string(),
        // Execution-only superinstruction (see `Op::FusedBinLoad`).
        Terminator::FusedCmpBr {
            dst,
            op,
            lhs,
            rhs,
            then_,
            else_,
            ..
        } => {
            format!("{dst} = cmp.{op} {lhs}, {rhs} ; condbr {dst}, {then_}, {else_}")
        }
    }
}

/// Renders a whole function.
pub fn function_to_string(func: &Function) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "func {} {}(params={}, regs={}) entry={} {{",
        func.id, func.name, func.num_params, func.num_regs, func.entry
    );
    for block in &func.blocks {
        let _ = writeln!(s, "{}:", block.id);
        for instr in &block.instrs {
            let _ = writeln!(s, "    {}", instr_to_string(instr));
        }
        let _ = writeln!(s, "    {}", term_to_string(&block.term));
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders a whole module.
pub fn module_to_string(module: &Module) -> String {
    let mut s = String::new();
    for g in &module.globals {
        let _ = writeln!(s, "global {} {} size={}", g.id, g.name, g.size);
    }
    let _ = writeln!(s, "entry {}", module.entry);
    for f in &module.functions {
        s.push_str(&function_to_string(f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Operand;

    #[test]
    fn prints_a_small_module() {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("table", 256);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let (v, _) = fb.load(base, 8);
        fb.prefetch(base, 72);
        fb.ret(Some(Operand::Reg(v)));
        mb.set_entry(f);
        let m = mb.finish();
        let text = module_to_string(&m);
        assert!(text.contains("global g0 table size=256"));
        assert!(text.contains("entry fn0"));
        assert!(text.contains("= load [r0 + 8]"));
        assert!(text.contains("prefetch [r0 + 72]"));
        assert!(text.contains("ret r1"));
    }

    #[test]
    fn prints_predicated_instruction() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let p = fb.const_(1);
        fb.emit_pred(
            p,
            crate::instr::Op::Prefetch {
                addr: Operand::Reg(p),
                offset: 0,
            },
        );
        let m = mb.finish();
        let text = function_to_string(m.function(f));
        assert!(text.contains("(r0) ? prefetch"));
    }

    #[test]
    fn prints_terminators() {
        assert_eq!(term_to_string(&Terminator::Ret { value: None }), "ret");
        assert_eq!(
            term_to_string(&Terminator::Br {
                target: crate::types::BlockId::new(2)
            }),
            "br b2"
        );
    }
}
