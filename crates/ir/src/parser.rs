//! Parser for the textual IR emitted by [`crate::pretty`], enabling
//! round-trips (`module -> text -> module`), golden tests, and
//! hand-written test programs.
//!
//! The grammar is exactly the printer's output; see
//! [`module_from_string`].

use crate::function::{Block, Function, Global, Module};
use crate::instr::{BinOp, CmpOp, Instr, Op, Operand, Terminator};
use crate::types::{BlockId, EdgeId, FuncId, GlobalId, InstrId, Reg};
use std::error::Error;
use std::fmt;

/// A parse failure with its 1-based line and column numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// Column the error occurred at (1-based; 1 when the offending token
    /// could not be located within the line).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

impl ParseError {
    /// Fills in `col` by locating a backtick-quoted fragment of the
    /// message within the offending source line.
    ///
    /// Messages quote the offending source text *last* ("expected `X` in
    /// `Y`" quotes the expectation first and the culprit second), so
    /// fragments are tried right to left; within the line a match on a
    /// token boundary wins over a bare substring match, so a fragment
    /// that merely prefixes an earlier, innocent token (`rr` inside
    /// `r1 = add r1, rr`) still points at the real culprit.
    fn locate_in(mut self, source: &str) -> Self {
        let Some(line_text) = source.lines().nth(self.line.saturating_sub(1)) else {
            return self;
        };
        let fragments: Vec<&str> = self
            .message
            .split('`')
            .skip(1)
            .step_by(2)
            .map(str::trim)
            .filter(|f| !f.is_empty())
            .collect();
        for f in fragments.iter().rev() {
            if let Some(pos) = find_token(line_text, f) {
                self.col = pos + 1;
                return self;
            }
        }
        for f in fragments.iter().rev() {
            if let Some(pos) = line_text.find(f) {
                self.col = pos + 1;
                return self;
            }
        }
        self
    }

    /// Renders the error with the offending source line and a caret, e.g.
    ///
    /// ```text
    /// line 4, col 10: unknown operation `blorp`
    ///     4 |     r0 = blorp 5    ; i0
    ///       |          ^
    /// ```
    ///
    /// `source` must be the text the module was parsed from; if the line
    /// cannot be found, only the message itself is rendered.
    pub fn render(&self, source: &str) -> String {
        let mut out = self.to_string();
        if let Some(line_text) = source.lines().nth(self.line.saturating_sub(1)) {
            let gutter = format!("{:>5}", self.line);
            out.push_str(&format!("\n{gutter} | {line_text}"));
            let pad: String = line_text
                .chars()
                .take(self.col.saturating_sub(1))
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            out.push_str(&format!("\n      | {pad}^"));
        }
        out
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// First occurrence of `frag` in `line` that sits on a token boundary
/// (only enforced on the ends of `frag` that are themselves ident-like,
/// so punctuation-delimited fragments like `size=` still match).
fn find_token(line: &str, frag: &str) -> Option<usize> {
    let first_is_ident = frag.chars().next().is_some_and(is_ident_char);
    let last_is_ident = frag.chars().next_back().is_some_and(is_ident_char);
    line.match_indices(frag).find_map(|(pos, m)| {
        let before_ok = !first_is_ident
            || line[..pos]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident_char(c));
        let after_ok = !last_is_ident
            || line[pos + m.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident_char(c));
        (before_ok && after_ok).then_some(pos)
    })
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        col: 1,
        message: message.into(),
    })
}

/// Strips a prefix or errors.
fn expect<'a>(s: &'a str, prefix: &str, line: usize) -> Result<&'a str, ParseError> {
    s.strip_prefix(prefix).ok_or_else(|| ParseError {
        line,
        col: 1,
        message: format!("expected `{prefix}` in `{s}`"),
    })
}

fn parse_u32(s: &str, what: &str, line: usize) -> Result<u32, ParseError> {
    s.trim().parse().map_err(|_| ParseError {
        line,
        col: 1,
        message: format!("bad {what}: `{s}`"),
    })
}

fn parse_i64(s: &str, what: &str, line: usize) -> Result<i64, ParseError> {
    s.trim().parse().map_err(|_| ParseError {
        line,
        col: 1,
        message: format!("bad {what}: `{s}`"),
    })
}

/// Parses a `<prefix><number>` token (`r3`, `b0`, `e12`, ...), quoting
/// the *whole* token on failure so the column locator can find it: an
/// error about the stripped remainder (`bad register: `1``) would point
/// at the wrong spot whenever the digits also occur earlier in the line.
fn parse_prefixed_id(s: &str, prefix: &str, what: &str, line: usize) -> Result<u32, ParseError> {
    let t = s.trim();
    t.strip_prefix(prefix)
        .and_then(|d| d.parse::<u32>().ok())
        .ok_or_else(|| ParseError {
            line,
            col: 1,
            message: format!("bad {what} `{t}` (expected `{prefix}N`)"),
        })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    Ok(Reg::new(parse_prefixed_id(s, "r", "register", line)?))
}

fn parse_block_id(s: &str, line: usize) -> Result<BlockId, ParseError> {
    Ok(BlockId::new(parse_prefixed_id(s, "b", "block id", line)?))
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, ParseError> {
    let t = s.trim();
    if t.starts_with('r') {
        Ok(Operand::Reg(parse_reg(t, line)?))
    } else {
        Ok(Operand::Imm(parse_i64(t, "immediate", line)?))
    }
}

/// Parses `[addr + offset]`, returning the base operand and offset.
fn parse_mem(s: &str, line: usize) -> Result<(Operand, i64), ParseError> {
    let t = s.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            col: 1,
            message: format!("expected `[base + offset]`, got `{t}`"),
        })?;
    let Some((base, off)) = inner.rsplit_once('+') else {
        return err(line, format!("expected `base + offset` in `{inner}`"));
    };
    Ok((
        parse_operand(base, line)?,
        parse_i64(off, "memory offset", line)?,
    ))
}

fn split2<'a>(s: &'a str, what: &str, line: usize) -> Result<(&'a str, &'a str), ParseError> {
    s.split_once(',').ok_or_else(|| ParseError {
        line,
        col: 1,
        message: format!("expected two comma-separated {what} in `{s}`"),
    })
}

fn bin_op_of(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "lshr" => BinOp::Lshr,
        _ => return None,
    })
}

fn cmp_op_of(name: &str) -> Option<CmpOp> {
    Some(match name {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn parse_edge_list(s: &str, line: usize) -> Result<Vec<EdgeId>, ParseError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            col: 1,
            message: format!("expected `[e..]`, got `{s}`"),
        })?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|e| Ok(EdgeId::new(parse_prefixed_id(e, "e", "edge id", line)?)))
        .collect()
}

/// Parses a destination-producing right-hand side: `const 5`, `mov r1`,
/// `add r1, 2`, `cmp.lt r1, r2`, `select c, a, b`, `load [r1 + 8]`,
/// `alloc 32`, `globaladdr g0`, `call fn1(a, b)`, `trip_check ...`.
fn parse_rhs(dst: Reg, rhs: &str, line: usize) -> Result<Op, ParseError> {
    let rhs = rhs.trim();
    let (head, rest) = rhs.split_once(' ').unwrap_or((rhs, ""));
    if let Some((op_name, cmp)) = head.split_once('.') {
        if op_name == "cmp" {
            let op = cmp_op_of(cmp).ok_or_else(|| ParseError {
                line,
                col: 1,
                message: format!("unknown compare `{cmp}`"),
            })?;
            let (l, r) = split2(rest, "operands", line)?;
            return Ok(Op::Cmp {
                dst,
                op,
                lhs: parse_operand(l, line)?,
                rhs: parse_operand(r, line)?,
            });
        }
    }
    if let Some(op) = bin_op_of(head) {
        let (l, r) = split2(rest, "operands", line)?;
        return Ok(Op::Bin {
            dst,
            op,
            lhs: parse_operand(l, line)?,
            rhs: parse_operand(r, line)?,
        });
    }
    match head {
        "const" => Ok(Op::Const {
            dst,
            value: parse_i64(rest, "constant", line)?,
        }),
        "mov" => Ok(Op::Mov {
            dst,
            src: parse_operand(rest, line)?,
        }),
        "select" => {
            let (c, rest2) = split2(rest, "operands", line)?;
            let (a, b) = split2(rest2, "operands", line)?;
            Ok(Op::Select {
                dst,
                cond: parse_operand(c, line)?,
                on_true: parse_operand(a, line)?,
                on_false: parse_operand(b, line)?,
            })
        }
        "load" => {
            let (addr, offset) = parse_mem(rest, line)?;
            Ok(Op::Load { dst, addr, offset })
        }
        "alloc" => Ok(Op::Alloc {
            dst,
            size: parse_operand(rest, line)?,
        }),
        "globaladdr" => Ok(Op::GlobalAddr {
            dst,
            global: GlobalId::new(parse_prefixed_id(rest, "g", "global id", line)?),
        }),
        "call" => parse_call(Some(dst), rest, line),
        "trip_check" => {
            let mut header = None;
            let mut incoming = None;
            let mut outgoing = None;
            let mut shift = None;
            for field in rest.split_whitespace() {
                if let Some(v) = field.strip_prefix("header=") {
                    header = Some(parse_block_id(v, line)?);
                } else if let Some(v) = field.strip_prefix("in=") {
                    incoming = Some(parse_edge_list(v, line)?);
                } else if let Some(v) = field.strip_prefix("out=") {
                    outgoing = Some(parse_edge_list(v, line)?);
                } else if let Some(v) = field.strip_prefix("shift=") {
                    shift = Some(parse_u32(v, "shift", line)?);
                } else {
                    return err(line, format!("unknown trip_check field `{field}`"));
                }
            }
            match (header, incoming, outgoing, shift) {
                (Some(header), Some(incoming), Some(outgoing), Some(shift)) => {
                    Ok(Op::TripCountCheck {
                        dst,
                        header,
                        incoming,
                        outgoing,
                        shift,
                    })
                }
                _ => err(line, "trip_check missing fields"),
            }
        }
        other => err(line, format!("unknown operation `{other}`")),
    }
}

fn parse_call(dst: Option<Reg>, rest: &str, line: usize) -> Result<Op, ParseError> {
    let rest = rest.trim();
    let open = rest.find('(').ok_or_else(|| ParseError {
        line,
        col: 1,
        message: format!("call missing `(` in `{rest}`"),
    })?;
    let callee = FuncId::new(parse_prefixed_id(&rest[..open], "fn", "function id", line)?);
    let args_s = rest[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| ParseError {
            line,
            col: 1,
            message: "call missing `)`".into(),
        })?;
    let args = if args_s.trim().is_empty() {
        Vec::new()
    } else {
        args_s
            .split(',')
            .map(|a| parse_operand(a, line))
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(Op::Call { dst, callee, args })
}

/// Parses one instruction line (without indentation), e.g.
/// `(r3) ? r4 = load [r2 + 8]    ; i7`.
pub fn instr_from_string(text: &str, line: usize) -> Result<Instr, ParseError> {
    instr_from_string_inner(text, line).map_err(|mut e| {
        // Locate the column within the single-line `text`, then restore the
        // caller-supplied line number.
        e.line = 1;
        let mut e = e.locate_in(text);
        e.line = line;
        e
    })
}

fn instr_from_string_inner(text: &str, line: usize) -> Result<Instr, ParseError> {
    let (body, id_part) = text.rsplit_once(';').ok_or_else(|| ParseError {
        line,
        col: 1,
        message: "missing `; iN` id annotation".into(),
    })?;
    let id = InstrId::new(parse_prefixed_id(id_part, "i", "instruction id", line)?);
    let mut body = body.trim();

    let mut pred = None;
    if body.starts_with('(') {
        let close = body.find(')').ok_or_else(|| ParseError {
            line,
            col: 1,
            message: "unterminated predicate".into(),
        })?;
        pred = Some(parse_reg(&body[1..close], line)?);
        body = expect(body[close + 1..].trim_start(), "?", line)?.trim_start();
    }

    // dst-less forms first
    if let Some(rest) = body.strip_prefix("store ") {
        let (value, mem) = split2(rest, "operands", line)?;
        let (addr, offset) = parse_mem(mem, line)?;
        return Ok(Instr {
            id,
            pred,
            op: Op::Store {
                value: parse_operand(value, line)?,
                addr,
                offset,
            },
        });
    }
    if let Some(rest) = body.strip_prefix("prefetch ") {
        let (addr, offset) = parse_mem(rest, line)?;
        return Ok(Instr {
            id,
            pred,
            op: Op::Prefetch { addr, offset },
        });
    }
    if let Some(rest) = body.strip_prefix("free ") {
        return Ok(Instr {
            id,
            pred,
            op: Op::Free {
                addr: parse_operand(rest, line)?,
            },
        });
    }
    if let Some(rest) = body.strip_prefix("profile_edge ") {
        return Ok(Instr {
            id,
            pred,
            op: Op::ProfileEdge {
                edge: EdgeId::new(parse_prefixed_id(rest, "e", "edge id", line)?),
            },
        });
    }
    if let Some(rest) = body.strip_prefix("stride_prof ") {
        let mut site = None;
        let mut slot = None;
        let mut mem = None;
        for field in rest.split_whitespace() {
            if let Some(v) = field.strip_prefix("site=") {
                site = Some(InstrId::new(parse_prefixed_id(v, "i", "site id", line)?));
            } else if let Some(v) = field.strip_prefix("slot=") {
                slot = Some(parse_u32(v, "slot", line)?);
            } else if field.starts_with('[') {
                mem = Some(field.to_string());
            } else if field.starts_with('+') || field.ends_with(']') || field == "+" {
                if let Some(m) = &mut mem {
                    m.push(' ');
                    m.push_str(field);
                }
            } else {
                return err(line, format!("unknown stride_prof field `{field}`"));
            }
        }
        let (site, slot, mem) = match (site, slot, mem) {
            (Some(a), Some(b), Some(c)) => (a, b, c),
            _ => return err(line, "stride_prof missing fields"),
        };
        let (addr, offset) = parse_mem(&mem, line)?;
        return Ok(Instr {
            id,
            pred,
            op: Op::ProfileStride {
                site,
                addr,
                offset,
                slot,
            },
        });
    }
    if body.starts_with("call ") || body.starts_with("call\t") {
        let op = parse_call(None, &body[5..], line)?;
        return Ok(Instr { id, pred, op });
    }

    // dst = rhs
    let (dst_s, rhs) = body.split_once('=').ok_or_else(|| ParseError {
        line,
        col: 1,
        message: format!("unrecognized instruction `{body}`"),
    })?;
    // `rX = call fnN(...)` routes through parse_rhs -> parse_call
    let dst = parse_reg(dst_s, line)?;
    let op = parse_rhs(dst, rhs, line)?;
    Ok(Instr { id, pred, op })
}

/// Parses a terminator line: `br b2`, `condbr r1, b2, b3`, `ret`, `ret r4`.
pub fn term_from_string(text: &str, line: usize) -> Result<Terminator, ParseError> {
    let t = text.trim();
    if let Some(rest) = t.strip_prefix("br ") {
        return Ok(Terminator::Br {
            target: parse_block_id(rest, line)?,
        });
    }
    if let Some(rest) = t.strip_prefix("condbr ") {
        let (c, rest2) = split2(rest, "operands", line)?;
        let (a, b) = split2(rest2, "targets", line)?;
        return Ok(Terminator::CondBr {
            cond: parse_operand(c, line)?,
            then_: parse_block_id(a, line)?,
            else_: parse_block_id(b, line)?,
        });
    }
    if t == "ret" {
        return Ok(Terminator::Ret { value: None });
    }
    if let Some(rest) = t.strip_prefix("ret ") {
        return Ok(Terminator::Ret {
            value: Some(parse_operand(rest, line)?),
        });
    }
    err(line, format!("unrecognized terminator `{t}`"))
}

/// Parses a whole module from the [`crate::pretty::module_to_string`]
/// format.
///
/// # Errors
///
/// Returns the first syntax problem with its line number. The result is
/// *not* implicitly verified; run [`crate::verify_module`] on it if the
/// text is untrusted.
pub fn module_from_string(text: &str) -> Result<Module, ParseError> {
    module_from_string_inner(text).map_err(|e| e.locate_in(text))
}

fn module_from_string_inner(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;

    while i < lines.len() {
        let lineno = i + 1;
        let line = lines[i].trim();
        if line.is_empty() {
            i += 1;
            continue;
        }
        if let Some(rest) = line.strip_prefix("global ") {
            i += 1;
            // `global g0 name size=256`
            let mut parts = rest.split_whitespace();
            let gid_s = parts.next().unwrap_or("");
            let gid = GlobalId::new(parse_prefixed_id(gid_s, "g", "global id", lineno)?);
            let name = parts.next().unwrap_or("").to_string();
            let size_s = parts.next().unwrap_or("");
            let size_v = expect(size_s, "size=", lineno)?;
            if gid.index() != module.globals.len() {
                return err(lineno, "globals out of order");
            }
            module.globals.push(Global {
                id: gid,
                name,
                size: parse_i64(size_v, "size", lineno)? as u64,
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("entry ") {
            i += 1;
            module.entry = FuncId::new(parse_prefixed_id(rest, "fn", "entry function", lineno)?);
            continue;
        }
        if line.starts_with("func ") {
            let func = parse_function(&lines, &mut i)?;
            if func.id.index() != module.functions.len() {
                return err(lineno, "functions out of order");
            }
            module.functions.push(func);
            continue;
        }
        return err(lineno, format!("unexpected top-level line `{line}`"));
    }
    Ok(module)
}

/// Parses one `func ... { ... }` section starting at `lines[*i]`,
/// advancing `*i` past the closing brace.
fn parse_function(lines: &[&str], i: &mut usize) -> Result<Function, ParseError> {
    let lineno = *i + 1;
    let header = lines[*i].trim();
    *i += 1;
    // `func fn0 name(params=2, regs=7) entry=b0 {`
    let rest = expect(header, "func ", lineno)?;
    let (id_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
        line: lineno,
        col: 1,
        message: "malformed func header".into(),
    })?;
    let id = FuncId::new(parse_prefixed_id(id_s, "fn", "function id", lineno)?);
    let open = rest.find('(').ok_or_else(|| ParseError {
        line: lineno,
        col: 1,
        message: "func header missing `(`".into(),
    })?;
    let name = rest[..open].to_string();
    let close = rest.find(')').ok_or_else(|| ParseError {
        line: lineno,
        col: 1,
        message: "func header missing `)`".into(),
    })?;
    let mut num_params = None;
    let mut num_regs = None;
    for field in rest[open + 1..close].split(',') {
        let field = field.trim();
        if let Some(v) = field.strip_prefix("params=") {
            num_params = Some(parse_u32(v, "params", lineno)?);
        } else if let Some(v) = field.strip_prefix("regs=") {
            num_regs = Some(parse_u32(v, "regs", lineno)?);
        } else {
            return err(lineno, format!("unknown func field `{field}`"));
        }
    }
    let tail = rest[close + 1..].trim();
    let entry_s = tail
        .strip_prefix("entry=")
        .and_then(|t| t.strip_suffix('{'))
        .ok_or_else(|| ParseError {
            line: lineno,
            col: 1,
            message: "func header missing `entry=bN {`".into(),
        })?;
    let entry = parse_block_id(entry_s, lineno)?;
    let (Some(num_params), Some(num_regs)) = (num_params, num_regs) else {
        return err(lineno, "func header missing params/regs");
    };

    let mut blocks: Vec<Block> = Vec::new();
    let mut current: Option<(BlockId, Vec<Instr>)> = None;
    let mut max_instr: u32 = 0;

    loop {
        if *i >= lines.len() {
            return err(lines.len(), "unterminated function (missing `}`)");
        }
        let lineno = *i + 1;
        let line = lines[*i].trim();
        *i += 1;
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            if current.is_some() {
                return err(lineno, "block missing terminator before `}`");
            }
            break;
        }
        if let Some(label) = line.strip_suffix(':') {
            if current.is_some() {
                return err(lineno, "previous block missing terminator");
            }
            let bid = parse_block_id(label, lineno)?;
            if bid.index() != blocks.len() {
                return err(lineno, "blocks out of order");
            }
            current = Some((bid, Vec::new()));
            continue;
        }
        let Some((bid, instrs)) = current.as_mut() else {
            return err(lineno, format!("instruction outside a block: `{line}`"));
        };
        if line.contains(';') {
            let instr = instr_from_string(line, lineno)?;
            max_instr = max_instr.max(instr.id.0 + 1);
            instrs.push(instr);
        } else {
            let term = term_from_string(line, lineno)?;
            blocks.push(Block {
                id: *bid,
                instrs: std::mem::take(instrs),
                term,
            });
            current = None;
        }
    }

    Ok(Function {
        id,
        name,
        num_params,
        num_regs,
        next_instr: max_instr,
        entry,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::pretty::module_to_string;

    fn round_trip(module: &Module) -> Module {
        let text = module_to_string(module);
        match module_from_string(&text) {
            Ok(m) => m,
            Err(e) => panic!("parse failed: {e}\n---\n{text}"),
        }
    }

    #[test]
    fn round_trips_a_rich_module() {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("table", 512);
        let callee = mb.declare_function("callee", 1);
        {
            let mut fb = mb.function(callee);
            let p = fb.param(0);
            let (v, _) = fb.load(p, 16);
            fb.ret(Some(Operand::Reg(v)));
        }
        let main = mb.declare_function("main", 2);
        {
            let mut fb = mb.function(main);
            let base = fb.global_addr(g);
            let sum = fb.mov(0i64);
            fb.counted_loop(fb.param(0), |fb, i| {
                let off = fb.mul(i, 8i64);
                let a = fb.add(base, off);
                let (v, _) = fb.load(a, 0);
                let c = fb.cmp(CmpOp::Gt, v, 10i64);
                let sel = fb.select(c, v, 0i64);
                fb.bin_to(sum, BinOp::Add, sum, sel);
                fb.store(sum, a, 8);
                fb.prefetch(a, 64);
            });
            let heap = fb.alloc(64i64);
            fb.free(heap);
            let r = fb.call(callee, &[Operand::Reg(base)]);
            let out = fb.add(sum, r);
            fb.ret(Some(Operand::Reg(out)));
        }
        mb.set_entry(main);
        let module = mb.finish();

        let parsed = round_trip(&module);
        assert_eq!(module_to_string(&module), module_to_string(&parsed));
        crate::verify_module(&parsed).expect("parsed module verifies");
    }

    #[test]
    fn round_trips_profiling_pseudo_ops_and_predication() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let pr = fb.new_reg();
        let (_, site) = fb.load(fb.param(0), 8);
        fb.emit_pred(
            pr,
            Op::ProfileEdge {
                edge: EdgeId::new(2),
            },
        );
        let one = fb.const_(1);
        fb.emit_pred(
            one,
            Op::TripCountCheck {
                dst: pr,
                header: BlockId::new(0),
                incoming: vec![EdgeId::new(0), EdgeId::new(1)],
                outgoing: vec![],
                shift: 7,
            },
        );
        fb.emit_pred(
            pr,
            Op::ProfileStride {
                site,
                addr: Operand::Reg(fb.param(0)),
                offset: 8,
                slot: 3,
            },
        );
        fb.ret(None);
        let module = mb.finish();
        let parsed = round_trip(&module);
        assert_eq!(module_to_string(&module), module_to_string(&parsed));
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let bad = "entry fn0\nfunc fn0 main(params=0, regs=1) entry=b0 {\nb0:\n    r0 = blorp 5    ; i0\n    ret\n}\n";
        let e = module_from_string(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("blorp"));
    }

    #[test]
    fn reports_column_and_renders_source_line() {
        let bad = "entry fn0\nfunc fn0 main(params=0, regs=1) entry=b0 {\nb0:\n    r0 = blorp 5    ; i0\n    ret\n}\n";
        let e = module_from_string(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.col, 10); // `blorp` starts at column 10
        let rendered = e.render(bad);
        assert!(rendered.contains("r0 = blorp 5"));
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.ends_with('^'));
        // the caret sits under the offending token
        assert_eq!(caret_line.find('^').unwrap(), "      | ".len() + 9);
    }

    #[test]
    fn single_instruction_errors_carry_caller_line_and_local_column() {
        let e = instr_from_string("r0 = blorp 5    ; i0", 42).unwrap_err();
        assert_eq!(e.line, 42);
        assert_eq!(e.col, 6);
    }

    #[test]
    fn negative_offsets_round_trip() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let (v, _) = fb.load(fb.param(0), -16);
        fb.ret(Some(Operand::Reg(v)));
        let module = mb.finish();
        let parsed = round_trip(&module);
        assert_eq!(module_to_string(&module), module_to_string(&parsed));
    }
}
