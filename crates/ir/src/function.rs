//! Functions, basic blocks, globals and modules.

use crate::instr::{Instr, Op, Terminator};
use crate::types::{BlockId, FuncId, GlobalId, InstrId, Reg};

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Block {
    /// The block's id; equals its index in [`Function::blocks`].
    pub id: BlockId,
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// The control transfer ending the block.
    pub term: Terminator,
}

/// A function: a register file size, parameters, and a CFG of blocks.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Function {
    /// The function's id; equals its index in [`Module::functions`].
    pub id: FuncId,
    /// Human-readable name (used by the pretty printer and error messages).
    pub name: String,
    /// Number of parameters; arguments arrive in registers `r0..rN`.
    pub num_params: u32,
    /// Number of virtual registers allocated so far.
    pub num_regs: u32,
    /// Next unallocated instruction id.
    pub next_instr: u32,
    /// Entry block (conventionally `b0`).
    pub entry: BlockId,
    /// All blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
}

impl Function {
    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg::new(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Allocates a fresh instruction id.
    pub fn new_instr_id(&mut self) -> InstrId {
        let id = InstrId::new(self.next_instr);
        self.next_instr += 1;
        id
    }

    /// Appends a new empty block ending in `Ret` and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(Block {
            id,
            instrs: Vec::new(),
            term: Terminator::Ret { value: None },
        });
        id
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns the block with the given id, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over every instruction of the function in block order.
    pub fn instrs(&self) -> impl Iterator<Item = (BlockId, &Instr)> {
        self.blocks
            .iter()
            .flat_map(|b| b.instrs.iter().map(move |i| (b.id, i)))
    }

    /// Finds an instruction by id, returning its block and position.
    pub fn find_instr(&self, id: InstrId) -> Option<(BlockId, usize)> {
        for b in &self.blocks {
            for (idx, i) in b.instrs.iter().enumerate() {
                if i.id == id {
                    return Some((b.id, idx));
                }
            }
        }
        None
    }

    /// Returns every load instruction (id, block, op) in block order.
    pub fn loads(&self) -> Vec<(InstrId, BlockId)> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for i in &b.instrs {
                if matches!(i.op, Op::Load { .. }) {
                    out.push((i.id, b.id));
                }
            }
        }
        out
    }

    /// Total number of instructions (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// A global data region of fixed size, zero-initialized by the VM.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Global {
    /// The global's id; equals its index in [`Module::globals`].
    pub id: GlobalId,
    /// Human-readable name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
}

/// A whole program: functions, globals, and an entry point.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Module {
    /// All functions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// All globals, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// The function executed by [`stride_vm`](https://docs.rs)'s `run`.
    pub entry: FuncId,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Returns the function with the given id, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Declares a global region of `size` bytes and returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        let id = GlobalId::new(self.globals.len() as u32);
        self.globals.push(Global {
            id,
            name: name.into(),
            size,
        });
        id
    }

    /// Total static instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.instr_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Operand;

    fn empty_function() -> Function {
        Function {
            id: FuncId::new(0),
            name: "f".into(),
            num_params: 0,
            num_regs: 0,
            next_instr: 0,
            entry: BlockId::new(0),
            blocks: Vec::new(),
        }
    }

    #[test]
    fn new_reg_and_instr_ids_are_sequential() {
        let mut f = empty_function();
        assert_eq!(f.new_reg(), Reg::new(0));
        assert_eq!(f.new_reg(), Reg::new(1));
        assert_eq!(f.new_instr_id(), InstrId::new(0));
        assert_eq!(f.new_instr_id(), InstrId::new(1));
    }

    #[test]
    fn new_block_ids_match_indices() {
        let mut f = empty_function();
        let b0 = f.new_block();
        let b1 = f.new_block();
        assert_eq!(b0, BlockId::new(0));
        assert_eq!(b1, BlockId::new(1));
        assert_eq!(f.block(b1).id, b1);
    }

    #[test]
    fn find_instr_locates_block_and_index() {
        let mut f = empty_function();
        let b0 = f.new_block();
        let id0 = f.new_instr_id();
        let id1 = f.new_instr_id();
        let r = f.new_reg();
        f.block_mut(b0).instrs.push(Instr {
            id: id0,
            pred: None,
            op: Op::Const { dst: r, value: 1 },
        });
        f.block_mut(b0).instrs.push(Instr {
            id: id1,
            pred: None,
            op: Op::Load {
                dst: r,
                addr: Operand::Reg(r),
                offset: 0,
            },
        });
        assert_eq!(f.find_instr(id1), Some((b0, 1)));
        assert_eq!(f.find_instr(InstrId::new(99)), None);
        assert_eq!(f.loads(), vec![(id1, b0)]);
        assert_eq!(f.instr_count(), 2);
    }

    #[test]
    fn module_globals_and_lookup() {
        let mut m = Module::new();
        let g = m.add_global("heap_meta", 128);
        assert_eq!(g, GlobalId::new(0));
        assert_eq!(m.globals[0].size, 128);
        m.functions.push(empty_function());
        assert!(m.function_by_name("f").is_some());
        assert!(m.function_by_name("missing").is_none());
    }
}
