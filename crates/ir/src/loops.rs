//! Natural-loop detection, loop nesting, and irreducible-region marking.
//!
//! The paper treats loads inside irreducible loops as *out-loop* loads
//! (§2), so the forest records which blocks belong to irreducible regions;
//! those blocks report no containing loop.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::types::{BlockId, LoopId};
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop's id within its [`LoopForest`].
    pub id: LoopId,
    /// The loop header (the unique entry block of the loop).
    pub header: BlockId,
    /// All member blocks, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Latch blocks: sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// The innermost loop strictly containing this one.
    pub parent: Option<LoopId>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
}

impl Loop {
    /// True if `b` is a member of this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function plus irreducible-region marking.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    innermost: Vec<Option<LoopId>>,
    irreducible: BTreeSet<BlockId>,
}

impl LoopForest {
    /// Detects loops in `cfg` using the dominator tree.
    ///
    /// Back edges `t -> h` where `h` dominates `t` define natural loops
    /// (loops sharing a header are merged). Retreating edges whose target
    /// does not dominate their source mark the enclosing strongly-connected
    /// component as irreducible.
    pub fn compute(cfg: &Cfg, dom: &DomTree, entry: BlockId) -> Self {
        let n = cfg.num_blocks();

        // --- collect back edges, grouped by header -------------------------
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        let mut irreducible_edges: Vec<(BlockId, BlockId)> = Vec::new();
        // DFS to classify retreating edges: an edge u -> v is retreating iff
        // v is on the DFS stack when u is expanded.
        let mut state = vec![0u8; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        state[entry.index()] = 1;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            let succs = cfg.succs(b);
            if *cursor < succs.len() {
                let next = succs[*cursor];
                *cursor += 1;
                match state[next.index()] {
                    0 => {
                        state[next.index()] = 1;
                        stack.push((next, 0));
                    }
                    1 => {
                        // retreating edge b -> next
                        if dom.dominates(next, b) {
                            back_edges.push((b, next));
                        } else {
                            irreducible_edges.push((b, next));
                        }
                    }
                    _ => {}
                }
            } else {
                state[b.index()] = 2;
                stack.pop();
            }
        }

        // --- natural loop bodies -------------------------------------------
        let mut headers: Vec<BlockId> = Vec::new();
        for &(_, h) in &back_edges {
            if !headers.contains(&h) {
                headers.push(h);
            }
        }
        headers.sort();

        let mut loops = Vec::new();
        for (i, &header) in headers.iter().enumerate() {
            let mut blocks = BTreeSet::new();
            blocks.insert(header);
            let mut latches = Vec::new();
            let mut worklist = Vec::new();
            for &(t, h) in &back_edges {
                if h == header {
                    latches.push(t);
                    if blocks.insert(t) {
                        worklist.push(t);
                    }
                }
            }
            while let Some(b) = worklist.pop() {
                for &p in cfg.preds(b) {
                    if dom.is_reachable(p) && blocks.insert(p) {
                        worklist.push(p);
                    }
                }
            }
            latches.sort();
            latches.dedup();
            loops.push(Loop {
                id: LoopId::new(i as u32),
                header,
                blocks,
                latches,
                parent: None,
                depth: 1,
            });
        }

        // --- nesting --------------------------------------------------------
        // parent of L = the smallest other loop whose block set strictly
        // contains L's blocks.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                let contains = loops[i].header != loops[j].header
                    && loops[j].blocks.is_superset(&loops[i].blocks)
                    && loops[j].blocks.len() > loops[i].blocks.len();
                if contains {
                    best = Some(match best {
                        None => j,
                        Some(cur) if loops[j].blocks.len() < loops[cur].blocks.len() => j,
                        Some(cur) => cur,
                    });
                }
            }
            loops[i].parent = best.map(|j| LoopId::new(j as u32));
        }
        // depths
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = depth;
        }

        // --- innermost loop per block ----------------------------------------
        let mut innermost: Vec<Option<LoopId>> = vec![None; n];
        // Assign larger loops first so smaller (inner) loops overwrite.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for i in order {
            for &b in &loops[i].blocks {
                innermost[b.index()] = Some(LoopId::new(i as u32));
            }
        }

        // --- irreducible regions ---------------------------------------------
        // For each irreducible retreating edge (u, v), mark every block on a
        // cycle through u and v: blocks reachable from v that can reach u
        // without leaving the SCC. A simple over-approximation that is exact
        // for our test shapes: the SCC containing both endpoints.
        let mut irreducible = BTreeSet::new();
        if !irreducible_edges.is_empty() {
            let sccs = tarjan_sccs(cfg, n);
            for &(u, v) in &irreducible_edges {
                if sccs[u.index()] == sccs[v.index()] {
                    let comp = sccs[u.index()];
                    for (b, &c) in sccs.iter().enumerate().take(n) {
                        if c == comp {
                            irreducible.insert(BlockId::new(b as u32));
                        }
                    }
                }
            }
        }

        LoopForest {
            loops,
            innermost,
            irreducible,
        }
    }

    /// All loops, indexed by [`LoopId`].
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// The innermost *reducible* loop containing `b`, or `None` if `b` is
    /// outside all loops or inside an irreducible region (the paper treats
    /// the latter as out-loop).
    pub fn loop_of(&self, b: BlockId) -> Option<LoopId> {
        if self.irreducible.contains(&b) {
            return None;
        }
        self.innermost[b.index()]
    }

    /// True if `b` lies in an irreducible region.
    pub fn is_irreducible_block(&self, b: BlockId) -> bool {
        self.irreducible.contains(&b)
    }

    /// Edges entering the loop from outside (the pre-head edges of
    /// Fig. 10/13: their frequency sum is the loop's entry frequency).
    pub fn entry_edges(&self, id: LoopId, cfg: &Cfg) -> Vec<(BlockId, BlockId)> {
        let l = self.get(id);
        cfg.preds(l.header)
            .iter()
            .filter(|p| !l.blocks.contains(p))
            .map(|&p| (p, l.header))
            .collect()
    }

    /// The outgoing edges of the loop's entry block (their frequency sum is
    /// the header's execution frequency, Fig. 12/13).
    pub fn header_out_edges(&self, id: LoopId, cfg: &Cfg) -> Vec<(BlockId, BlockId)> {
        let l = self.get(id);
        cfg.succs(l.header).iter().map(|&s| (l.header, s)).collect()
    }
}

/// Tarjan's strongly-connected components; returns the component index of
/// every block.
fn tarjan_sccs(cfg: &Cfg, n: usize) -> Vec<usize> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let mut st = vec![
        NodeState {
            index: -1,
            lowlink: -1,
            on_stack: false,
        };
        n
    ];
    let mut comp = vec![usize::MAX; n];
    let mut next_index: i64 = 0;
    let mut next_comp = 0usize;
    let mut scc_stack: Vec<usize> = Vec::new();

    // Iterative Tarjan.
    for root in 0..n {
        if st[root].index != -1 {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        st[root].index = next_index;
        st[root].lowlink = next_index;
        next_index += 1;
        st[root].on_stack = true;
        scc_stack.push(root);

        while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
            let succs = cfg.succs(BlockId::new(v as u32));
            if *cursor < succs.len() {
                let w = succs[*cursor].index();
                *cursor += 1;
                if st[w].index == -1 {
                    st[w].index = next_index;
                    st[w].lowlink = next_index;
                    next_index += 1;
                    st[w].on_stack = true;
                    scc_stack.push(w);
                    call_stack.push((w, 0));
                } else if st[w].on_stack {
                    st[v].lowlink = st[v].lowlink.min(st[w].index);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let low = st[v].lowlink;
                    st[parent].lowlink = st[parent].lowlink.min(low);
                }
                if st[v].lowlink == st[v].index {
                    // The SCC stack cannot underflow before reaching `v`;
                    // an empty stack ends the component deterministically.
                    while let Some(w) = scc_stack.pop() {
                        st[w].on_stack = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::function::Function;
    use crate::instr::CmpOp;

    fn analyze(f: &Function) -> (Cfg, LoopForest) {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg, f.entry);
        let forest = LoopForest::compute(&cfg, &dom, f.entry);
        (cfg, forest)
    }

    fn single_loop_func() -> Function {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        fb.counted_loop(fb.param(0), |fb, _| {
            let a = fb.const_(0);
            let _ = fb.load(a, 0);
        });
        fb.ret(None);
        mb.finish().functions.remove(0)
    }

    #[test]
    fn detects_single_loop() {
        let f = single_loop_func();
        let (cfg, forest) = analyze(&f);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId::new(1));
        assert!(l.blocks.contains(&BlockId::new(2)));
        assert!(!l.blocks.contains(&BlockId::new(0)));
        assert!(!l.blocks.contains(&BlockId::new(3)));
        assert_eq!(l.depth, 1);
        assert_eq!(forest.loop_of(BlockId::new(2)), Some(LoopId::new(0)));
        assert_eq!(forest.loop_of(BlockId::new(0)), None);
        // entry edges: only entry -> header
        let entries = forest.entry_edges(LoopId::new(0), &cfg);
        assert_eq!(entries, vec![(BlockId::new(0), BlockId::new(1))]);
        let outs = forest.header_out_edges(LoopId::new(0), &cfg);
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn detects_nested_loops() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 2);
        let mut fb = mb.function(f);
        let (outer_n, inner_n) = (fb.param(0), fb.param(1));
        fb.counted_loop(outer_n, |fb, _| {
            fb.counted_loop(inner_n, |fb, _| {
                let a = fb.const_(0);
                let _ = fb.load(a, 0);
            });
        });
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let (_, forest) = analyze(func);
        assert_eq!(forest.loops().len(), 2);
        let inner = forest
            .loops()
            .iter()
            .find(|l| l.depth == 2)
            .expect("inner loop");
        let outer = forest
            .loops()
            .iter()
            .find(|l| l.depth == 1)
            .expect("outer loop");
        assert_eq!(inner.parent, Some(outer.id));
        assert!(outer.blocks.is_superset(&inner.blocks));
        // innermost assignment prefers the inner loop
        assert_eq!(forest.loop_of(inner.header), Some(inner.id));
    }

    #[test]
    fn self_loop_is_a_loop() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(body);
        fb.switch_to(body);
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, body, exit);
        fb.switch_to(exit);
        fb.ret(None);
        let m = mb.finish();
        let (_, forest) = analyze(m.function(f));
        assert_eq!(forest.loops().len(), 1);
        assert_eq!(forest.loops()[0].blocks.len(), 1);
        assert_eq!(forest.loops()[0].latches, vec![BlockId::new(1)]);
    }

    #[test]
    fn irreducible_region_is_marked_and_not_a_loop() {
        // Classic irreducible shape: entry cond-branches to A and B which
        // branch to each other; both can exit.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let a = fb.new_block();
        let b = fb.new_block();
        let exit = fb.new_block();
        let c0 = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c0, a, b);
        fb.switch_to(a);
        let c1 = fb.cmp(CmpOp::Gt, fb.param(0), 10i64);
        fb.cond_br(c1, b, exit);
        fb.switch_to(b);
        let c2 = fb.cmp(CmpOp::Gt, fb.param(0), 20i64);
        fb.cond_br(c2, a, exit);
        fb.switch_to(exit);
        fb.ret(None);
        let m = mb.finish();
        let (_, forest) = analyze(m.function(f));
        assert!(forest.loops().is_empty());
        assert!(forest.is_irreducible_block(BlockId::new(1)));
        assert!(forest.is_irreducible_block(BlockId::new(2)));
        assert_eq!(forest.loop_of(BlockId::new(1)), None);
    }

    #[test]
    fn loop_with_two_entry_edges_from_outside() {
        // entry cond-branches to two blocks that both jump into the header.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let pre1 = fb.new_block();
        let pre2 = fb.new_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let c0 = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c0, pre1, pre2);
        fb.switch_to(pre1);
        fb.br(header);
        fb.switch_to(pre2);
        fb.br(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 5i64);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg, func.entry);
        let forest = LoopForest::compute(&cfg, &dom, func.entry);
        assert_eq!(forest.loops().len(), 1);
        let entries = forest.entry_edges(LoopId::new(0), &cfg);
        assert_eq!(entries.len(), 2);
    }
}
