//! Dominator and postdominator trees (Cooper–Harvey–Kennedy iterative
//! algorithm).

use crate::cfg::Cfg;
use crate::types::BlockId;

/// A dominator tree over the blocks of one function.
///
/// Unreachable blocks have no immediate dominator and are dominated by
/// nothing (and dominate nothing but themselves).
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    rpo_number: Vec<Option<u32>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `cfg` rooted at `entry`.
    pub fn compute(cfg: &Cfg, entry: BlockId) -> Self {
        let rpo = cfg.reverse_postorder(entry);
        let n = cfg.num_blocks();
        let mut rpo_number = vec![None; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b.index()] = Some(i as u32);
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        // Fingers only ever walk reachable blocks whose idom is already
        // set; a `None` here would mean a broken invariant, so stop the
        // walk deterministically instead of panicking.
        let num = |b: BlockId| rpo_number[b.index()].unwrap_or(u32::MAX);
        let intersect = |idom: &[Option<BlockId>], a: BlockId, b: BlockId| -> BlockId {
            let mut finger1 = a;
            let mut finger2 = b;
            while finger1 != finger2 {
                while num(finger1) > num(finger2) {
                    match idom[finger1.index()] {
                        Some(next) => finger1 = next,
                        None => return finger1,
                    }
                }
                while num(finger2) > num(finger1) {
                    match idom[finger2.index()] {
                        Some(next) => finger2 = next,
                        None => return finger2,
                    }
                }
            }
            finger1
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor that already has an idom.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if rpo_number[p.index()].is_none() {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree {
            idom,
            rpo_number,
            entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_number[b.index()].is_none() || self.rpo_number[a.index()].is_none() {
            return a == b;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_number[b.index()].is_some()
    }
}

/// A postdominator tree, computed on the reverse CFG with a virtual exit
/// joining all `Ret` blocks.
#[derive(Clone, Debug)]
pub struct PostDomTree {
    // ipdom[b] = immediate postdominator; `None` means the virtual exit or
    // a block from which no exit is reachable.
    ipdom: Vec<Option<BlockId>>,
    reachable: Vec<bool>,
}

impl PostDomTree {
    /// Computes the postdominator tree of `cfg`. `exits` lists the blocks
    /// with `Ret` terminators.
    pub fn compute(cfg: &Cfg, exits: &[BlockId]) -> Self {
        let n = cfg.num_blocks();
        // Build the reverse graph with a virtual exit node index n.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1]; // reverse succ = preds
        for (b, sb) in succs.iter_mut().enumerate().take(n) {
            for &p in cfg.preds(BlockId::new(b as u32)) {
                sb.push(p.index());
            }
        }
        for &e in exits {
            succs[n].push(e.index());
        }
        // preds in the reverse graph = forward succs (+ virtual exit edges)
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(b);
            }
        }

        // RPO on the reverse graph from the virtual exit.
        let mut state = vec![0u8; n + 1];
        let mut postorder = Vec::with_capacity(n + 1);
        let mut stack: Vec<(usize, usize)> = vec![(n, 0)];
        state[n] = 1;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            if *cursor < succs[b].len() {
                let next = succs[b][*cursor];
                *cursor += 1;
                if state[next] == 0 {
                    state[next] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[b] = 2;
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        let mut rpo_number = vec![None; n + 1];
        for (i, &b) in postorder.iter().enumerate() {
            rpo_number[b] = Some(i as u32);
        }

        let mut idom: Vec<Option<usize>> = vec![None; n + 1];
        idom[n] = Some(n);
        // Same invariant-preserving walk as in `DomTree::compute`.
        let num = |b: usize| rpo_number[b].unwrap_or(u32::MAX);
        let intersect = |idom: &[Option<usize>], a: usize, b: usize| -> usize {
            let mut f1 = a;
            let mut f2 = b;
            while f1 != f2 {
                while num(f1) > num(f2) {
                    match idom[f1] {
                        Some(next) => f1 = next,
                        None => return f1,
                    }
                }
                while num(f2) > num(f1) {
                    match idom[f2] {
                        Some(next) => f2 = next,
                        None => return f2,
                    }
                }
            }
            f1
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in postorder.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &preds[b] {
                    if rpo_number[p].is_none() || idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut ipdom = vec![None; n];
        let mut reachable = vec![false; n];
        for b in 0..n {
            reachable[b] = rpo_number[b].is_some();
            if let Some(d) = idom[b] {
                if d < n {
                    ipdom[b] = Some(BlockId::new(d as u32));
                }
            }
        }
        PostDomTree { ipdom, reachable }
    }

    /// The immediate postdominator of `b`, if it is a real block.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }

    /// True if `a` postdominates `b` (reflexive).
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return a == b;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::function::Function;
    use crate::instr::{CmpOp, Terminator};

    fn diamond_func() -> Function {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, b1, b2);
        fb.switch_to(b1);
        fb.br(b3);
        fb.switch_to(b2);
        fb.br(b3);
        fb.switch_to(b3);
        fb.ret(None);
        mb.finish().functions.remove(0)
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond_func();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg, f.entry);
        let b = BlockId::new;
        assert_eq!(dom.idom(b(0)), None);
        assert_eq!(dom.idom(b(1)), Some(b(0)));
        assert_eq!(dom.idom(b(2)), Some(b(0)));
        assert_eq!(dom.idom(b(3)), Some(b(0))); // join dominated by entry
        assert!(dom.dominates(b(0), b(3)));
        assert!(!dom.dominates(b(1), b(3)));
        assert!(dom.dominates(b(3), b(3)));
    }

    #[test]
    fn diamond_postdominators() {
        let f = diamond_func();
        let cfg = Cfg::compute(&f);
        let pdom = PostDomTree::compute(&cfg, &[BlockId::new(3)]);
        let b = BlockId::new;
        assert!(pdom.postdominates(b(3), b(0)));
        assert!(pdom.postdominates(b(3), b(1)));
        assert!(!pdom.postdominates(b(1), b(0)));
        assert_eq!(pdom.ipdom(b(0)), Some(b(3)));
        assert_eq!(pdom.ipdom(b(3)), None); // virtual exit
    }

    #[test]
    fn loop_dominators() {
        // b0 -> b1(header) -> b2(body) -> b1; b1 -> b3(exit)
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg, func.entry);
        let b = BlockId::new;
        assert_eq!(dom.idom(b(2)), Some(b(1)));
        assert_eq!(dom.idom(b(3)), Some(b(1)));
        assert!(dom.dominates(b(1), b(2)));
        // the header dominates its latch: (b2 -> b1) is a back edge
        assert!(dom.dominates(b(1), b(2)));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        let _dead = fb.new_block();
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg, func.entry);
        assert_eq!(dom.idom(BlockId::new(1)), None);
        assert!(!dom.is_reachable(BlockId::new(1)));
        assert!(!dom.dominates(BlockId::new(0), BlockId::new(1)));
    }

    #[test]
    fn control_equivalence_via_dom_and_pdom() {
        // In a straight line b0 -> b1 -> b2, all blocks are control
        // equivalent: earlier dominates later, later postdominates earlier.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        fb.br(b1);
        fb.switch_to(b1);
        fb.br(b2);
        fb.switch_to(b2);
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg, func.entry);
        let exits: Vec<BlockId> = func
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Ret { .. }))
            .map(|b| b.id)
            .collect();
        let pdom = PostDomTree::compute(&cfg, &exits);
        let b = BlockId::new;
        assert!(dom.dominates(b(0), b(2)) && pdom.postdominates(b(2), b(0)));
        assert!(dom.dominates(b(1), b(2)) && pdom.postdominates(b(2), b(1)));
    }
}
