//! Superinstruction fusion: the pre-execution peephole pass of the
//! self-applied-PGO loop.
//!
//! Profiling the interpreter with its own opcode/pair profiler (the
//! `vm-selfprof` feature of `stride-vm`) shows the same two dynamic
//! digrams dominating every Fig. 15 workload: an address computation
//! (`Bin`) immediately consumed by a `Load`, and a `Cmp` immediately
//! consumed by the block's `CondBr`. This pass rewrites those pairs into
//! [`Op::FusedBinLoad`] and [`Terminator::FusedCmpBr`] superinstructions
//! so the interpreter pays one dispatch (fetch, fuel check, predicate
//! test) where it paid two.
//!
//! Fusion is a pure pre-execution *decode* step: the fused module is never
//! serialized, parsed, or fed back into instrumentation, and every fused
//! form preserves the original semantics exactly —
//!
//! * both destination registers are still written, so later reads of the
//!   address or predicate register observe the same values;
//! * the original `Load`'s [`InstrId`] rides along as
//!   [`Op::FusedBinLoad::site`], so dynamic per-site load counts attribute
//!   to the unfused program;
//! * the VM charges a fused instruction the *sum* of its halves' base
//!   costs and counts it as two dynamic instructions with two fuel checks,
//!   so cycle counts and out-of-fuel abort points are byte-identical to
//!   sequential execution.
//!
//! Only unpredicated pairs fuse: a qualifying predicate squashes each half
//! independently, which a single superinstruction cannot reproduce.

use crate::function::{Block, Function, Module};
use crate::instr::{Instr, Op, Operand, Terminator};

/// What [`fuse_module`] rewrote (observability; per-module static counts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// `Bin`+`Load` pairs fused into [`Op::FusedBinLoad`].
    pub bin_loads: u64,
    /// `Cmp`+`CondBr` pairs fused into [`Terminator::FusedCmpBr`].
    pub cmp_brs: u64,
    /// `Bin`+`Bin` pairs fused into [`Op::FusedBinBin`].
    pub bin_bins: u64,
}

impl FuseStats {
    /// Total static superinstructions created.
    pub fn total(&self) -> u64 {
        self.bin_loads + self.cmp_brs + self.bin_bins
    }
}

/// True if `instrs[i]` and `instrs[i + 1]` form a fusible `Bin`+`Load`
/// pair: both unpredicated, and the load's address is exactly the `Bin`'s
/// destination register (offset folding stays with the load).
fn fusible_bin_load(a: &Instr, b: &Instr) -> bool {
    if a.pred.is_some() || b.pred.is_some() {
        return false;
    }
    match (&a.op, &b.op) {
        (Op::Bin { dst, .. }, Op::Load { addr, .. }) => *addr == Operand::Reg(*dst),
        _ => false,
    }
}

/// True if `a` and `b` are adjacent unpredicated `Bin`s (the hottest
/// dispatch digram: ~40% of all dynamic pairs). Sequential-execution
/// semantics carry over directly, so any two qualify.
fn fusible_bin_bin(a: &Instr, b: &Instr) -> bool {
    a.pred.is_none()
        && b.pred.is_none()
        && matches!(a.op, Op::Bin { .. })
        && matches!(b.op, Op::Bin { .. })
}

fn fuse_block(block: &mut Block, stats: &mut FuseStats) {
    // Bin+Load pairs: one forward scan; a fused instruction is itself a
    // load consumer, so scanning resumes after the pair (no refusing).
    let mut out: Vec<Instr> = Vec::with_capacity(block.instrs.len());
    let mut i = 0;
    while i < block.instrs.len() {
        if i + 1 < block.instrs.len() && fusible_bin_load(&block.instrs[i], &block.instrs[i + 1]) {
            let (
                Op::Bin { dst, op, lhs, rhs },
                Op::Load {
                    dst: load_dst,
                    offset,
                    ..
                },
            ) = (&block.instrs[i].op, &block.instrs[i + 1].op)
            else {
                unreachable!("fusible_bin_load matched a non Bin+Load pair");
            };
            out.push(Instr {
                // Keep the Bin's id for the fused instruction; the Load's
                // id is preserved as the site for load accounting.
                id: block.instrs[i].id,
                pred: None,
                op: Op::FusedBinLoad {
                    bin_dst: *dst,
                    op: *op,
                    lhs: *lhs,
                    rhs: *rhs,
                    load_dst: *load_dst,
                    offset: *offset,
                    site: block.instrs[i + 1].id,
                },
            });
            stats.bin_loads += 1;
            i += 2;
        } else if i + 1 < block.instrs.len()
            && fusible_bin_bin(&block.instrs[i], &block.instrs[i + 1])
            // Lookahead: leave the second Bin free when it is the address
            // computation of the following load (`mul; add; load` — the
            // canonical strided shape) so the more specific Bin+Load
            // superinstruction forms there instead.
            && !(i + 2 < block.instrs.len()
                && fusible_bin_load(&block.instrs[i + 1], &block.instrs[i + 2]))
        {
            let (
                Op::Bin {
                    dst: a_dst,
                    op: a_op,
                    lhs: a_lhs,
                    rhs: a_rhs,
                },
                Op::Bin {
                    dst: b_dst,
                    op: b_op,
                    lhs: b_lhs,
                    rhs: b_rhs,
                },
            ) = (&block.instrs[i].op, &block.instrs[i + 1].op)
            else {
                unreachable!("fusible_bin_bin matched a non Bin+Bin pair");
            };
            out.push(Instr {
                id: block.instrs[i].id,
                pred: None,
                op: Op::FusedBinBin {
                    a_dst: *a_dst,
                    a_op: *a_op,
                    a_lhs: *a_lhs,
                    a_rhs: *a_rhs,
                    b_dst: *b_dst,
                    b_op: *b_op,
                    b_lhs: *b_lhs,
                    b_rhs: *b_rhs,
                    b_id: block.instrs[i + 1].id,
                },
            });
            stats.bin_bins += 1;
            i += 2;
        } else {
            out.push(block.instrs[i].clone());
            i += 1;
        }
    }
    block.instrs = out;

    // Block-final Cmp feeding the CondBr. The compare must be unpredicated
    // and the branch condition must read exactly its destination; the
    // verifier's `then_ != else_` invariant carries over from the CondBr.
    if let Terminator::CondBr {
        cond: Operand::Reg(c),
        then_,
        else_,
    } = block.term
    {
        if let Some(last) = block.instrs.last() {
            if last.pred.is_none() {
                if let Op::Cmp { dst, op, lhs, rhs } = last.op {
                    if dst == c {
                        block.term = Terminator::FusedCmpBr {
                            id: last.id,
                            dst,
                            op,
                            lhs,
                            rhs,
                            then_,
                            else_,
                        };
                        block.instrs.pop();
                        stats.cmp_brs += 1;
                    }
                }
            }
        }
    }
}

fn fuse_function(func: &mut Function, stats: &mut FuseStats) {
    for block in &mut func.blocks {
        fuse_block(block, stats);
    }
}

/// Rewrites adjacent `Bin`+`Load` and block-final `Cmp`+`CondBr` pairs of
/// every function into superinstructions, returning the fused module and
/// what was fused. `next_instr`, `num_regs`, globals and the entry point
/// are unchanged; instruction ids of the surviving halves are preserved.
pub fn fuse_module(module: &Module) -> (Module, FuseStats) {
    let mut fused = module.clone();
    let mut stats = FuseStats::default();
    for func in &mut fused.functions {
        fuse_function(func, &mut stats);
    }
    (fused, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{BinOp, CmpOp};
    use crate::verify::verify_module;

    /// base+offset loads in a counted loop: the canonical fusible shape.
    fn strided_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 1 << 12);
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let sum = fb.mov(0i64);
        fb.counted_loop(fb.param(0), |fb, i| {
            let off = fb.mul(i, 8i64);
            let a = fb.add(base, off);
            let (v, _) = fb.load(a, 0);
            fb.bin_to(sum, BinOp::Add, sum, v);
        });
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn fuses_adjacent_bin_load() {
        let m = strided_module();
        let (fused, stats) = fuse_module(&m);
        assert_eq!(stats.bin_loads, 1, "add feeding the load fuses");
        let has_fused = fused.functions[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, Op::FusedBinLoad { .. }));
        assert!(has_fused);
    }

    #[test]
    fn fuses_block_final_cmp_condbr() {
        let m = strided_module();
        let (fused, stats) = fuse_module(&m);
        assert!(stats.cmp_brs >= 1, "loop latch compare fuses");
        let has_fused = fused.functions[0]
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::FusedCmpBr { .. }));
        assert!(has_fused);
    }

    #[test]
    fn fused_module_verifies() {
        let m = strided_module();
        let (fused, stats) = fuse_module(&m);
        assert!(stats.total() > 0);
        verify_module(&fused).expect("fused module verifies");
    }

    #[test]
    fn preserves_ids_and_register_file() {
        let m = strided_module();
        let (fused, _) = fuse_module(&m);
        for (orig, f) in m.functions.iter().zip(&fused.functions) {
            assert_eq!(orig.next_instr, f.next_instr);
            assert_eq!(orig.num_regs, f.num_regs);
            assert_eq!(orig.entry, f.entry);
            assert_eq!(orig.blocks.len(), f.blocks.len());
        }
        assert_eq!(m.globals.len(), fused.globals.len());
    }

    #[test]
    fn predicated_halves_do_not_fuse() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let p = fb.const_(1);
        let a = fb.const_(0x2000);
        let dst = fb.new_reg();
        fb.emit_pred(
            p,
            Op::Bin {
                dst,
                op: BinOp::Add,
                lhs: Operand::Reg(a),
                rhs: Operand::Imm(8),
            },
        );
        let (_v, _) = fb.load(dst, 0);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let (_, stats) = fuse_module(&m);
        assert_eq!(stats.bin_loads, 0, "predicated Bin must not fuse");
    }

    #[test]
    fn load_of_other_register_does_not_fuse() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let a = fb.const_(0x2000);
        let _unrelated = fb.add(a, 16i64);
        let (_v, _) = fb.load(a, 0); // loads `a`, not the Bin's dst
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let (_, stats) = fuse_module(&m);
        assert_eq!(stats.bin_loads, 0);
    }

    #[test]
    fn cmp_not_feeding_branch_does_not_fuse() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let then_ = fb.new_block();
        let else_ = fb.new_block();
        let c = fb.cmp(CmpOp::Gt, fb.param(0), 3i64);
        let other = fb.cmp(CmpOp::Lt, fb.param(0), 100i64);
        let _ = other;
        fb.cond_br(c, then_, else_); // branches on c, but `other` is last
        fb.switch_to(then_);
        fb.ret(Some(Operand::Imm(1)));
        fb.switch_to(else_);
        fb.ret(Some(Operand::Imm(0)));
        mb.set_entry(f);
        let m = mb.finish();
        let (_, stats) = fuse_module(&m);
        assert_eq!(stats.cmp_brs, 0, "branch cond must be the final Cmp's dst");
    }

    #[test]
    fn fused_load_dst_may_overwrite_bin_dst() {
        // p = p + 8; p = mem[p]  — pointer chase through the same register.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        fb.bin_to(p, BinOp::Add, p, 8i64);
        fb.load_to(p, p, 0);
        fb.ret(Some(Operand::Reg(p)));
        mb.set_entry(f);
        let m_pre = mb.finish();
        let (fused, _) = fuse_module(&m_pre);
        verify_module(&fused).expect("self-overwriting fused load verifies");
    }

    #[test]
    fn fuses_adjacent_bin_bin() {
        // Two dependent arithmetic ops with no load following.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 2);
        let mut fb = mb.function(f);
        let s = fb.add(fb.param(0), fb.param(1));
        let d = fb.mul(s, 10i64);
        fb.ret(Some(Operand::Reg(d)));
        mb.set_entry(f);
        let m = mb.finish();
        let (fused, stats) = fuse_module(&m);
        assert_eq!(stats.bin_bins, 1);
        let has_fused = fused.functions[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, Op::FusedBinBin { .. }));
        assert!(has_fused);
        verify_module(&fused).expect("bin+bin fused module verifies");
    }

    #[test]
    fn bin_load_wins_over_bin_bin_in_mul_add_load() {
        // mul; add; load: the add must pair with the load, not the mul.
        let m = strided_module();
        let (_, stats) = fuse_module(&m);
        assert_eq!(stats.bin_loads, 1, "address compute pairs with its load");
    }

    #[test]
    fn bin_bin_second_half_may_read_first_half_dst() {
        // a = p + 8; b = a * 2 — read-after-write through the pair.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let a = fb.add(fb.param(0), 8i64);
        let b = fb.mul(a, 2i64);
        fb.ret(Some(Operand::Reg(b)));
        mb.set_entry(f);
        let m = mb.finish();
        let (fused, stats) = fuse_module(&m);
        assert_eq!(stats.bin_bins, 1);
        verify_module(&fused).expect("raw-dependent pair verifies");
    }

    #[test]
    fn idempotent_on_already_fused_modules() {
        let m = strided_module();
        let (once, s1) = fuse_module(&m);
        let (twice, s2) = fuse_module(&once);
        assert_eq!(s2.total(), 0, "no pairs left to fuse");
        assert!(s1.total() > 0);
        assert_eq!(format!("{once:?}"), format!("{twice:?}"));
    }
}
