// Library code must degrade gracefully instead of panicking; unwrap and
// expect are allowed only under cfg(test).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Compiler intermediate representation for the stride-prefetch
//! reproduction (Wu, *Efficient Discovery of Regular Stride Patterns in
//! Irregular Programs and Its Use in Compiler Prefetching*, PLDI 2002).
//!
//! The paper's profiling and prefetching algorithms operate inside an
//! Itanium production compiler. This crate provides the substrate they
//! need: a CFG-based register-machine IR with
//!
//! * explicit loads/stores (base register + constant byte offset),
//! * a non-faulting `prefetch` instruction (Itanium `lfetch`),
//! * instruction-level predication (Itanium qualifying predicates),
//! * profiling pseudo-instructions standing in for the counter-update and
//!   `strideProf` call sequences the paper's instrumentation inserts,
//!
//! plus the analyses the passes consume: dominators and postdominators,
//! natural loops with irreducible-region marking, loop-invariance,
//! control-equivalence, and *equivalent load* grouping.
//!
//! # Example
//!
//! Build the pointer-chasing loop of Fig. 1 and find its loop and loads:
//!
//! ```
//! use stride_ir::{FuncAnalysis, ModuleBuilder};
//!
//! let mut mb = ModuleBuilder::new();
//! let f = mb.declare_function("chase", 1);
//! let mut fb = mb.function(f);
//! let p = fb.mov(fb.param(0));
//! fb.while_nonzero(p, |fb, p| {
//!     let (_string, _s2) = fb.load(p, 8); // use string_list->string
//!     fb.load_to(p, p, 0);                // string_list = string_list->next
//! });
//! fb.ret(None);
//! mb.set_entry(f);
//! let module = mb.finish();
//!
//! stride_ir::verify_module(&module)?;
//! let analysis = FuncAnalysis::compute(module.function(f));
//! assert_eq!(analysis.loops.loops().len(), 1);
//! assert_eq!(module.function(f).loads().len(), 2);
//! # Ok::<(), stride_ir::VerifyError>(())
//! ```

pub mod analysis;
pub mod builder;
pub mod cfg;
pub mod dom;
pub mod function;
pub mod fuse;
pub mod instr;
pub mod loops;
pub mod parser;
pub mod pretty;
pub mod transform;
pub mod types;
pub mod verify;

pub use analysis::{
    equivalent_load_classes, is_loop_invariant, regs_defined_in_loop, EquivClass, FuncAnalysis,
};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use cfg::Cfg;
pub use dom::{DomTree, PostDomTree};
pub use function::{Block, Function, Global, Module};
pub use fuse::{fuse_module, FuseStats};
pub use instr::{BinOp, CmpOp, Instr, Op, Operand, Terminator};
pub use loops::{Loop, LoopForest};
pub use parser::{instr_from_string, module_from_string, term_from_string, ParseError};
pub use pretty::{function_to_string, instr_to_string, module_to_string, term_to_string};
pub use transform::{ensure_preheader, insert_at_end, insert_at_front, insert_before, split_edge};
pub use types::{BlockId, EdgeId, FuncId, GlobalId, InstrId, LoopId, Reg};
pub use verify::{verify_function, verify_module, VerifyError};
