//! Ergonomic construction of [`Module`]s and [`Function`]s.
//!
//! The workload generators build whole synthetic benchmarks through this
//! API, so it favors terseness: emitters allocate destination registers and
//! instruction ids automatically, and `*_to` variants write into an
//! existing register (needed for loop counters and pointer chasing, where a
//! register is redefined each iteration).

use crate::function::{Function, Module};
use crate::instr::{BinOp, CmpOp, Instr, Op, Operand, Terminator};
use crate::types::{BlockId, FuncId, GlobalId, InstrId, Reg};

/// Builds a [`Module`] incrementally.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates an empty module builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function with `num_params` parameters and a fresh entry
    /// block; returns its id. The body is filled in later via
    /// [`ModuleBuilder::function`].
    pub fn declare_function(&mut self, name: impl Into<String>, num_params: u32) -> FuncId {
        let id = FuncId::new(self.module.functions.len() as u32);
        let mut f = Function {
            id,
            name: name.into(),
            num_params,
            num_regs: num_params,
            next_instr: 0,
            entry: BlockId::new(0),
            blocks: Vec::new(),
        };
        f.new_block(); // entry block b0
        self.module.functions.push(f);
        id
    }

    /// Returns a [`FunctionBuilder`] positioned at the entry block of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by
    /// [`ModuleBuilder::declare_function`].
    pub fn function(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        let func = &mut self.module.functions[id.index()];
        let current = func.entry;
        FunctionBuilder { func, current }
    }

    /// Declares a zero-initialized global region.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        self.module.add_global(name, size)
    }

    /// Sets the module entry point.
    pub fn set_entry(&mut self, id: FuncId) {
        self.module.entry = id;
    }

    /// Finishes construction and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Appends instructions to one function, tracking a current block.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    func: &'a mut Function,
    current: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    /// Wraps an existing function, positioned at its entry block.
    pub fn reopen(func: &'a mut Function) -> Self {
        let current = func.entry;
        FunctionBuilder { func, current }
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_params`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.func.num_params, "parameter index out of range");
        Reg::new(i)
    }

    /// Allocates a fresh register.
    pub fn new_reg(&mut self) -> Reg {
        self.func.new_reg()
    }

    /// Creates a new block (terminated by `ret` until overwritten).
    pub fn new_block(&mut self) -> BlockId {
        self.func.new_block()
    }

    /// Returns the block currently being appended to.
    pub fn current(&self) -> BlockId {
        self.current
    }

    /// Moves the append cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.index() < self.func.blocks.len(), "unknown block");
        self.current = block;
    }

    /// Access the underlying function (read-only).
    pub fn func(&self) -> &Function {
        self.func
    }

    fn emit(&mut self, op: Op) -> InstrId {
        let id = self.func.new_instr_id();
        let block = &mut self.func.blocks[self.current.index()];
        block.instrs.push(Instr { id, pred: None, op });
        id
    }

    /// Emits an instruction guarded by predicate register `pred`.
    pub fn emit_pred(&mut self, pred: Reg, op: Op) -> InstrId {
        let id = self.func.new_instr_id();
        let block = &mut self.func.blocks[self.current.index()];
        block.instrs.push(Instr {
            id,
            pred: Some(pred),
            op,
        });
        id
    }

    /// `dst = value` into a fresh register.
    pub fn const_(&mut self, value: i64) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::Const { dst, value });
        dst
    }

    /// `dst = src` into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// `dst = src` into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Op::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `dst = lhs <op> rhs` into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::Bin {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dst
    }

    /// `dst = lhs <op> rhs` into an existing register.
    pub fn bin_to(
        &mut self,
        dst: Reg,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) {
        self.emit(Op::Bin {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// Wrapping add into a fresh register.
    pub fn add(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// Wrapping subtract into a fresh register.
    pub fn sub(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// Wrapping multiply into a fresh register.
    pub fn mul(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// `dst = (lhs <op> rhs)` as 0/1 into a fresh register.
    pub fn cmp(&mut self, op: CmpOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::Cmp {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dst
    }

    /// `dst = cond ? a : b` into a fresh register.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        on_true: impl Into<Operand>,
        on_false: impl Into<Operand>,
    ) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::Select {
            dst,
            cond: cond.into(),
            on_true: on_true.into(),
            on_false: on_false.into(),
        });
        dst
    }

    /// Branch-free table lookup `options[index]` as a cmp/select chain.
    ///
    /// Materialises `options[0]` and folds in each later entry with
    /// `r = (index == i) ? options[i] : r`, so an out-of-range index
    /// resolves to `options[0]`. Emits `2 * (len - 1) + 1` straight-line
    /// instructions into the current block — no control flow, which keeps
    /// the surrounding loop's trip count and block shape intact.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select_index(&mut self, index: Reg, options: &[i64]) -> Reg {
        assert!(!options.is_empty(), "select_index with no options");
        let mut result = self.const_(options[0]);
        for (i, &value) in options.iter().enumerate().skip(1) {
            let hit = self.cmp(CmpOp::Eq, index, i as i64);
            result = self.select(hit, value, result);
        }
        result
    }

    /// 8-byte load of `addr + offset` into a fresh register; returns the
    /// destination register and the load's instruction id (the key under
    /// which its stride profile is recorded).
    pub fn load(&mut self, addr: impl Into<Operand>, offset: i64) -> (Reg, InstrId) {
        let dst = self.new_reg();
        let id = self.emit(Op::Load {
            dst,
            addr: addr.into(),
            offset,
        });
        (dst, id)
    }

    /// 8-byte load into an existing register (pointer chasing:
    /// `p = p->next`). Returns the load's instruction id.
    pub fn load_to(&mut self, dst: Reg, addr: impl Into<Operand>, offset: i64) -> InstrId {
        self.emit(Op::Load {
            dst,
            addr: addr.into(),
            offset,
        })
    }

    /// 8-byte store of `value` to `addr + offset`.
    pub fn store(&mut self, value: impl Into<Operand>, addr: impl Into<Operand>, offset: i64) {
        self.emit(Op::Store {
            value: value.into(),
            addr: addr.into(),
            offset,
        });
    }

    /// Cache-line prefetch of `addr + offset`.
    pub fn prefetch(&mut self, addr: impl Into<Operand>, offset: i64) {
        self.emit(Op::Prefetch {
            addr: addr.into(),
            offset,
        });
    }

    /// Heap allocation of `size` bytes into a fresh register.
    pub fn alloc(&mut self, size: impl Into<Operand>) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::Alloc {
            dst,
            size: size.into(),
        });
        dst
    }

    /// Frees a heap allocation.
    pub fn free(&mut self, addr: impl Into<Operand>) {
        self.emit(Op::Free { addr: addr.into() });
    }

    /// Address of a global region into a fresh register.
    pub fn global_addr(&mut self, global: GlobalId) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::GlobalAddr { dst, global });
        dst
    }

    /// Calls `callee`, capturing the return value in a fresh register.
    pub fn call(&mut self, callee: FuncId, args: &[Operand]) -> Reg {
        let dst = self.new_reg();
        self.emit(Op::Call {
            dst: Some(dst),
            callee,
            args: args.to_vec(),
        });
        dst
    }

    /// Calls `callee`, discarding any return value.
    pub fn call_void(&mut self, callee: FuncId, args: &[Operand]) {
        self.emit(Op::Call {
            dst: None,
            callee,
            args: args.to_vec(),
        });
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.func.blocks[self.current.index()].term = Terminator::Br { target };
    }

    /// Terminates the current block with a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `then_ == else_`; use [`FunctionBuilder::br`] instead.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_: BlockId, else_: BlockId) {
        assert_ne!(then_, else_, "cond_br with identical targets; use br");
        self.func.blocks[self.current.index()].term = Terminator::CondBr {
            cond: cond.into(),
            then_,
            else_,
        };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.func.blocks[self.current.index()].term = Terminator::Ret { value };
    }

    /// Builds a counted loop running `count` iterations.
    ///
    /// Emits `i = 0` in the current block, creates header/body/exit blocks,
    /// and invokes `body` with the induction register `i` while positioned
    /// in the body block. The closure must leave the cursor in a block that
    /// falls through (it will be terminated with the back edge). On return
    /// the cursor is at the exit block.
    ///
    /// The generated shape has the loop header as the loop entry block with
    /// one incoming edge from outside, matching the trip-count computation
    /// of Fig. 10 in the paper.
    pub fn counted_loop(
        &mut self,
        count: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Reg),
    ) -> BlockId {
        let count = count.into();
        let i = self.const_(0);
        let header = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.br(header);

        self.switch_to(header);
        let cond = self.cmp(CmpOp::Lt, i, count);
        self.cond_br(cond, body_b, exit);

        self.switch_to(body_b);
        body(self, i);
        self.bin_to(i, BinOp::Add, i, 1);
        self.br(header);

        self.switch_to(exit);
        exit
    }

    /// Builds a `while (p != 0)` loop for pointer chasing.
    ///
    /// The closure is positioned in the body block and receives the pointer
    /// register; it must redefine `p` (e.g. `load_to(p, p, next_offset)`)
    /// and leave the cursor in a block that falls through to the back edge.
    /// On return the cursor is at the exit block.
    pub fn while_nonzero(&mut self, p: Reg, body: impl FnOnce(&mut Self, Reg)) -> BlockId {
        let header = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.br(header);

        self.switch_to(header);
        let cond = self.cmp(CmpOp::Ne, p, 0);
        self.cond_br(cond, body_b, exit);

        self.switch_to(body_b);
        body(self, p);
        self.br(header);

        self.switch_to(exit);
        exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_function_creates_entry_block() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 2);
        let m = mb.finish();
        let func = m.function(f);
        assert_eq!(func.num_params, 2);
        assert_eq!(func.num_regs, 2);
        assert_eq!(func.blocks.len(), 1);
        assert_eq!(func.entry, BlockId::new(0));
    }

    #[test]
    fn emitters_allocate_registers_and_ids() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let a = fb.const_(1);
        let b = fb.const_(2);
        let c = fb.add(a, b);
        fb.ret(Some(Operand::Reg(c)));
        let m = mb.finish();
        let func = m.function(f);
        assert_eq!(func.num_regs, 3);
        assert_eq!(func.instr_count(), 3);
        assert_eq!(func.blocks[0].instrs[0].id, InstrId::new(0));
        assert_eq!(func.blocks[0].instrs[2].id, InstrId::new(2));
    }

    #[test]
    fn counted_loop_shape() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let sum = fb.const_(0);
        fb.counted_loop(10i64, |fb, i| {
            fb.bin_to(sum, BinOp::Add, sum, i);
        });
        fb.ret(Some(Operand::Reg(sum)));
        let m = mb.finish();
        let func = m.function(f);
        // entry + header + body + exit
        assert_eq!(func.blocks.len(), 4);
        // entry branches to header
        assert_eq!(
            func.blocks[0].term.successors().collect::<Vec<_>>(),
            vec![BlockId::new(1)]
        );
        // header cond-branches to body and exit
        assert_eq!(
            func.blocks[1].term.successors().collect::<Vec<_>>(),
            vec![BlockId::new(2), BlockId::new(3)]
        );
        // body loops back to header
        assert_eq!(
            func.blocks[2].term.successors().collect::<Vec<_>>(),
            vec![BlockId::new(1)]
        );
    }

    #[test]
    fn while_nonzero_shape() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("chase", 1);
        let mut fb = mb.function(f);
        let p = fb.param(0);
        fb.while_nonzero(p, |fb, p| {
            fb.load_to(p, p, 0);
        });
        fb.ret(None);
        let m = mb.finish();
        let func = m.function(f);
        assert_eq!(func.blocks.len(), 4);
        // body redefines p through a load
        assert_eq!(func.blocks[2].instrs.len(), 1);
    }

    #[test]
    fn select_index_chain_shape() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("pick", 1);
        let mut fb = mb.function(f);
        let idx = fb.param(0);
        let picked = fb.select_index(idx, &[16, 48, 96, 128]);
        fb.ret(Some(Operand::Reg(picked)));
        let m = mb.finish();
        let block = &m.function(f).blocks[0];
        // const + 3 × (cmp, select), all straight-line.
        assert_eq!(block.instrs.len(), 7);
        assert!(matches!(block.instrs[0].op, Op::Const { value: 16, .. }));
        for pair in block.instrs[1..].chunks(2) {
            assert!(matches!(pair[0].op, Op::Cmp { op: CmpOp::Eq, .. }));
            assert!(matches!(pair[1].op, Op::Select { .. }));
        }
        match &block.instrs[6].op {
            Op::Select { dst, on_true, .. } => {
                assert_eq!(*dst, picked);
                assert!(matches!(on_true, Operand::Imm(128)));
            }
            other => panic!("expected trailing select, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no options")]
    fn select_index_rejects_empty_options() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("pick", 1);
        let mut fb = mb.function(f);
        let idx = fb.param(0);
        let _ = fb.select_index(idx, &[]);
    }

    #[test]
    #[should_panic(expected = "identical targets")]
    fn cond_br_rejects_same_targets() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let b = fb.new_block();
        let c = fb.const_(1);
        fb.cond_br(c, b, b);
    }

    #[test]
    #[should_panic(expected = "parameter index")]
    fn param_out_of_range_panics() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let fb = mb.function(f);
        let _ = fb.param(1);
    }

    #[test]
    fn predicated_emission() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let p = fb.cmp(CmpOp::Eq, 1i64, 1i64);
        let addr = fb.const_(64);
        fb.emit_pred(
            p,
            Op::Prefetch {
                addr: Operand::Reg(addr),
                offset: 0,
            },
        );
        let m = mb.finish();
        let func = m.function(f);
        let last = func.blocks[0].instrs.last().unwrap();
        assert_eq!(last.pred, Some(p));
    }
}
