//! One database entry: the accumulated profiles of a `(workload, module
//! hash)` key, its text serialization, and the cross-run merge.

use std::fmt;
use std::fmt::Write as _;
use stride_profiling::{
    stride_profile_from_text, stride_profile_to_text, EdgeProfile, ProfileParseError, StrideProfile,
};

/// A profile-database failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Filesystem trouble (message includes the path).
    Io(String),
    /// A malformed entry file.
    Parse(ProfileParseError),
    /// The entry was profiled on a different module than the one on hand:
    /// the module changed since the profile was taken.
    Stale {
        /// The workload whose entry is stale.
        workload: String,
        /// Hash the caller's module has.
        expected: u64,
        /// Hash the entry was recorded under.
        found: u64,
    },
    /// Two entries with different keys cannot merge.
    KeyMismatch(String),
    /// No entry under the requested key.
    NotFound {
        /// The missing workload.
        workload: String,
        /// The missing module hash.
        module_hash: u64,
    },
    /// The operation is unsafe while the WAL holds an unrecovered tail
    /// (e.g. gc on a store opened without recovery).
    PendingWal {
        /// Why the operation was refused and how to proceed.
        detail: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(msg) => write!(f, "profile db i/o: {msg}"),
            DbError::Parse(e) => write!(f, "profile db entry: {e}"),
            DbError::Stale {
                workload,
                expected,
                found,
            } => write!(
                f,
                "stale profile for {workload}: module hash {expected:016x} \
                 but entry was profiled on {found:016x}"
            ),
            DbError::KeyMismatch(msg) => write!(f, "profile key mismatch: {msg}"),
            DbError::NotFound {
                workload,
                module_hash,
            } => write!(f, "no profile for {workload} @ {module_hash:016x}"),
            DbError::PendingWal { detail } => write!(f, "pending wal: {detail}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ProfileParseError> for DbError {
    fn from(e: ProfileParseError) -> Self {
        DbError::Parse(e)
    }
}

fn perr<T>(line: usize, message: impl Into<String>) -> Result<T, DbError> {
    Err(DbError::Parse(ProfileParseError {
        line,
        col: 1,
        message: message.into(),
    }))
}

/// Accumulated profiles for one `(workload, module hash)` key.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEntry {
    /// Workload name (also the file-name stem; restricted charset).
    pub workload: String,
    /// Content hash of the module the profiles were measured on
    /// ([`crate::module_hash`]).
    pub module_hash: u64,
    /// How many training runs have been merged into this entry.
    pub runs: u64,
    /// Raw per-function frequency counter tables
    /// ([`EdgeProfile::tables`]); stored module-free so the database can
    /// be read without the IR on hand.
    pub edge_tables: Vec<Vec<u64>>,
    /// Accumulated stride profile.
    pub stride: StrideProfile,
}

impl ProfileEntry {
    /// Packages one run's profiles as a fresh entry (`runs = 1`).
    pub fn from_run(
        workload: impl Into<String>,
        module_hash: u64,
        edge: &EdgeProfile,
        stride: &StrideProfile,
    ) -> Self {
        ProfileEntry {
            workload: workload.into(),
            module_hash,
            runs: 1,
            edge_tables: edge.tables().to_vec(),
            stride: stride.clone(),
        }
    }

    /// The frequency profile as an [`EdgeProfile`] again (feedback pass).
    pub fn edge_profile(&self) -> EdgeProfile {
        EdgeProfile::from_tables(self.edge_tables.clone())
    }

    /// Errors with [`DbError::Stale`] unless the entry was profiled on the
    /// module with `current_hash`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Stale`] on a hash mismatch.
    pub fn check_fresh(&self, current_hash: u64) -> Result<(), DbError> {
        if self.module_hash != current_hash {
            return Err(DbError::Stale {
                workload: self.workload.clone(),
                expected: current_hash,
                found: self.module_hash,
            });
        }
        Ok(())
    }

    /// Merges another run (or accumulated entry) into this one: edge
    /// counters and site counters sum saturating, top-stride tables join
    /// by stride value into canonical `(count desc, stride asc)` order,
    /// `runs` adds up.
    ///
    /// The operation is commutative and associative **byte-for-byte**
    /// (saturating addition is itself associative, and the canonical top
    /// order is total), and conserves every counter total (saturating at
    /// `u64::MAX`). Replication relies on this: replicas of a shard apply
    /// the same set of merge deltas in whatever order the network
    /// delivers them and must converge to identical store bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::KeyMismatch`] when workloads or module hashes
    /// differ (profiles of different programs must not be blended), also
    /// covering edge-table shape drift, which a matching content hash
    /// rules out.
    pub fn merge(&mut self, other: &ProfileEntry) -> Result<(), DbError> {
        if self.workload != other.workload {
            return Err(DbError::KeyMismatch(format!(
                "cannot merge profile of {} into {}",
                other.workload, self.workload
            )));
        }
        if self.module_hash != other.module_hash {
            return Err(DbError::Stale {
                workload: self.workload.clone(),
                expected: self.module_hash,
                found: other.module_hash,
            });
        }
        if self.edge_tables.len() != other.edge_tables.len()
            || self
                .edge_tables
                .iter()
                .zip(&other.edge_tables)
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(DbError::KeyMismatch(format!(
                "edge counter spaces differ for {} despite equal module hash",
                self.workload
            )));
        }
        for (ours, theirs) in self.edge_tables.iter_mut().zip(&other.edge_tables) {
            for (a, b) in ours.iter_mut().zip(theirs) {
                *a = a.saturating_add(*b);
            }
        }
        self.stride.merge(&other.stride);
        self.runs = self.runs.saturating_add(other.runs);
        Ok(())
    }

    /// Total of all edge counters.
    pub fn edge_total(&self) -> u64 {
        self.edge_tables
            .iter()
            .flatten()
            .fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Serializes the entry (versioned, line-oriented, human-auditable).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# profdb v1\n");
        let _ = writeln!(out, "workload {}", self.workload);
        let _ = writeln!(out, "module {:016x}", self.module_hash);
        let _ = writeln!(out, "runs {}", self.runs);
        let _ = writeln!(out, "# edge tables funcs={}", self.edge_tables.len());
        for (i, table) in self.edge_tables.iter().enumerate() {
            let _ = writeln!(out, "table {i} len={}", table.len());
            for (e, &c) in table.iter().enumerate() {
                if c != 0 {
                    let _ = writeln!(out, "e{e} {c}");
                }
            }
        }
        out.push_str(&stride_profile_to_text(&self.stride));
        out
    }

    /// Parses an entry written by [`ProfileEntry::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Parse`] on malformed text.
    pub fn from_text(text: &str) -> Result<Self, DbError> {
        let mut lines = text.lines().enumerate();
        let mut workload: Option<String> = None;
        let mut module_hash: Option<u64> = None;
        let mut runs: Option<u64> = None;
        let mut edge_tables: Vec<Vec<u64>> = Vec::new();
        let mut stride_start: Option<usize> = None;

        match lines.next() {
            Some((_, l)) if l.trim() == "# profdb v1" => {}
            Some((_, l)) => return perr(1, format!("expected `# profdb v1`, got `{}`", l.trim())),
            None => return perr(1, "empty entry"),
        }
        for (idx, raw) in lines {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.starts_with("# stride profile") {
                stride_start = Some(idx);
                break;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(v) = line.strip_prefix("workload ") {
                let v = v.trim();
                if v.is_empty() {
                    return perr(lineno, "empty workload name");
                }
                workload = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("module ") {
                let h = u64::from_str_radix(v.trim(), 16).map_err(|_| {
                    DbError::Parse(ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: format!("bad module hash `{v}`"),
                    })
                })?;
                module_hash = Some(h);
            } else if let Some(v) = line.strip_prefix("runs ") {
                let n: u64 = v.trim().parse().map_err(|_| {
                    DbError::Parse(ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: format!("bad run count `{v}`"),
                    })
                })?;
                runs = Some(n);
            } else if let Some(rest) = line.strip_prefix("table ") {
                let (idx_s, len_s) = rest.split_once(' ').unwrap_or((rest, ""));
                let ti: usize = idx_s.parse().map_err(|_| {
                    DbError::Parse(ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: format!("bad table index `{idx_s}`"),
                    })
                })?;
                if ti != edge_tables.len() {
                    return perr(lineno, format!("table {ti} out of order"));
                }
                let len: usize = len_s
                    .trim()
                    .strip_prefix("len=")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        DbError::Parse(ProfileParseError {
                            line: lineno,
                            col: 1,
                            message: format!("bad table length in `{line}`"),
                        })
                    })?;
                edge_tables.push(vec![0u64; len]);
            } else if line.starts_with('e') {
                let Some(table) = edge_tables.last_mut() else {
                    return perr(lineno, "counter before any `table` line");
                };
                let (e_s, c_s) = line.split_once(' ').unwrap_or((line, ""));
                let e: usize = e_s
                    .strip_prefix('e')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        DbError::Parse(ProfileParseError {
                            line: lineno,
                            col: 1,
                            message: format!("bad counter id `{e_s}`"),
                        })
                    })?;
                if e >= table.len() {
                    return perr(lineno, format!("counter `e{e}` out of range"));
                }
                let c: u64 = c_s.trim().parse().map_err(|_| {
                    DbError::Parse(ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: format!("bad count `{c_s}`"),
                    })
                })?;
                table[e] = c;
            } else {
                return perr(lineno, format!("unrecognized line `{line}`"));
            }
        }

        let Some(workload) = workload else {
            return perr(1, "entry missing `workload`");
        };
        let Some(module_hash) = module_hash else {
            return perr(1, "entry missing `module`");
        };
        let Some(runs) = runs else {
            return perr(1, "entry missing `runs`");
        };
        let stride = match stride_start {
            Some(start) => {
                let sub: String = text.lines().skip(start).map(|l| format!("{l}\n")).collect();
                stride_profile_from_text(&sub).map_err(|mut e| {
                    e.line += start; // report against the whole entry file
                    DbError::Parse(e)
                })?
            }
            None => StrideProfile::new(),
        };
        Ok(ProfileEntry {
            workload,
            module_hash,
            runs,
            edge_tables,
            stride,
        })
    }

    /// One-line summary (`stridectl db list` / `show`).
    pub fn summary(&self) -> String {
        format!(
            "{} @ {:016x}: {} run(s), {} edge count(s) over {} func(s), {} stride site(s)",
            self.workload,
            self.module_hash,
            self.runs,
            self.edge_total(),
            self.edge_tables.len(),
            self.stride.len()
        )
    }

    /// Multi-line human-readable rendering: the summary plus the top
    /// stride sites by total frequency.
    pub fn show(&self) -> String {
        let mut out = self.summary();
        out.push('\n');
        let mut sites: Vec<_> = self.stride.iter().collect();
        sites.sort_by_key(|&(f, s, p)| (std::cmp::Reverse(p.total_freq), f, s));
        for (func, site, p) in sites.into_iter().take(10) {
            let top = p
                .top1()
                .map(|(s, c)| format!("top stride {s} x{c}"))
                .unwrap_or_else(|| "no stride".to_string());
            let _ = writeln!(
                out,
                "  {func} {site}: total {} zero {} zdiff {} — {top}",
                p.total_freq, p.num_zero_stride, p.num_zero_diff
            );
        }
        out
    }

    /// Deterministic human-readable diff of two entries (same or different
    /// keys): header fields, edge totals, and per-site stride deltas.
    pub fn diff(&self, other: &ProfileEntry) -> String {
        let mut out = String::new();
        if self.workload != other.workload {
            let _ = writeln!(out, "workload: {} vs {}", self.workload, other.workload);
        }
        if self.module_hash != other.module_hash {
            let _ = writeln!(
                out,
                "module:   {:016x} vs {:016x}",
                self.module_hash, other.module_hash
            );
        }
        if self.runs != other.runs {
            let _ = writeln!(out, "runs:     {} vs {}", self.runs, other.runs);
        }
        let (ta, tb) = (self.edge_total(), other.edge_total());
        if ta != tb {
            let _ = writeln!(out, "edge total: {ta} vs {tb}");
        }
        let mut keys: Vec<_> = self
            .stride
            .iter()
            .map(|(f, s, _)| (f, s))
            .chain(other.stride.iter().map(|(f, s, _)| (f, s)))
            .collect();
        keys.sort();
        keys.dedup();
        for (f, s) in keys {
            match (self.stride.get(f, s), other.stride.get(f, s)) {
                (Some(a), Some(b)) if a != b => {
                    let _ = writeln!(
                        out,
                        "site {f} {s}: total {} vs {}, top1 {:?} vs {:?}",
                        a.total_freq,
                        b.total_freq,
                        a.top1(),
                        b.top1()
                    );
                }
                (Some(_), None) => {
                    let _ = writeln!(out, "site {f} {s}: only in left");
                }
                (None, Some(_)) => {
                    let _ = writeln!(out, "site {f} {s}: only in right");
                }
                _ => {}
            }
        }
        if out.is_empty() {
            out.push_str("identical\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{FuncId, InstrId};
    use stride_profiling::LoadStrideProfile;

    fn site(total: u64, top: Vec<(i64, u64)>) -> LoadStrideProfile {
        LoadStrideProfile {
            top,
            total_freq: total,
            num_zero_stride: 1,
            num_zero_diff: total / 2,
            total_diffs: total.saturating_sub(1),
        }
    }

    fn entry(runs: u64) -> ProfileEntry {
        let mut stride = StrideProfile::new();
        stride.insert(FuncId::new(0), InstrId::new(3), site(100, vec![(64, 90)]));
        ProfileEntry {
            workload: "mcf".into(),
            module_hash: 0xabcd,
            runs,
            edge_tables: vec![vec![0, 5, 7], vec![9]],
            stride,
        }
    }

    #[test]
    fn text_round_trip() {
        let e = entry(3);
        let text = e.to_text();
        let back = ProfileEntry::from_text(&text).expect("parses");
        assert_eq!(back, e);
    }

    #[test]
    fn merge_sums_and_counts_runs() {
        let mut a = entry(1);
        let b = entry(2);
        a.merge(&b).expect("merge");
        assert_eq!(a.runs, 3);
        assert_eq!(a.edge_tables[0][1], 10);
        assert_eq!(
            a.stride
                .get(FuncId::new(0), InstrId::new(3))
                .unwrap()
                .total_freq,
            200
        );
    }

    #[test]
    fn merge_rejects_other_module() {
        let mut a = entry(1);
        let mut b = entry(1);
        b.module_hash = 0xdead;
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(err, DbError::Stale { .. }), "{err}");
    }

    #[test]
    fn merge_rejects_other_workload() {
        let mut a = entry(1);
        let mut b = entry(1);
        b.workload = "gap".into();
        assert!(matches!(a.merge(&b), Err(DbError::KeyMismatch(_))));
    }

    #[test]
    fn staleness_check() {
        let e = entry(1);
        assert!(e.check_fresh(0xabcd).is_ok());
        let err = e.check_fresh(0x1234).unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");
    }

    #[test]
    fn diff_reports_deltas_and_identity() {
        let a = entry(1);
        let mut b = entry(1);
        assert_eq!(a.diff(&b), "identical\n");
        b.stride
            .insert(FuncId::new(1), InstrId::new(0), site(5, vec![]));
        let d = a.diff(&b);
        assert!(d.contains("only in right"), "{d}");
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(ProfileEntry::from_text("").is_err());
        assert!(ProfileEntry::from_text("# profdb v2\n").is_err());
        let missing = "# profdb v1\nworkload mcf\nruns 1\n";
        let err = ProfileEntry::from_text(missing).unwrap_err();
        assert!(err.to_string().contains("module"), "{err}");
    }

    #[test]
    fn stride_section_errors_report_entry_lines() {
        let text = "# profdb v1\nworkload mcf\nmodule 00ff\nruns 1\n\
                    # stride profile v1\nbogus\n";
        let err = ProfileEntry::from_text(text).unwrap_err();
        let DbError::Parse(p) = err else {
            panic!("expected parse error")
        };
        assert_eq!(p.line, 6);
    }
}
