//! The on-disk store: one text file per `(workload, module hash)` key
//! under a root directory, with atomic replace on write, a write-ahead
//! log in front of every merge, and checksum trailers on entry files.
//!
//! Durability contract: [`ProfileDb::merge_store_logged`] appends the
//! post-merge state to the WAL and fsyncs it *before* rewriting the
//! entry file — the commit point is the fsync. A crash anywhere after it
//! is repaired by [`crate::recovery::recover`] at the next open; a crash
//! before it loses only an unacknowledged merge. Idempotency keys
//! (nonzero request ids) are recorded in the WAL and deduplicated both
//! live and at replay, so a retried merge can never double-count.

use crate::entry::{DbError, ProfileEntry};
use crate::hash::fnv1a64;
use crate::recovery::{recover, RecoveryReport};
use crate::repl::DeltaRecord;
use crate::wal::{
    scan_chain, write_atomic, DiskFaults, RecordKind, ScanItem, SegmentConfig, Wal, WalRecord,
};
use std::collections::{HashSet, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// One key in the database, as listed without parsing whole entries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DbRecord {
    /// Workload name.
    pub workload: String,
    /// Module content hash.
    pub module_hash: u64,
    /// Runs merged into the entry.
    pub runs: u64,
}

/// One line of the anti-entropy digest table: a key plus the fnv1a64 of
/// its entry file's bytes. Two replicas that applied the same delta set
/// have byte-identical entry files (the CRDT merge is canonical), so
/// equal tables mean converged stores.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DigestEntry {
    /// Workload name.
    pub workload: String,
    /// Module content hash.
    pub module_hash: u64,
    /// fnv1a64 over the entry file's bytes.
    pub digest: u64,
}

/// Most-recent idempotency keys remembered for live dedup (and carried
/// across checkpoints). Old ids age out FIFO.
const APPLIED_IDS_CAP: usize = 4096;

/// Subdirectory holding the pre-merge delta retention chain.
const RETAIN_DIR: &str = "retain";

#[derive(Debug)]
struct DbState {
    wal: Wal,
    applied: HashSet<u64>,
    applied_order: VecDeque<u64>,
    dedup_hits: u64,
    /// Pre-merge replication deltas kept for anti-entropy re-send. The
    /// WAL proper logs *post-merge* redo states — absolute snapshots
    /// that would double-count if merged into a diverged sibling — so
    /// the exact incoming deltas are retained separately, in their own
    /// segmented chain under [`RETAIN_DIR`]. The window is cleared by
    /// [`ProfileDb::checkpoint`]; repair can only re-send deltas applied
    /// since then (hinted handoff, not anti-entropy, is the primary
    /// loss-prevention path).
    retain_wal: Wal,
    retained: Vec<DeltaRecord>,
}

impl DbState {
    fn remember(&mut self, id: u64) {
        if id == 0 || !self.applied.insert(id) {
            return;
        }
        self.applied_order.push_back(id);
        while self.applied_order.len() > APPLIED_IDS_CAP {
            if let Some(old) = self.applied_order.pop_front() {
                self.applied.remove(&old);
            }
        }
    }
}

/// A profile database rooted at a directory.
///
/// Concurrency: entry writes are atomic (temp file + fsync + rename) and
/// the read-merge-write sequence of [`ProfileDb::merge_store_logged`] is
/// serialized on an internal lock, so concurrent merges from the daemon's
/// worker pool never interleave mid-merge.
#[derive(Debug)]
pub struct ProfileDb {
    root: PathBuf,
    state: Mutex<DbState>,
    recovered: bool,
    recovery: Option<RecoveryReport>,
    segments: SegmentConfig,
}

const SUFFIX: &str = ".profdb";
const CHECKSUM_PREFIX: &str = "# checksum ";

fn io_err(path: &Path, e: std::io::Error) -> DbError {
    DbError::Io(format!("{}: {e}", path.display()))
}

/// Workload names become file-name stems, so keep them to a safe charset.
fn check_workload_name(name: &str) -> Result<(), DbError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.');
    if ok {
        Ok(())
    } else {
        Err(DbError::KeyMismatch(format!(
            "workload name `{name}` not storable (allowed: alphanumerics, `_`, `-`, `.`)"
        )))
    }
}

fn entry_path(root: &Path, workload: &str, module_hash: u64) -> PathBuf {
    root.join(format!("{workload}@{module_hash:016x}{SUFFIX}"))
}

/// Entry text plus its checksum trailer line.
fn entry_text_checksummed(entry: &ProfileEntry) -> String {
    let text = entry.to_text();
    format!("{text}{CHECKSUM_PREFIX}{:016x}\n", fnv1a64(text.as_bytes()))
}

/// Verifies an entry file's checksum trailer when one is present.
/// Trailer-less files (pre-durability format) pass unverified.
fn verify_entry_text(text: &str) -> Result<(), String> {
    let Some(start) = text.rfind(CHECKSUM_PREFIX) else {
        return Ok(());
    };
    // The trailer must be the final line.
    let line = text[start..].trim_end();
    if text[start + line.len()..].trim() != "" {
        return Ok(()); // a checksum-looking line mid-file is just a comment
    }
    let hex = line[CHECKSUM_PREFIX.len()..].trim();
    let Ok(want) = u64::from_str_radix(hex, 16) else {
        return Err(format!("unparsable checksum trailer `{line}`"));
    };
    let got = fnv1a64(&text.as_bytes()[..start]);
    if got != want {
        return Err(format!(
            "entry checksum mismatch: file says {want:016x}, content hashes to {got:016x}"
        ));
    }
    Ok(())
}

/// Atomically (and durably) writes `entry` under `root`. Shared with
/// recovery's replay path.
pub(crate) fn write_entry_file(root: &Path, entry: &ProfileEntry) -> Result<(), DbError> {
    let path = entry_path(root, &entry.workload, entry.module_hash);
    write_atomic(&path, entry_text_checksummed(entry).as_bytes())
}

/// Opens (creating if needed) the retention chain under `root/retain`,
/// replaying it into the in-memory window. A torn active-log tail is
/// truncated (the merge it retained was never acknowledged as retained);
/// checksum-corrupt records are skipped — a hole in the window only
/// narrows what anti-entropy can re-send.
fn open_retention(root: &Path) -> Result<(Wal, Vec<DeltaRecord>), DbError> {
    let dir = root.join(RETAIN_DIR);
    fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
    let chain = scan_chain(&dir, &DiskFaults::default())?;
    let mut retained = Vec::new();
    for seg in &chain {
        for item in &seg.scan.items {
            match item {
                ScanItem::Record { record, .. } => {
                    if record.kind == RecordKind::Entry {
                        retained.push(DeltaRecord {
                            req_id: record.req_id,
                            entry_text: String::from_utf8_lossy(&record.payload).into_owned(),
                        });
                    }
                }
                ScanItem::Corrupt { .. } => {}
                ScanItem::TornTail { offset } => {
                    if seg.is_active() {
                        Wal::truncate_to(&dir.join(&seg.name), *offset)?;
                    }
                }
            }
        }
    }
    let wal = Wal::open_append(&dir, retained.len() as u64, DiskFaults::default())?;
    Ok((wal, retained))
}

/// Raw text of the entry file under a key (`Ok(None)` when absent). No
/// checksum verification — recovery wants the raw bytes to judge.
pub(crate) fn entry_file_text(
    root: &Path,
    workload: &str,
    module_hash: u64,
) -> Result<Option<String>, DbError> {
    let path = entry_path(root, workload, module_hash);
    match fs::read_to_string(&path) {
        Ok(t) => Ok(Some(t)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err(&path, e)),
    }
}

impl ProfileDb {
    /// Opens (creating if needed) a database rooted at `root`, running
    /// crash recovery first: complete WAL records are replayed, torn
    /// tails truncated, and checksum-failed records quarantined.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the directory cannot be created or
    /// repair writes fail. Corrupt content never fails the open.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, DbError> {
        Self::open_with(root, DiskFaults::default())
    }

    /// [`ProfileDb::open`] with injected disk faults (chaos testing).
    ///
    /// # Errors
    ///
    /// As [`ProfileDb::open`].
    pub fn open_with(root: impl Into<PathBuf>, faults: DiskFaults) -> Result<Self, DbError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        let report = recover(&root, &faults)?;
        let pending = (report.replayed + report.already_applied) as u64;
        let wal = Wal::open_append(&root, pending, faults)?;
        let (retain_wal, retained) = open_retention(&root)?;
        let mut state = DbState {
            wal,
            applied: HashSet::new(),
            applied_order: VecDeque::new(),
            dedup_hits: 0,
            retain_wal,
            retained,
        };
        for id in &report.applied_ids {
            state.remember(*id);
        }
        Ok(ProfileDb {
            root,
            state: Mutex::new(state),
            recovered: true,
            recovery: Some(report),
            segments: SegmentConfig::default(),
        })
    }

    /// Opens without running recovery — for inspection tools. A store
    /// opened this way refuses to [`ProfileDb::gc`] while the WAL holds
    /// a pending tail, since removal decisions made on unreplayed state
    /// would be wrong.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on directory or WAL trouble.
    pub fn open_unrecovered(root: impl Into<PathBuf>) -> Result<Self, DbError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        let chain = scan_chain(&root, &DiskFaults::default())?;
        let pending: usize = chain.iter().map(|s| s.scan.pending_entries()).sum();
        let known: Vec<u64> = chain.iter().flat_map(|s| s.scan.known_ids()).collect();
        let wal = Wal::open_append(&root, pending as u64, DiskFaults::default())?;
        let (retain_wal, retained) = open_retention(&root)?;
        let mut state = DbState {
            wal,
            applied: HashSet::new(),
            applied_order: VecDeque::new(),
            dedup_hits: 0,
            retain_wal,
            retained,
        };
        for id in known {
            state.remember(id);
        }
        Ok(ProfileDb {
            root,
            state: Mutex::new(state),
            recovered: false,
            recovery: None,
            segments: SegmentConfig::default(),
        })
    }

    /// Adjusts the WAL segmentation policy: when the active log seals
    /// into a numbered segment and when the chain compacts. Call before
    /// sharing the handle (tests shrink the thresholds to force churn;
    /// capacity tuning raises them).
    pub fn configure_segments(&mut self, config: SegmentConfig) {
        self.segments = SegmentConfig {
            seal_bytes: config.seal_bytes.max(1),
            max_live_segments: config.max_live_segments.max(1),
        };
    }

    /// The active segmentation policy.
    pub fn segment_config(&self) -> SegmentConfig {
        self.segments
    }

    /// The database's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// What recovery found at open (absent for
    /// [`ProfileDb::open_unrecovered`]).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DbState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Entry records in the WAL not yet folded away by a checkpoint.
    pub fn wal_pending(&self) -> bool {
        self.lock().wal.has_pending()
    }

    /// Merges deduplicated by an already-seen idempotency key.
    pub fn dedup_hits(&self) -> u64 {
        self.lock().dedup_hits
    }

    /// WAL observability counters (appends/syncs/checkpoints since open).
    pub fn wal_stats(&self) -> crate::wal::WalStats {
        self.lock().wal.stats()
    }

    fn path_for(&self, workload: &str, module_hash: u64) -> PathBuf {
        entry_path(&self.root, workload, module_hash)
    }

    /// Writes `entry`, replacing any previous entry under its key. This
    /// is a raw write (no WAL record); use
    /// [`ProfileDb::merge_store_logged`] for crash-safe accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble and
    /// [`DbError::KeyMismatch`] for unstorable workload names.
    pub fn store(&self, entry: &ProfileEntry) -> Result<(), DbError> {
        check_workload_name(&entry.workload)?;
        write_entry_file(&self.root, entry)
    }

    /// Loads the entry under `(workload, module_hash)`, verifying its
    /// checksum trailer when present.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NotFound`] when absent, [`DbError::Parse`] for
    /// a corrupt file (bad checksum included), [`DbError::Io`] otherwise.
    pub fn load(&self, workload: &str, module_hash: u64) -> Result<ProfileEntry, DbError> {
        check_workload_name(workload)?;
        let path = self.path_for(workload, module_hash);
        let text = match entry_file_text(&self.root, workload, module_hash)? {
            Some(t) => t,
            None => {
                return Err(DbError::NotFound {
                    workload: workload.to_string(),
                    module_hash,
                })
            }
        };
        if let Err(msg) = verify_entry_text(&text) {
            return Err(DbError::Parse(stride_profiling::ProfileParseError {
                line: 1,
                col: 1,
                message: format!("{}: {msg}", path.display()),
            }));
        }
        let entry = ProfileEntry::from_text(&text)?;
        if entry.workload != workload || entry.module_hash != module_hash {
            return Err(DbError::KeyMismatch(format!(
                "file {} holds entry for {} @ {:016x}",
                path.display(),
                entry.workload,
                entry.module_hash
            )));
        }
        Ok(entry)
    }

    /// Merges `entry` into the stored entry under the same key (or
    /// inserts it) and returns the accumulated entry. Crash-safe: see
    /// [`ProfileDb::merge_store_logged`], which this calls with no
    /// idempotency key.
    ///
    /// # Errors
    ///
    /// Propagates load/store failures and merge key mismatches.
    pub fn merge_store(&self, entry: &ProfileEntry) -> Result<ProfileEntry, DbError> {
        self.merge_store_logged(entry, 0).map(|(e, _)| e)
    }

    /// The crash-safe merge: WAL-append the post-merge state, fsync,
    /// then apply to the entry file. Returns the accumulated entry and
    /// whether the request id was a duplicate (in which case nothing was
    /// merged and the stored entry is returned as-is).
    ///
    /// An acknowledgement sent after this returns `Ok` is durable: the
    /// fsynced redo record reconstructs the entry file even if the
    /// process dies before (or during) the apply.
    ///
    /// # Errors
    ///
    /// Propagates load/parse/merge failures, and [`DbError::Io`] when
    /// the WAL append or fsync fails — in which case the merge must be
    /// treated as *not applied* and retried.
    pub fn merge_store_logged(
        &self,
        entry: &ProfileEntry,
        req_id: u64,
    ) -> Result<(ProfileEntry, bool), DbError> {
        check_workload_name(&entry.workload)?;
        let mut st = self.lock();
        if req_id != 0 && st.applied.contains(&req_id) {
            st.dedup_hits += 1;
            let stored = self.load(&entry.workload, entry.module_hash)?;
            return Ok((stored, true));
        }
        let merged = match self.load(&entry.workload, entry.module_hash) {
            Ok(mut existing) => {
                existing.merge(entry)?;
                existing
            }
            Err(DbError::NotFound { .. }) => entry.clone(),
            Err(e) => return Err(e),
        };
        st.wal
            .append(&WalRecord::entry(req_id, &merged.to_text()))?;
        st.wal.sync()?;
        write_entry_file(&self.root, &merged)?;
        st.remember(req_id);
        // Segment policy, applied inside the same critical section so
        // the live-segment bound holds between any two merges: roll the
        // active log once it outgrows its cap, and compact the chain
        // once the roll would leave too many live segments.
        if st.wal.len() > self.segments.seal_bytes {
            st.wal.seal()?;
        }
        if st.wal.live_segments() > self.segments.max_live_segments {
            let ids: Vec<u64> = st.applied_order.iter().copied().collect();
            st.wal.checkpoint(&ids)?;
        }
        Ok((merged, false))
    }

    /// Folds the whole WAL chain away (compaction): all redo state is
    /// already applied, so the active log is atomically replaced by a
    /// fresh one carrying only the idempotency-id set and a clean
    /// footer, and sealed segments are deleted. Called on graceful
    /// daemon shutdown and automatically when the chain outgrows
    /// [`SegmentConfig::max_live_segments`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble (the old log stays).
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let mut st = self.lock();
        let ids: Vec<u64> = st.applied_order.iter().copied().collect();
        st.wal.checkpoint(&ids)?;
        // The retention window rides the checkpoint: everything before
        // it is assumed replicated (graceful shutdown), so anti-entropy
        // only ever needs the deltas applied since.
        st.retained.clear();
        st.retain_wal.checkpoint(&[])
    }

    /// Lists all keys, sorted by `(workload, module_hash)`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on directory trouble; unreadable or
    /// foreign files are skipped.
    pub fn list(&self) -> Result<Vec<DbRecord>, DbError> {
        self.list_verified().map(|(records, _)| records)
    }

    /// Like [`ProfileDb::list`], additionally counting entry files that
    /// failed to load or verify (integrity checking).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on directory trouble.
    pub fn list_verified(&self) -> Result<(Vec<DbRecord>, usize), DbError> {
        let mut out = Vec::new();
        let mut bad = 0usize;
        let dir = fs::read_dir(&self.root).map_err(|e| io_err(&self.root, e))?;
        for item in dir {
            let item = item.map_err(|e| io_err(&self.root, e))?;
            let name = item.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(SUFFIX)) else {
                continue;
            };
            let Some((workload, hash_s)) = stem.rsplit_once('@') else {
                continue;
            };
            let Ok(module_hash) = u64::from_str_radix(hash_s, 16) else {
                continue;
            };
            let Ok(entry) = self.load(workload, module_hash) else {
                bad += 1;
                continue;
            };
            out.push(DbRecord {
                workload: workload.to_string(),
                module_hash,
                runs: entry.runs,
            });
        }
        out.sort();
        Ok((out, bad))
    }

    /// Durably appends one pre-merge replication delta to the retention
    /// window (append + fsync, torn tails cut at reopen). Called by
    /// [`ProfileDb::apply_deltas`] after a non-duplicate apply so
    /// anti-entropy can re-send the exact delta later.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on disk trouble; the merge itself is
    /// already durable, so the caller may treat this as best-effort.
    pub(crate) fn retain_delta(&self, req_id: u64, entry_text: &str) -> Result<(), DbError> {
        let mut st = self.lock();
        st.retain_wal
            .append(&WalRecord::entry(req_id, entry_text))?;
        st.retain_wal.sync()?;
        st.retained.push(DeltaRecord {
            req_id,
            entry_text: entry_text.to_string(),
        });
        if st.retain_wal.len() > self.segments.seal_bytes {
            st.retain_wal.seal()?;
        }
        Ok(())
    }

    /// Snapshot of the retained pre-merge delta window, in apply order —
    /// what anti-entropy re-sends to a diverged sibling. Empty after a
    /// checkpoint (the documented repair-window bound).
    pub fn retained_deltas(&self) -> Vec<DeltaRecord> {
        self.lock().retained.clone()
    }

    /// Per-key digest table: the fnv1a64 of every entry file's bytes,
    /// sorted by `(workload, module_hash)`. Cheap to diff across the
    /// replicas of a shard — any differing or missing line localizes
    /// divergence to one key.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on directory or file read trouble.
    pub fn digest_table(&self) -> Result<Vec<DigestEntry>, DbError> {
        let mut out = Vec::new();
        let dir = fs::read_dir(&self.root).map_err(|e| io_err(&self.root, e))?;
        for item in dir {
            let item = item.map_err(|e| io_err(&self.root, e))?;
            let name = item.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(SUFFIX)) else {
                continue;
            };
            let Some((workload, hash_s)) = stem.rsplit_once('@') else {
                continue;
            };
            let Ok(module_hash) = u64::from_str_radix(hash_s, 16) else {
                continue;
            };
            let path = item.path();
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            out.push(DigestEntry {
                workload: workload.to_string(),
                module_hash,
                digest: fnv1a64(&bytes),
            });
        }
        out.sort();
        Ok(out)
    }

    /// Order-independent fingerprint of the store's *profile content*:
    /// fnv1a64 over every entry file's name and bytes in sorted name
    /// order. WAL/quarantine state is deliberately excluded — two
    /// replicas that applied the same set of merge deltas must compare
    /// equal even when their logs sealed and compacted differently.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on directory or file read trouble.
    pub fn content_digest(&self) -> Result<u64, DbError> {
        let mut names: Vec<String> = Vec::new();
        let dir = fs::read_dir(&self.root).map_err(|e| io_err(&self.root, e))?;
        for item in dir {
            let item = item.map_err(|e| io_err(&self.root, e))?;
            if let Some(name) = item.file_name().to_str() {
                if name.ends_with(SUFFIX) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        let mut buf = Vec::new();
        for name in &names {
            buf.extend_from_slice(name.as_bytes());
            buf.push(0);
            let path = self.root.join(name);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            buf.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
            buf.extend_from_slice(&bytes);
        }
        Ok(fnv1a64(&buf))
    }

    /// Deletes the entry under a key (no-op when absent).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when removal fails for another reason.
    pub fn remove(&self, workload: &str, module_hash: u64) -> Result<(), DbError> {
        let path = self.path_for(workload, module_hash);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, e)),
        }
    }

    fn ensure_gc_safe(&self) -> Result<(), DbError> {
        if !self.recovered && self.wal_pending() {
            return Err(DbError::PendingWal {
                detail: "store has an unrecovered WAL tail; open with recovery (or run \
                         `profdb recover`) before gc"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// What [`ProfileDb::gc`] would remove, without removing anything
    /// (the `--dry-run` listing).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::PendingWal`] on an unrecovered WAL tail, and
    /// propagates listing failures.
    pub fn gc_plan(
        &self,
        mut live: impl FnMut(&str, u64) -> bool,
    ) -> Result<Vec<DbRecord>, DbError> {
        self.ensure_gc_safe()?;
        Ok(self
            .list()?
            .into_iter()
            .filter(|rec| !live(&rec.workload, rec.module_hash))
            .collect())
    }

    /// Garbage-collects entries `live` rejects (stale module hashes,
    /// retired workloads). Returns the removed keys.
    ///
    /// The WAL is checkpointed first: redo records for a removed key
    /// would otherwise resurrect it at the next open's replay.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::PendingWal`] on an unrecovered WAL tail, and
    /// propagates listing and removal failures.
    pub fn gc(&self, mut live: impl FnMut(&str, u64) -> bool) -> Result<Vec<DbRecord>, DbError> {
        self.ensure_gc_safe()?;
        self.checkpoint()?;
        let mut removed = Vec::new();
        for rec in self.list()? {
            if !live(&rec.workload, rec.module_hash) {
                self.remove(&rec.workload, rec.module_hash)?;
                removed.push(rec);
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{FuncId, InstrId};
    use stride_profiling::{LoadStrideProfile, StrideProfile};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("profdb-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn entry(workload: &str, hash: u64, total: u64) -> ProfileEntry {
        let mut stride = StrideProfile::new();
        stride.insert(
            FuncId::new(0),
            InstrId::new(1),
            LoadStrideProfile {
                top: vec![(48, total)],
                total_freq: total,
                num_zero_stride: 0,
                num_zero_diff: total,
                total_diffs: total,
            },
        );
        ProfileEntry {
            workload: workload.into(),
            module_hash: hash,
            runs: 1,
            edge_tables: vec![vec![total, 0, 3]],
            stride,
        }
    }

    #[test]
    fn store_load_round_trip() {
        let db = ProfileDb::open(tmpdir("roundtrip")).unwrap();
        let e = entry("mcf", 0x1234, 10);
        db.store(&e).unwrap();
        assert_eq!(db.load("mcf", 0x1234).unwrap(), e);
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn missing_entries_are_not_found() {
        let db = ProfileDb::open(tmpdir("missing")).unwrap();
        assert!(matches!(db.load("mcf", 1), Err(DbError::NotFound { .. })));
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn merge_store_accumulates() {
        let db = ProfileDb::open(tmpdir("merge")).unwrap();
        let first = db.merge_store(&entry("gap", 7, 10)).unwrap();
        assert_eq!(first.runs, 1);
        let second = db.merge_store(&entry("gap", 7, 5)).unwrap();
        assert_eq!(second.runs, 2);
        assert_eq!(second.edge_tables[0][0], 15);
        assert_eq!(
            db.load("gap", 7)
                .unwrap()
                .stride
                .get(FuncId::new(0), InstrId::new(1))
                .unwrap()
                .total_freq,
            15
        );
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn list_and_gc() {
        let db = ProfileDb::open(tmpdir("gc")).unwrap();
        db.store(&entry("mcf", 1, 1)).unwrap();
        db.store(&entry("mcf", 2, 1)).unwrap();
        db.store(&entry("gap", 9, 1)).unwrap();
        let recs = db.list().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].workload, "gap");
        // keep only mcf's current module (hash 2)
        let removed = db.gc(|w, h| w != "mcf" || h == 2).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].module_hash, 1);
        assert_eq!(db.list().unwrap().len(), 2);
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn gc_dry_run_removes_nothing() {
        let db = ProfileDb::open(tmpdir("gcdry")).unwrap();
        db.store(&entry("mcf", 1, 1)).unwrap();
        db.store(&entry("gap", 9, 1)).unwrap();
        let planned = db.gc_plan(|w, _| w == "gap").unwrap();
        assert_eq!(planned.len(), 1);
        assert_eq!(planned[0].workload, "mcf");
        assert_eq!(db.list().unwrap().len(), 2, "dry run must not remove");
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn gc_refuses_on_unrecovered_wal_tail() {
        let root = tmpdir("gcwal");
        {
            let db = ProfileDb::open(&root).unwrap();
            db.merge_store(&entry("mcf", 1, 1)).unwrap();
            // No checkpoint: the WAL keeps a pending redo record.
        }
        let db = ProfileDb::open_unrecovered(&root).unwrap();
        let err = db.gc(|_, _| false).unwrap_err();
        assert!(matches!(err, DbError::PendingWal { .. }), "{err}");
        assert!(db.gc_plan(|_, _| false).is_err());
        // After a recovering open, gc proceeds (and checkpoints first).
        let db = ProfileDb::open(&root).unwrap();
        let removed = db.gc(|_, _| false).unwrap();
        assert_eq!(removed.len(), 1);
        assert!(!db.wal_pending());
        // The removal survives a reopen — no WAL resurrection.
        let db = ProfileDb::open(&root).unwrap();
        assert!(db.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn hostile_workload_names_are_rejected() {
        let db = ProfileDb::open(tmpdir("names")).unwrap();
        let mut e = entry("ok", 1, 1);
        e.workload = "../escape".into();
        assert!(db.store(&e).is_err());
        assert!(db.load("a/b", 1).is_err());
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn corrupt_entry_checksum_is_a_parse_error() {
        let db = ProfileDb::open(tmpdir("cksum")).unwrap();
        db.store(&entry("mcf", 5, 9)).unwrap();
        let path = db.path_for("mcf", 5);
        let mut text = fs::read_to_string(&path).unwrap();
        assert!(text.contains(CHECKSUM_PREFIX));
        text = text.replace("runs 1", "runs 7");
        fs::write(&path, text).unwrap();
        let err = db.load("mcf", 5).unwrap_err();
        assert!(matches!(err, DbError::Parse(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn duplicate_request_ids_merge_once() {
        let db = ProfileDb::open(tmpdir("dedup")).unwrap();
        let e = entry("mcf", 3, 10);
        let (first, dup1) = db.merge_store_logged(&e, 0xfeed).unwrap();
        assert!(!dup1);
        assert_eq!(first.runs, 1);
        let (second, dup2) = db.merge_store_logged(&e, 0xfeed).unwrap();
        assert!(dup2);
        assert_eq!(second.runs, 1, "duplicate id must not re-merge");
        assert_eq!(second, first);
        assert_eq!(db.dedup_hits(), 1);
        // A different id merges normally.
        let (third, dup3) = db.merge_store_logged(&e, 0xbeef).unwrap();
        assert!(!dup3);
        assert_eq!(third.runs, 2);
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn dedup_survives_reopen_and_checkpoint() {
        let root = tmpdir("dedup-reopen");
        {
            let db = ProfileDb::open(&root).unwrap();
            db.merge_store_logged(&entry("mcf", 3, 10), 0xabc).unwrap();
        }
        {
            // Reopen replays the WAL; the id must still dedup.
            let db = ProfileDb::open(&root).unwrap();
            let (e, dup) = db.merge_store_logged(&entry("mcf", 3, 10), 0xabc).unwrap();
            assert!(dup);
            assert_eq!(e.runs, 1);
            db.checkpoint().unwrap();
        }
        {
            // And survives the checkpoint via the id-carryover record.
            let db = ProfileDb::open(&root).unwrap();
            let (e, dup) = db.merge_store_logged(&entry("mcf", 3, 10), 0xabc).unwrap();
            assert!(dup);
            assert_eq!(e.runs, 1);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_after_merges_is_idempotent() {
        let root = tmpdir("reopen");
        {
            let db = ProfileDb::open(&root).unwrap();
            db.merge_store(&entry("mcf", 3, 10)).unwrap();
            db.merge_store(&entry("mcf", 3, 5)).unwrap();
        }
        // The WAL still holds both redo records; replay must not
        // double-apply them.
        let db = ProfileDb::open(&root).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.replayed, 0, "{report}");
        assert_eq!(report.already_applied, 2, "{report}");
        let e = db.load("mcf", 3).unwrap();
        assert_eq!(e.runs, 2);
        assert_eq!(e.edge_tables[0][0], 15);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_fsync_failure_fails_the_merge() {
        let root = tmpdir("fsyncfail");
        let faults = DiskFaults {
            fsync_fail: Some(1),
            ..DiskFaults::default()
        };
        let db = ProfileDb::open_with(&root, faults).unwrap();
        let err = db.merge_store(&entry("mcf", 3, 10)).unwrap_err();
        assert!(matches!(err, DbError::Io(_)), "{err}");
        // The one-shot fault is spent; the retry lands.
        let merged = db.merge_store(&entry("mcf", 3, 10)).unwrap();
        assert_eq!(merged.runs, 1);
        let _ = fs::remove_dir_all(&root);
    }
}
