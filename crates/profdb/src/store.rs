//! The on-disk store: one text file per `(workload, module hash)` key
//! under a root directory, with atomic replace on write.

use crate::entry::{DbError, ProfileEntry};
use std::fs;
use std::path::{Path, PathBuf};

/// One key in the database, as listed without parsing whole entries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DbRecord {
    /// Workload name.
    pub workload: String,
    /// Module content hash.
    pub module_hash: u64,
    /// Runs merged into the entry.
    pub runs: u64,
}

/// A profile database rooted at a directory.
///
/// Concurrency: writes are atomic (temp file + rename), but read-merge-
/// write sequences are not serialized here — the profile daemon holds the
/// database behind a lock, and the CLI is single-shot.
#[derive(Debug)]
pub struct ProfileDb {
    root: PathBuf,
}

const SUFFIX: &str = ".profdb";

fn io_err(path: &Path, e: std::io::Error) -> DbError {
    DbError::Io(format!("{}: {e}", path.display()))
}

/// Workload names become file-name stems, so keep them to a safe charset.
fn check_workload_name(name: &str) -> Result<(), DbError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.');
    if ok {
        Ok(())
    } else {
        Err(DbError::KeyMismatch(format!(
            "workload name `{name}` not storable (allowed: alphanumerics, `_`, `-`, `.`)"
        )))
    }
}

impl ProfileDb {
    /// Opens (creating if needed) a database rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, DbError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(ProfileDb { root })
    }

    /// The database's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, workload: &str, module_hash: u64) -> PathBuf {
        self.root
            .join(format!("{workload}@{module_hash:016x}{SUFFIX}"))
    }

    /// Writes `entry`, replacing any previous entry under its key.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble and
    /// [`DbError::KeyMismatch`] for unstorable workload names.
    pub fn store(&self, entry: &ProfileEntry) -> Result<(), DbError> {
        check_workload_name(&entry.workload)?;
        let path = self.path_for(&entry.workload, entry.module_hash);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, entry.to_text()).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(())
    }

    /// Loads the entry under `(workload, module_hash)`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NotFound`] when absent, [`DbError::Parse`] for a
    /// corrupt file, [`DbError::Io`] otherwise.
    pub fn load(&self, workload: &str, module_hash: u64) -> Result<ProfileEntry, DbError> {
        check_workload_name(workload)?;
        let path = self.path_for(workload, module_hash);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(DbError::NotFound {
                    workload: workload.to_string(),
                    module_hash,
                })
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let entry = ProfileEntry::from_text(&text)?;
        if entry.workload != workload || entry.module_hash != module_hash {
            return Err(DbError::KeyMismatch(format!(
                "file {} holds entry for {} @ {:016x}",
                path.display(),
                entry.workload,
                entry.module_hash
            )));
        }
        Ok(entry)
    }

    /// Merges `entry` into the stored entry under the same key (or inserts
    /// it) and returns the accumulated entry.
    ///
    /// # Errors
    ///
    /// Propagates load/store failures and merge key mismatches.
    pub fn merge_store(&self, entry: &ProfileEntry) -> Result<ProfileEntry, DbError> {
        let merged = match self.load(&entry.workload, entry.module_hash) {
            Ok(mut existing) => {
                existing.merge(entry)?;
                existing
            }
            Err(DbError::NotFound { .. }) => entry.clone(),
            Err(e) => return Err(e),
        };
        self.store(&merged)?;
        Ok(merged)
    }

    /// Lists all keys, sorted by `(workload, module_hash)`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on directory trouble; unreadable or foreign
    /// files are skipped.
    pub fn list(&self) -> Result<Vec<DbRecord>, DbError> {
        let mut out = Vec::new();
        let dir = fs::read_dir(&self.root).map_err(|e| io_err(&self.root, e))?;
        for item in dir {
            let item = item.map_err(|e| io_err(&self.root, e))?;
            let name = item.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(SUFFIX)) else {
                continue;
            };
            let Some((workload, hash_s)) = stem.rsplit_once('@') else {
                continue;
            };
            let Ok(module_hash) = u64::from_str_radix(hash_s, 16) else {
                continue;
            };
            let Ok(entry) = self.load(workload, module_hash) else {
                continue;
            };
            out.push(DbRecord {
                workload: workload.to_string(),
                module_hash,
                runs: entry.runs,
            });
        }
        out.sort();
        Ok(out)
    }

    /// Deletes the entry under a key (no-op when absent).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when removal fails for another reason.
    pub fn remove(&self, workload: &str, module_hash: u64) -> Result<(), DbError> {
        let path = self.path_for(workload, module_hash);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, e)),
        }
    }

    /// Garbage-collects entries `live` rejects (stale module hashes,
    /// retired workloads). Returns the removed keys.
    ///
    /// # Errors
    ///
    /// Propagates listing and removal failures.
    pub fn gc(&self, mut live: impl FnMut(&str, u64) -> bool) -> Result<Vec<DbRecord>, DbError> {
        let mut removed = Vec::new();
        for rec in self.list()? {
            if !live(&rec.workload, rec.module_hash) {
                self.remove(&rec.workload, rec.module_hash)?;
                removed.push(rec);
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{FuncId, InstrId};
    use stride_profiling::{LoadStrideProfile, StrideProfile};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("profdb-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn entry(workload: &str, hash: u64, total: u64) -> ProfileEntry {
        let mut stride = StrideProfile::new();
        stride.insert(
            FuncId::new(0),
            InstrId::new(1),
            LoadStrideProfile {
                top: vec![(48, total)],
                total_freq: total,
                num_zero_stride: 0,
                num_zero_diff: total,
                total_diffs: total,
            },
        );
        ProfileEntry {
            workload: workload.into(),
            module_hash: hash,
            runs: 1,
            edge_tables: vec![vec![total, 0, 3]],
            stride,
        }
    }

    #[test]
    fn store_load_round_trip() {
        let db = ProfileDb::open(tmpdir("roundtrip")).unwrap();
        let e = entry("mcf", 0x1234, 10);
        db.store(&e).unwrap();
        assert_eq!(db.load("mcf", 0x1234).unwrap(), e);
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn missing_entries_are_not_found() {
        let db = ProfileDb::open(tmpdir("missing")).unwrap();
        assert!(matches!(db.load("mcf", 1), Err(DbError::NotFound { .. })));
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn merge_store_accumulates() {
        let db = ProfileDb::open(tmpdir("merge")).unwrap();
        let first = db.merge_store(&entry("gap", 7, 10)).unwrap();
        assert_eq!(first.runs, 1);
        let second = db.merge_store(&entry("gap", 7, 5)).unwrap();
        assert_eq!(second.runs, 2);
        assert_eq!(second.edge_tables[0][0], 15);
        assert_eq!(
            db.load("gap", 7)
                .unwrap()
                .stride
                .get(FuncId::new(0), InstrId::new(1))
                .unwrap()
                .total_freq,
            15
        );
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn list_and_gc() {
        let db = ProfileDb::open(tmpdir("gc")).unwrap();
        db.store(&entry("mcf", 1, 1)).unwrap();
        db.store(&entry("mcf", 2, 1)).unwrap();
        db.store(&entry("gap", 9, 1)).unwrap();
        let recs = db.list().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].workload, "gap");
        // keep only mcf's current module (hash 2)
        let removed = db.gc(|w, h| w != "mcf" || h == 2).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].module_hash, 1);
        assert_eq!(db.list().unwrap().len(), 2);
        let _ = fs::remove_dir_all(db.root());
    }

    #[test]
    fn hostile_workload_names_are_rejected() {
        let db = ProfileDb::open(tmpdir("names")).unwrap();
        let mut e = entry("ok", 1, 1);
        e.workload = "../escape".into();
        assert!(db.store(&e).is_err());
        assert!(db.load("a/b", 1).is_err());
        let _ = fs::remove_dir_all(db.root());
    }
}
