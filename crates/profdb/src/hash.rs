//! Stable content hashing for database keys.
//!
//! `std::hash::DefaultHasher` is explicitly not stable across Rust
//! releases, so on-disk keys use FNV-1a over the module's canonical text
//! rendering: the same module always hashes to the same key, on any
//! toolchain, forever.

use stride_ir::{module_to_string, Module};

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of a module: FNV-1a of its canonical text form. Any
/// change to the IR — and therefore to counter spaces or site ids —
/// changes the hash, which is what marks database entries stale.
pub fn module_hash(module: &Module) -> u64 {
    fnv1a64(module_to_string(module).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{ModuleBuilder, Operand};

    fn module(extra_load: bool) -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 4096);
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let (v, _) = fb.load(base, 0);
        if extra_load {
            let _ = fb.load(base, 8);
        }
        fb.ret(Some(Operand::Reg(v)));
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn equal_modules_hash_equal() {
        assert_eq!(module_hash(&module(false)), module_hash(&module(false)));
    }

    #[test]
    fn different_modules_hash_differently() {
        assert_ne!(module_hash(&module(false)), module_hash(&module(true)));
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
