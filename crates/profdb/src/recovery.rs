//! Startup recovery: turn whatever bytes a crash left behind into a
//! consistent store, without ever panicking or aborting.
//!
//! The recovery state machine scans the WAL front to back:
//!
//! ```text
//!         ┌────────────┐  record verifies   ┌──────────────┐
//! scan ──▶│ good record │──────────────────▶│ replay (redo) │
//!         └────────────┘                    └──────────────┘
//!               │ checksum fails, boundary plausible
//!               ▼
//!         ┌────────────┐  bytes preserved under quarantine/
//!         │ quarantine  │──▶ keep scanning at the next boundary
//!         └────────────┘
//!               │ framing lost (bad tag / length overruns EOF)
//!               ▼
//!         ┌────────────┐  file truncated at the last good byte
//!         │ torn tail   │──▶ stop
//!         └────────────┘
//! ```
//!
//! Replay is **idempotent and non-regressing**: an `E` record holds the
//! absolute post-merge entry, and it is applied only when the entry file
//! is missing, unreadable, or older (fewer merged runs) than the record.
//! So a record whose apply completed before the crash is a no-op, a
//! record that never reached its entry file is redone, and a record that
//! is *older* than the on-disk entry (possible when a later redo for the
//! same key survived) never rolls state back. A recovered store is
//! therefore always equal to the state just before or just after each
//! logged merge — never a mix.

use crate::entry::{DbError, ProfileEntry};
use crate::store::{entry_file_text, write_entry_file};
use crate::wal::{scan_wal, DiskFaults, ScanItem, Wal, WalScan, RECORD_HEADER, WAL_FILE};
use std::fmt;
use std::path::Path;

/// Subdirectory corrupt WAL bytes are preserved under.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What recovery found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The WAL ended in a valid checkpoint footer (clean shutdown).
    pub clean: bool,
    /// Redo records whose state was written to entry files.
    pub replayed: usize,
    /// Redo records already reflected on disk (idempotent no-ops).
    pub already_applied: usize,
    /// Checksum-failed records preserved under `quarantine/`.
    pub quarantined: usize,
    /// Redo records whose payload no longer parsed (also quarantined).
    pub unparseable: usize,
    /// Bytes cut from a torn tail, when one was found.
    pub torn_tail_bytes: Option<u64>,
    /// Idempotency ids recovered from `E` and `I` records.
    pub applied_ids: Vec<u64>,
}

impl RecoveryReport {
    /// Anything other than a clean, empty replay happened.
    pub fn eventful(&self) -> bool {
        self.replayed > 0
            || self.quarantined > 0
            || self.unparseable > 0
            || self.torn_tail_bytes.is_some()
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery: {} replayed, {} already applied, {} quarantined, {} unparseable, {}, {}",
            self.replayed,
            self.already_applied,
            self.quarantined,
            self.unparseable,
            match self.torn_tail_bytes {
                Some(n) => format!("torn tail {n} byte(s) truncated"),
                None => "no torn tail".to_string(),
            },
            if self.clean {
                "clean footer"
            } else {
                "no clean footer"
            }
        )
    }
}

fn quarantine_bytes(root: &Path, offset: u64, bytes: &[u8]) -> Result<(), DbError> {
    let dir = root.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&dir).map_err(|e| DbError::Io(format!("{}: {e}", dir.display())))?;
    let path = dir.join(format!("wal-{offset:012}.bin"));
    std::fs::write(&path, bytes).map_err(|e| DbError::Io(format!("{}: {e}", path.display())))
}

/// Should `record_entry` be written over what the store currently holds
/// for its key? Missing/corrupt files are always overwritten; otherwise
/// only a strictly newer record (more merged runs) applies.
fn should_apply(root: &Path, rec: &ProfileEntry) -> bool {
    match entry_file_text(root, &rec.workload, rec.module_hash)
        .ok()
        .flatten()
        .and_then(|text| ProfileEntry::from_text(&text).ok())
    {
        Some(current) => current.runs < rec.runs,
        None => true,
    }
}

/// Runs recovery over the database at `root`: replays complete WAL
/// records, truncates a torn tail, quarantines checksum-failed bytes,
/// and returns what happened. Safe to run any number of times.
///
/// # Errors
///
/// Returns [`DbError::Io`] only for filesystem failures while repairing;
/// corrupt *content* never errors — it is quarantined or truncated.
pub fn recover(root: &Path, faults: &DiskFaults) -> Result<RecoveryReport, DbError> {
    let scan = scan_wal(root, faults)?;
    let mut report = RecoveryReport {
        clean: scan.clean_footer,
        ..RecoveryReport::default()
    };
    let wal_path = root.join(WAL_FILE);
    for item in &scan.items {
        match item {
            ScanItem::Record { offset, record } => match record.kind {
                crate::wal::RecordKind::Entry => {
                    if record.req_id != 0 {
                        report.applied_ids.push(record.req_id);
                    }
                    let text = match std::str::from_utf8(&record.payload) {
                        Ok(t) => t,
                        Err(_) => {
                            report.unparseable += 1;
                            quarantine_bytes(root, *offset, &record.payload)?;
                            continue;
                        }
                    };
                    match ProfileEntry::from_text(text) {
                        Ok(entry) => {
                            if should_apply(root, &entry) {
                                write_entry_file(root, &entry)?;
                                report.replayed += 1;
                            } else {
                                report.already_applied += 1;
                            }
                        }
                        Err(_) => {
                            report.unparseable += 1;
                            quarantine_bytes(root, *offset, &record.payload)?;
                        }
                    }
                }
                crate::wal::RecordKind::Ids => {
                    report.applied_ids.extend(record.unpack_ids());
                }
                crate::wal::RecordKind::Footer => {}
            },
            ScanItem::Corrupt { offset, bytes } => {
                report.quarantined += 1;
                quarantine_bytes(root, *offset, bytes)?;
            }
            ScanItem::TornTail { offset } => {
                let cut = scan.file_len - offset;
                if *offset == 0 {
                    // Bad magic: the whole file is unusable. Preserve it
                    // and start a fresh log.
                    if let Ok(bytes) = std::fs::read(&wal_path) {
                        quarantine_bytes(root, 0, &bytes)?;
                        report.quarantined += 1;
                    }
                    let _ = std::fs::remove_file(&wal_path);
                } else {
                    Wal::truncate_to(&wal_path, *offset)?;
                }
                report.torn_tail_bytes = Some(cut);
            }
        }
    }
    Ok(report)
}

/// Read-only integrity check: scans the WAL (no repair) and loads every
/// entry file, verifying checksum trailers. Returns a deterministic
/// multi-line report and whether the store is healthy.
///
/// A pending (not yet checkpointed) WAL tail is *not* unhealthy — it
/// just means recovery will have redo work at next open — but corrupt
/// records, torn tails, and unreadable entries are.
pub fn check(root: &Path) -> (String, bool) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut healthy = true;
    match scan_wal(root, &DiskFaults::default()) {
        Ok(scan) => {
            let corrupt = scan
                .items
                .iter()
                .filter(|i| matches!(i, ScanItem::Corrupt { .. }))
                .count();
            let torn = scan
                .items
                .iter()
                .any(|i| matches!(i, ScanItem::TornTail { .. }));
            let _ = writeln!(
                out,
                "wal: {} pending record(s), {} corrupt, {}, {}",
                scan.pending_entries(),
                corrupt,
                if torn { "torn tail" } else { "no torn tail" },
                if scan.clean_footer {
                    "clean footer"
                } else {
                    "no clean footer"
                }
            );
            if corrupt > 0 || torn {
                healthy = false;
            }
        }
        Err(e) => {
            let _ = writeln!(out, "wal: unreadable: {e}");
            healthy = false;
        }
    }
    match crate::store::ProfileDb::open_unrecovered(root) {
        Ok(db) => match db.list_verified() {
            Ok((records, bad)) => {
                let _ = writeln!(out, "entries: {} readable, {} corrupt", records.len(), bad);
                for rec in &records {
                    let _ = writeln!(
                        out,
                        "  {} @ {:016x}: {} run(s)",
                        rec.workload, rec.module_hash, rec.runs
                    );
                }
                if bad > 0 {
                    healthy = false;
                }
            }
            Err(e) => {
                let _ = writeln!(out, "entries: unlistable: {e}");
                healthy = false;
            }
        },
        Err(e) => {
            let _ = writeln!(out, "store: unopenable: {e}");
            healthy = false;
        }
    }
    let _ = writeln!(out, "verdict: {}", if healthy { "ok" } else { "CORRUPT" });
    (out, healthy)
}

/// The WAL byte offset where record `index` (0-based, counting every
/// scan item) starts — test support for crash-at-offset schedules.
pub fn record_offsets(scan: &WalScan) -> Vec<u64> {
    scan.items
        .iter()
        .map(|i| match i {
            ScanItem::Record { offset, .. }
            | ScanItem::Corrupt { offset, .. }
            | ScanItem::TornTail { offset } => *offset,
        })
        .collect()
}

/// Size in bytes of an encoded record with `payload_len` payload bytes.
pub fn encoded_record_len(payload_len: usize) -> usize {
    RECORD_HEADER + payload_len + crate::wal::RECORD_TRAILER
}
