//! Startup recovery: turn whatever bytes a crash left behind into a
//! consistent store, without ever panicking or aborting.
//!
//! The recovery state machine scans the WAL front to back:
//!
//! ```text
//!         ┌────────────┐  record verifies   ┌──────────────┐
//! scan ──▶│ good record │──────────────────▶│ replay (redo) │
//!         └────────────┘                    └──────────────┘
//!               │ checksum fails, boundary plausible
//!               ▼
//!         ┌────────────┐  bytes preserved under quarantine/
//!         │ quarantine  │──▶ keep scanning at the next boundary
//!         └────────────┘
//!               │ framing lost (bad tag / length overruns EOF)
//!               ▼
//!         ┌────────────┐  file truncated at the last good byte
//!         │ torn tail   │──▶ stop
//!         └────────────┘
//! ```
//!
//! Replay is **idempotent and non-regressing**: an `E` record holds the
//! absolute post-merge entry, and it is applied only when the entry file
//! is missing, unreadable, or older (fewer merged runs) than the record.
//! So a record whose apply completed before the crash is a no-op, a
//! record that never reached its entry file is redone, and a record that
//! is *older* than the on-disk entry (possible when a later redo for the
//! same key survived) never rolls state back. A recovered store is
//! therefore always equal to the state just before or just after each
//! logged merge — never a mix.
//!
//! With a segmented WAL the same machine runs over the whole chain,
//! sealed segments first (ascending), the active log last — but the
//! torn-tail *truncation* arm is reserved for the active log. A sealed
//! segment was fsynced before its rename, so a torn tail there is not a
//! crash artifact; it is real damage to immutable history. Recovery
//! preserves the damaged bytes under `quarantine/`, leaves the segment
//! untouched, and reports it; [`check`] flags the store CORRUPT until an
//! operator decides.

use crate::entry::{DbError, ProfileEntry};
use crate::store::{entry_file_text, write_entry_file};
use crate::wal::{scan_chain, DiskFaults, ScanItem, SegmentScan, Wal, WalScan, RECORD_HEADER};
use std::fmt;
use std::path::Path;

/// Subdirectory corrupt WAL bytes are preserved under.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What recovery found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The WAL ended in a valid checkpoint footer (clean shutdown).
    pub clean: bool,
    /// Redo records whose state was written to entry files.
    pub replayed: usize,
    /// Redo records already reflected on disk (idempotent no-ops).
    pub already_applied: usize,
    /// Checksum-failed records preserved under `quarantine/`.
    pub quarantined: usize,
    /// Redo records whose payload no longer parsed (also quarantined).
    pub unparseable: usize,
    /// Bytes cut from a torn tail of the *active* log, when one was
    /// found.
    pub torn_tail_bytes: Option<u64>,
    /// Sealed segments with a torn tail or bad magic — preserved and
    /// reported, never truncated (damaged immutable history).
    pub torn_sealed_segments: usize,
    /// Idempotency ids recovered from `E` and `I` records.
    pub applied_ids: Vec<u64>,
}

impl RecoveryReport {
    /// Anything other than a clean, empty replay happened.
    pub fn eventful(&self) -> bool {
        self.replayed > 0
            || self.quarantined > 0
            || self.unparseable > 0
            || self.torn_tail_bytes.is_some()
            || self.torn_sealed_segments > 0
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery: {} replayed, {} already applied, {} quarantined, {} unparseable, {}, {}",
            self.replayed,
            self.already_applied,
            self.quarantined,
            self.unparseable,
            match self.torn_tail_bytes {
                Some(n) => format!("torn tail {n} byte(s) truncated"),
                None => "no torn tail".to_string(),
            },
            if self.clean {
                "clean footer"
            } else {
                "no clean footer"
            }
        )?;
        if self.torn_sealed_segments > 0 {
            write!(
                f,
                ", {} torn sealed segment(s) preserved",
                self.torn_sealed_segments
            )?;
        }
        Ok(())
    }
}

/// Quarantine file name: sealed segments carry their index so bytes from
/// different segments at the same offset never collide; the active log
/// keeps the pre-segmentation name.
fn quarantine_name(segment: Option<u64>, offset: u64) -> String {
    match segment {
        Some(idx) => format!("wal-seg{idx:06}-{offset:012}.bin"),
        None => format!("wal-{offset:012}.bin"),
    }
}

fn quarantine_bytes(
    root: &Path,
    segment: Option<u64>,
    offset: u64,
    bytes: &[u8],
) -> Result<(), DbError> {
    let dir = root.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&dir).map_err(|e| DbError::Io(format!("{}: {e}", dir.display())))?;
    let path = dir.join(quarantine_name(segment, offset));
    std::fs::write(&path, bytes).map_err(|e| DbError::Io(format!("{}: {e}", path.display())))
}

/// Should `record_entry` be written over what the store currently holds
/// for its key? Missing/corrupt files are always overwritten; otherwise
/// only a strictly newer record (more merged runs) applies.
fn should_apply(root: &Path, rec: &ProfileEntry) -> bool {
    match entry_file_text(root, &rec.workload, rec.module_hash)
        .ok()
        .flatten()
        .and_then(|text| ProfileEntry::from_text(&text).ok())
    {
        Some(current) => current.runs < rec.runs,
        None => true,
    }
}

/// Runs recovery over the database at `root`: replays complete WAL
/// records of the whole segment chain (sealed segments oldest-first,
/// active log last), truncates a torn tail of the active log,
/// quarantines checksum-failed bytes, preserves-and-reports damage in
/// sealed segments, and returns what happened. Safe to run any number
/// of times.
///
/// # Errors
///
/// Returns [`DbError::Io`] only for filesystem failures while repairing;
/// corrupt *content* never errors — it is quarantined or truncated.
pub fn recover(root: &Path, faults: &DiskFaults) -> Result<RecoveryReport, DbError> {
    let chain = scan_chain(root, faults)?;
    let mut report = RecoveryReport::default();
    for seg in &chain {
        recover_segment(root, seg, &mut report)?;
    }
    // Clean means "nothing for replay to ever look at again": a fully
    // compacted chain whose active log ends in a valid footer. Leftover
    // sealed segments (e.g. a crash between a compaction's fresh-log
    // write and its deletes) are replayable history, hence not clean.
    report.clean = chain.len() == 1
        && chain
            .last()
            .is_some_and(|seg| seg.is_active() && seg.scan.clean_footer);
    Ok(report)
}

/// Recovery for one segment of the chain (see [`recover`]).
fn recover_segment(
    root: &Path,
    seg: &SegmentScan,
    report: &mut RecoveryReport,
) -> Result<(), DbError> {
    let seg_path = root.join(&seg.name);
    for item in &seg.scan.items {
        match item {
            ScanItem::Record { offset, record } => match record.kind {
                crate::wal::RecordKind::Entry => {
                    if record.req_id != 0 {
                        report.applied_ids.push(record.req_id);
                    }
                    let text = match std::str::from_utf8(&record.payload) {
                        Ok(t) => t,
                        Err(_) => {
                            report.unparseable += 1;
                            quarantine_bytes(root, seg.index, *offset, &record.payload)?;
                            continue;
                        }
                    };
                    match ProfileEntry::from_text(text) {
                        Ok(entry) => {
                            if should_apply(root, &entry) {
                                write_entry_file(root, &entry)?;
                                report.replayed += 1;
                            } else {
                                report.already_applied += 1;
                            }
                        }
                        Err(_) => {
                            report.unparseable += 1;
                            quarantine_bytes(root, seg.index, *offset, &record.payload)?;
                        }
                    }
                }
                crate::wal::RecordKind::Ids => {
                    report.applied_ids.extend(record.unpack_ids());
                }
                crate::wal::RecordKind::Footer => {}
            },
            ScanItem::Corrupt { offset, bytes } => {
                report.quarantined += 1;
                quarantine_bytes(root, seg.index, *offset, bytes)?;
            }
            ScanItem::TornTail { offset } if seg.is_active() => {
                let cut = seg.scan.file_len - offset;
                if *offset == 0 {
                    // Bad magic: the whole file is unusable. Preserve it
                    // and start a fresh log.
                    if let Ok(bytes) = std::fs::read(&seg_path) {
                        quarantine_bytes(root, seg.index, 0, &bytes)?;
                        report.quarantined += 1;
                    }
                    let _ = std::fs::remove_file(&seg_path);
                } else {
                    Wal::truncate_to(&seg_path, *offset)?;
                }
                report.torn_tail_bytes = Some(cut);
            }
            ScanItem::TornTail { offset } => {
                // Sealed segment: preserve a copy of the damaged span and
                // leave the file untouched — never silently truncate
                // immutable history.
                if let Ok(bytes) = std::fs::read(&seg_path) {
                    let at = (*offset).min(bytes.len() as u64) as usize;
                    quarantine_bytes(root, seg.index, *offset, &bytes[at..])?;
                }
                report.torn_sealed_segments += 1;
            }
        }
    }
    Ok(())
}

/// Read-only integrity check: scans the whole WAL segment chain (no
/// repair) and loads every entry file, verifying checksum trailers.
/// Returns a deterministic multi-line report and whether the store is
/// healthy.
///
/// A pending (not yet checkpointed) WAL tail is *not* unhealthy — it
/// just means recovery will have redo work at next open — but corrupt
/// records, torn tails (in *any* segment: a torn sealed segment is
/// damaged immutable history and is reported, never repaired here),
/// chain gaps (a missing middle segment), and unreadable entries are.
pub fn check(root: &Path) -> (String, bool) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut healthy = true;
    match scan_chain(root, &DiskFaults::default()) {
        Ok(chain) => {
            let pending: usize = chain.iter().map(|s| s.scan.pending_entries()).sum();
            let corrupt: usize = chain
                .iter()
                .map(|s| {
                    s.scan
                        .items
                        .iter()
                        .filter(|i| matches!(i, ScanItem::Corrupt { .. }))
                        .count()
                })
                .sum();
            let torn = chain
                .iter()
                .flat_map(|s| &s.scan.items)
                .any(|i| matches!(i, ScanItem::TornTail { .. }));
            let clean = chain.len() == 1 && chain[0].scan.clean_footer;
            let _ = writeln!(
                out,
                "wal: {} segment(s), {pending} pending record(s), {corrupt} corrupt, {}, {}",
                chain.len(),
                if torn { "torn tail" } else { "no torn tail" },
                if clean {
                    "clean footer"
                } else {
                    "no clean footer"
                }
            );
            for seg in &chain {
                let seg_corrupt = seg
                    .scan
                    .items
                    .iter()
                    .filter(|i| matches!(i, ScanItem::Corrupt { .. }))
                    .count();
                let seg_torn = seg
                    .scan
                    .items
                    .iter()
                    .any(|i| matches!(i, ScanItem::TornTail { .. }));
                let _ = writeln!(
                    out,
                    "  segment {}: {} record(s), {} corrupt, {}{}",
                    seg.name,
                    seg.scan.pending_entries(),
                    seg_corrupt,
                    if seg_torn {
                        if seg.is_active() {
                            "torn tail (repairable: active log)"
                        } else {
                            "TORN (sealed history damaged)"
                        }
                    } else {
                        "intact"
                    },
                    if seg.is_active() {
                        ", active"
                    } else {
                        ", sealed"
                    }
                );
                if seg_torn && !seg.is_active() {
                    healthy = false;
                }
            }
            // Chain consistency: sealed indices must be contiguous. A
            // gap means a whole segment of history vanished.
            let indices: Vec<u64> = chain.iter().filter_map(|s| s.index).collect();
            for pair in indices.windows(2) {
                if pair[1] != pair[0] + 1 {
                    let _ = writeln!(
                        out,
                        "  chain: GAP between sealed segments {:06} and {:06}",
                        pair[0], pair[1]
                    );
                    healthy = false;
                }
            }
            if corrupt > 0 || torn {
                healthy = false;
            }
        }
        Err(e) => {
            let _ = writeln!(out, "wal: unreadable: {e}");
            healthy = false;
        }
    }
    match crate::store::ProfileDb::open_unrecovered(root) {
        Ok(db) => match db.list_verified() {
            Ok((records, bad)) => {
                let _ = writeln!(out, "entries: {} readable, {} corrupt", records.len(), bad);
                for rec in &records {
                    let _ = writeln!(
                        out,
                        "  {} @ {:016x}: {} run(s)",
                        rec.workload, rec.module_hash, rec.runs
                    );
                }
                if bad > 0 {
                    healthy = false;
                }
            }
            Err(e) => {
                let _ = writeln!(out, "entries: unlistable: {e}");
                healthy = false;
            }
        },
        Err(e) => {
            let _ = writeln!(out, "store: unopenable: {e}");
            healthy = false;
        }
    }
    let _ = writeln!(out, "verdict: {}", if healthy { "ok" } else { "CORRUPT" });
    (out, healthy)
}

/// The WAL byte offset where record `index` (0-based, counting every
/// scan item) starts — test support for crash-at-offset schedules.
pub fn record_offsets(scan: &WalScan) -> Vec<u64> {
    scan.items
        .iter()
        .map(|i| match i {
            ScanItem::Record { offset, .. }
            | ScanItem::Corrupt { offset, .. }
            | ScanItem::TornTail { offset } => *offset,
        })
        .collect()
}

/// Size in bytes of an encoded record with `payload_len` payload bytes.
pub fn encoded_record_len(payload_len: usize) -> usize {
    RECORD_HEADER + payload_len + crate::wal::RECORD_TRAILER
}
