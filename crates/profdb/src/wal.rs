//! The write-ahead log: every merge is made durable *before* the entry
//! file is rewritten, so a crash at any byte boundary leaves the store
//! recoverable.
//!
//! # Format (`wal.log`, version 1)
//!
//! ```text
//! magic   8 bytes  b"SPWALv1\n"
//! record  tag(1) | payload_len(u32 BE) | req_id(u64 BE) | payload | fnv1a64(u64 BE)
//! ```
//!
//! # Segment chain
//!
//! Under sustained merge traffic the log is kept *bounded* by splitting
//! it into segments. The active log is always `wal.log`; once it grows
//! past [`SegmentConfig::seal_bytes`] it is **sealed** — renamed to
//! `wal.NNNNNN.log` (ascending indices) — and a fresh active log starts.
//! Once the live chain (sealed + active) exceeds
//! [`SegmentConfig::max_live_segments`], a **compaction** checkpoint
//! folds the whole chain away: every redo record is already applied to
//! entry files, so the sealed segments are deleted and the fresh active
//! log carries only the idempotency-id set and a clean footer.
//!
//! Sealed segments are immutable history: recovery replays them front to
//! back but only ever truncates a torn tail on the *active* log — damage
//! inside a sealed segment is preserved, quarantined, and reported,
//! never silently cut (a torn middle segment means lost history, which
//! an operator must see). A store that never seals is exactly the old
//! single-file layout, so pre-segmentation databases open unchanged.
//!
//! The trailing checksum covers everything from the tag through the
//! payload, so a torn append, a bit flip, or a garbage tail is always
//! detectable. Record tags:
//!
//! * `E` — entry redo: the payload is the *post-merge* entry text. Redo
//!   records carry absolute states, not deltas, which is what makes
//!   replay idempotent: applying a record twice (or applying one whose
//!   merge already reached the entry file before the crash) rewrites the
//!   same bytes. `req_id` is the client's idempotency key (0 = none).
//! * `I` — idempotency-id carryover: the payload is a concatenation of
//!   big-endian `u64` request ids. Written at checkpoint so the dedup
//!   set survives WAL truncation.
//! * `C` — footer: the payload is the `fnv1a64` of the whole file up to
//!   the record's first byte. A valid footer as the last record marks a
//!   cleanly checkpointed log; recovery then knows there is no torn
//!   tail to hunt for.
//!
//! The commit protocol for a merge is **append → fsync → apply**: the
//! caller acknowledges only after the fsync, and the entry file rewrite
//! can be redone from the log at startup if the process dies in between.
//! Checkpoints (truncations) go through a temp file + atomic rename, the
//! same discipline entry files use.

use crate::entry::DbError;
use crate::hash::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// WAL file name inside the database root.
pub const WAL_FILE: &str = "wal.log";
/// Version-bearing magic at offset 0.
pub const WAL_MAGIC: &[u8; 8] = b"SPWALv1\n";

/// File name of sealed segment `index` (`wal.000003.log`).
pub fn segment_file_name(index: u64) -> String {
    format!("wal.{index:06}.log")
}

/// Parses a sealed-segment file name back to its index.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Sealed segments under `root`, ascending by index.
///
/// # Errors
///
/// Returns [`DbError::Io`] when the directory cannot be read.
pub fn sealed_segments(root: &Path) -> Result<Vec<(u64, PathBuf)>, DbError> {
    let mut out = Vec::new();
    let dir = match std::fs::read_dir(root) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err(root, e)),
    };
    for item in dir {
        let item = item.map_err(|e| io_err(root, e))?;
        if let Some(idx) = item.file_name().to_str().and_then(parse_segment_name) {
            out.push((idx, item.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// When to seal the active log and when to compact the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Seal (roll) the active log once it exceeds this many bytes.
    pub seal_bytes: u64,
    /// Compact (checkpoint the whole chain away) once live segments —
    /// sealed plus the active log — exceed this count.
    pub max_live_segments: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        // 4 × 256 KiB bounds on-disk log bytes near the pre-segmentation
        // 1 MiB auto-checkpoint threshold.
        SegmentConfig {
            seal_bytes: 256 << 10,
            max_live_segments: 4,
        }
    }
}
/// Records larger than this are treated as framing corruption, not
/// allocated (a torn length field must not ask for gigabytes).
pub const MAX_WAL_RECORD: usize = 64 << 20;

/// Fixed bytes per record around the payload: tag + len + req_id.
pub(crate) const RECORD_HEADER: usize = 1 + 4 + 8;
/// Trailing checksum bytes.
pub(crate) const RECORD_TRAILER: usize = 8;

/// What a record carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// Post-merge entry redo state.
    Entry,
    /// Idempotency-id carryover (checkpoint).
    Ids,
    /// Clean-checkpoint footer.
    Footer,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Entry => b'E',
            RecordKind::Ids => b'I',
            RecordKind::Footer => b'C',
        }
    }

    fn from_tag(tag: u8) -> Option<RecordKind> {
        match tag {
            b'E' => Some(RecordKind::Entry),
            b'I' => Some(RecordKind::Ids),
            b'C' => Some(RecordKind::Footer),
            _ => None,
        }
    }
}

/// One WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Record type.
    pub kind: RecordKind,
    /// Idempotency key (0 when the request carried none).
    pub req_id: u64,
    /// Record body (entry text for `E`, packed ids for `I`, file
    /// checksum for `C`).
    pub payload: Vec<u8>,
}

impl WalRecord {
    /// Builds an entry-redo record.
    pub fn entry(req_id: u64, entry_text: &str) -> WalRecord {
        WalRecord {
            kind: RecordKind::Entry,
            req_id,
            payload: entry_text.as_bytes().to_vec(),
        }
    }

    /// Builds an id-carryover record.
    pub fn ids(ids: &[u64]) -> WalRecord {
        let mut payload = Vec::with_capacity(ids.len() * 8);
        for id in ids {
            payload.extend_from_slice(&id.to_be_bytes());
        }
        WalRecord {
            kind: RecordKind::Ids,
            req_id: 0,
            payload,
        }
    }

    /// Unpacks an id-carryover payload.
    pub fn unpack_ids(&self) -> Vec<u64> {
        self.payload
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                u64::from_be_bytes(b)
            })
            .collect()
    }
}

/// Serializes a record (header + payload + checksum).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + rec.payload.len() + RECORD_TRAILER);
    out.push(rec.kind.tag());
    out.extend_from_slice(&(rec.payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&rec.req_id.to_be_bytes());
    out.extend_from_slice(&rec.payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_be_bytes());
    out
}

/// Deterministic, injectable disk misbehaviour for chaos testing. Each
/// field is a one-shot trigger consumed when it fires; `None` means the
/// disk behaves.
#[derive(Clone, Debug, Default)]
pub struct DiskFaults {
    /// Next WAL append writes only the first `k` bytes of the record and
    /// reports an I/O error — the shape of a crash mid-write.
    pub torn_write: Option<u64>,
    /// Next WAL append silently flips bit `k % record_bits` — latent
    /// corruption that only the checksum can catch.
    pub bit_flip: Option<u64>,
    /// The `n`th upcoming fsync (1-based) fails, so the merge must not
    /// be acknowledged.
    pub fsync_fail: Option<u64>,
    /// Recovery reads at most `k` bytes of the WAL — the shape of a
    /// short read from a failing device.
    pub short_read: Option<u64>,
}

/// One scanned item: a good record, a quarantinable corrupt span, or the
/// torn tail.
#[derive(Clone, Debug)]
pub enum ScanItem {
    /// A record whose checksum verified.
    Record {
        /// Byte offset of the record's tag.
        offset: u64,
        /// The decoded record.
        record: WalRecord,
    },
    /// A complete-looking record whose checksum failed: skippable, since
    /// the length field placed a plausible boundary.
    Corrupt {
        /// Byte offset of the record's tag.
        offset: u64,
        /// The raw bytes (header through trailer) for quarantine.
        bytes: Vec<u8>,
    },
    /// Unparseable bytes running to end-of-file: a torn append (or a
    /// corrupted length field). Everything from `offset` must be
    /// truncated.
    TornTail {
        /// Byte offset the tail starts at.
        offset: u64,
    },
}

/// A read-only scan of a WAL file.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Items in file order.
    pub items: Vec<ScanItem>,
    /// True when the last verified record is a footer whose checksum of
    /// the preceding file bytes matches — a cleanly checkpointed log.
    pub clean_footer: bool,
    /// Total file bytes examined.
    pub file_len: u64,
}

impl WalScan {
    /// Entry-redo records in order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &WalRecord)> {
        self.items.iter().filter_map(|i| match i {
            ScanItem::Record { offset, record } if record.kind == RecordKind::Entry => {
                Some((*offset, record))
            }
            _ => None,
        })
    }

    /// Count of entry-redo records (the "pending tail" gc refuses on).
    pub fn pending_entries(&self) -> usize {
        self.entries().count()
    }

    /// All idempotency ids carried by `E` and `I` records.
    pub fn known_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for item in &self.items {
            if let ScanItem::Record { record, .. } = item {
                match record.kind {
                    RecordKind::Entry if record.req_id != 0 => ids.push(record.req_id),
                    RecordKind::Ids => ids.extend(record.unpack_ids()),
                    _ => {}
                }
            }
        }
        ids
    }
}

fn io_err(path: &Path, e: std::io::Error) -> DbError {
    DbError::Io(format!("{}: {e}", path.display()))
}

/// Scans WAL bytes (after the magic) into records / corrupt spans / a
/// torn tail. Pure — no filesystem mutation.
fn scan_bytes(bytes: &[u8], base: u64) -> WalScan {
    let mut scan = WalScan {
        file_len: base + bytes.len() as u64,
        ..WalScan::default()
    };
    let mut at = 0usize;
    while at < bytes.len() {
        let offset = base + at as u64;
        let rest = &bytes[at..];
        if rest.len() < RECORD_HEADER + RECORD_TRAILER {
            scan.items.push(ScanItem::TornTail { offset });
            return scan;
        }
        let tag_ok = RecordKind::from_tag(rest[0]).is_some();
        let len = u32::from_be_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
        let total = RECORD_HEADER + len + RECORD_TRAILER;
        if !tag_ok || len > MAX_WAL_RECORD || total > rest.len() {
            // A bad tag or an implausible/overrunning length means the
            // framing itself is lost: there is no trustworthy boundary
            // to resynchronise at, so the rest of the file is a tail.
            scan.items.push(ScanItem::TornTail { offset });
            return scan;
        }
        let body = &rest[..RECORD_HEADER + len];
        let want = u64::from_be_bytes({
            let mut b = [0u8; 8];
            b.copy_from_slice(&rest[RECORD_HEADER + len..total]);
            b
        });
        if fnv1a64(body) != want {
            scan.items.push(ScanItem::Corrupt {
                offset,
                bytes: rest[..total].to_vec(),
            });
            scan.clean_footer = false;
            at += total;
            continue;
        }
        let kind = match RecordKind::from_tag(rest[0]) {
            Some(k) => k,
            None => {
                // Unreachable (tag_ok checked above); treat as tail.
                scan.items.push(ScanItem::TornTail { offset });
                return scan;
            }
        };
        let record = WalRecord {
            kind,
            req_id: u64::from_be_bytes({
                let mut b = [0u8; 8];
                b.copy_from_slice(&rest[5..13]);
                b
            }),
            payload: rest[RECORD_HEADER..RECORD_HEADER + len].to_vec(),
        };
        // A footer is only "clean" when it checksums everything before
        // itself *and* is the final record.
        scan.clean_footer = kind == RecordKind::Footer
            && record.payload.len() == 8
            && {
                let mut b = [0u8; 8];
                b.copy_from_slice(&record.payload);
                // The footer covers magic + all prior records; callers pass
                // `base` = magic length, so reconstruct the prefix sum.
                u64::from_be_bytes(b) == fnv1a64_prefixed(base, &bytes[..at])
            }
            && at + total == bytes.len();
        scan.items.push(ScanItem::Record { offset, record });
        at += total;
    }
    scan
}

/// fnv1a64 of `WAL_MAGIC[..base]` followed by `rest` — the footer's
/// coverage. `base` is always the magic length in practice.
fn fnv1a64_prefixed(base: u64, rest: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(base as usize + rest.len());
    buf.extend_from_slice(&WAL_MAGIC[..(base as usize).min(WAL_MAGIC.len())]);
    buf.extend_from_slice(rest);
    fnv1a64(&buf)
}

/// Reads and scans the active WAL under `root`, honouring an injected
/// short read. Missing file scans empty; a bad magic is reported as a
/// torn tail at offset 0 (the whole file is quarantined by recovery).
///
/// # Errors
///
/// Returns [`DbError::Io`] on filesystem trouble other than the file
/// being absent.
pub fn scan_wal(root: &Path, faults: &DiskFaults) -> Result<WalScan, DbError> {
    scan_file(&root.join(WAL_FILE), faults)
}

/// One scanned segment of the WAL chain, in chain order.
#[derive(Clone, Debug)]
pub struct SegmentScan {
    /// Sealed segment index; `None` for the active `wal.log`.
    pub index: Option<u64>,
    /// File name within the database root.
    pub name: String,
    /// The segment's scan.
    pub scan: WalScan,
}

impl SegmentScan {
    /// True for the active (newest, appendable) log.
    pub fn is_active(&self) -> bool {
        self.index.is_none()
    }
}

/// Scans the whole WAL chain: sealed segments in ascending index order,
/// then the active log last. The injected short read applies to the
/// active log only (sealed segments are immutable history; the fault
/// models a torn *append*).
///
/// # Errors
///
/// Returns [`DbError::Io`] on filesystem trouble.
pub fn scan_chain(root: &Path, faults: &DiskFaults) -> Result<Vec<SegmentScan>, DbError> {
    let mut out = Vec::new();
    for (idx, path) in sealed_segments(root)? {
        out.push(SegmentScan {
            index: Some(idx),
            name: segment_file_name(idx),
            scan: scan_file(&path, &DiskFaults::default())?,
        });
    }
    out.push(SegmentScan {
        index: None,
        name: WAL_FILE.to_string(),
        scan: scan_wal(root, faults)?,
    });
    Ok(out)
}

/// Reads and scans one WAL segment file.
fn scan_file(path: &Path, faults: &DiskFaults) -> Result<WalScan, DbError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(io_err(path, e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| io_err(path, e))?;
    if let Some(cap) = faults.short_read {
        bytes.truncate(cap as usize);
    }
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        let mut scan = WalScan {
            file_len: bytes.len() as u64,
            ..WalScan::default()
        };
        if !bytes.is_empty() {
            scan.items.push(ScanItem::TornTail { offset: 0 });
        }
        return Ok(scan);
    }
    Ok(scan_bytes(
        &bytes[WAL_MAGIC.len()..],
        WAL_MAGIC.len() as u64,
    ))
}

/// Best-effort directory fsync so a rename survives power loss; ignored
/// on filesystems that refuse to sync directories.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Atomic file replace with durability: write temp, fsync, rename,
/// fsync the directory.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DbError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(())
}

/// Observability counters of one [`Wal`] handle (since open).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (including failed injected-fault appends).
    pub appends: u64,
    /// Fsyncs attempted.
    pub syncs: u64,
    /// Checkpoints taken (log folded away).
    pub checkpoints: u64,
    /// Active-log seals (segment rolls).
    pub seals: u64,
    /// Sealed segments folded away by compaction checkpoints.
    pub segments_compacted: u64,
    /// Live segments right now (sealed + the active log).
    pub live_segments: u64,
}

/// An open, appendable WAL (the active segment of the chain).
#[derive(Debug)]
pub struct Wal {
    root: PathBuf,
    path: PathBuf,
    file: File,
    len: u64,
    sealed: Vec<u64>,
    entries_since_checkpoint: u64,
    appends: u64,
    syncs: u64,
    checkpoints: u64,
    seals: u64,
    segments_compacted: u64,
    faults: DiskFaults,
}

impl Wal {
    /// Opens (creating with a fresh magic if needed) the WAL under
    /// `root` for appending. `pending_entries` is the `E`-record count a
    /// prior scan found, so [`Wal::has_pending`] is accurate from the
    /// start.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble.
    pub fn open_append(
        root: &Path,
        pending_entries: u64,
        faults: DiskFaults,
    ) -> Result<Wal, DbError> {
        let path = root.join(WAL_FILE);
        if !path.exists() {
            write_atomic(&path, WAL_MAGIC)?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let len = file.metadata().map_err(|e| io_err(&path, e))?.len();
        let sealed = sealed_segments(root)?.into_iter().map(|(i, _)| i).collect();
        Ok(Wal {
            root: root.to_path_buf(),
            path,
            file,
            len,
            sealed,
            entries_since_checkpoint: pending_entries,
            appends: 0,
            syncs: 0,
            checkpoints: 0,
            seals: 0,
            segments_compacted: 0,
            faults,
        })
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the WAL holds no bytes past the magic.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// `E` records written (or found at open) since the last checkpoint.
    pub fn has_pending(&self) -> bool {
        self.entries_since_checkpoint > 0
    }

    /// Appends one record (no fsync — call [`Wal::sync`] before
    /// acknowledging anything).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on write failure, including an injected
    /// torn write (which leaves a detectable partial record on disk).
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), DbError> {
        self.appends += 1;
        let mut bytes = encode_record(rec);
        if let Some(bit) = self.faults.bit_flip.take() {
            let nbits = (bytes.len() as u64) * 8;
            let b = (bit % nbits) as usize;
            bytes[b / 8] ^= 1 << (b % 8);
        }
        if let Some(k) = self.faults.torn_write.take() {
            let cut = (k as usize).min(bytes.len());
            let wrote = self.file.write_all(&bytes[..cut]);
            let _ = self.file.sync_all();
            self.len += cut as u64;
            wrote.map_err(|e| io_err(&self.path, e))?;
            return Err(DbError::Io(format!(
                "{}: injected torn write after {cut} of {} record bytes",
                self.path.display(),
                bytes.len()
            )));
        }
        self.file
            .write_all(&bytes)
            .map_err(|e| io_err(&self.path, e))?;
        self.len += bytes.len() as u64;
        if rec.kind == RecordKind::Entry {
            self.entries_since_checkpoint += 1;
        }
        Ok(())
    }

    /// Forces appended records to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on fsync failure (real or injected); the
    /// caller must treat the preceding append as not durable.
    pub fn sync(&mut self) -> Result<(), DbError> {
        self.syncs += 1;
        if let Some(n) = self.faults.fsync_fail {
            if self.syncs >= n {
                self.faults.fsync_fail = None;
                return Err(DbError::Io(format!(
                    "{}: injected fsync failure (sync #{})",
                    self.path.display(),
                    self.syncs
                )));
            }
        }
        self.file.sync_all().map_err(|e| io_err(&self.path, e))
    }

    /// Live segments in the chain: sealed ones plus the active log.
    pub fn live_segments(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Seals the active log: fsyncs it, renames it to the next
    /// `wal.NNNNNN.log` slot, and starts a fresh active log. Pending
    /// entries stay pending — they now live in the sealed segment until
    /// the next checkpoint folds the chain away. Returns the new
    /// segment's index.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble; on failure the
    /// active log stays in place (a completed rename with a failed
    /// fresh-log write is repaired at reopen, which recreates `wal.log`).
    pub fn seal(&mut self) -> Result<u64, DbError> {
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        let idx = self.sealed.last().map_or(0, |i| i + 1);
        let seg = self.root.join(segment_file_name(idx));
        std::fs::rename(&self.path, &seg).map_err(|e| io_err(&seg, e))?;
        sync_dir(&self.root);
        write_atomic(&self.path, WAL_MAGIC)?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        self.len = WAL_MAGIC.len() as u64;
        self.sealed.push(idx);
        self.seals += 1;
        Ok(idx)
    }

    /// Checkpoints: atomically replaces the active log with a fresh one
    /// holding only the magic, an id-carryover record, and a clean
    /// footer, then deletes the sealed segments (compaction). All entry
    /// redo state must already be applied to entry files.
    ///
    /// Segment deletion is best-effort and ordered *after* the fresh
    /// log is durable: a leftover sealed segment only causes idempotent
    /// already-applied replay at the next open, never data loss.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble; the old log stays
    /// in place on failure.
    pub fn checkpoint(&mut self, carry_ids: &[u64]) -> Result<(), DbError> {
        let mut buf = WAL_MAGIC.to_vec();
        if !carry_ids.is_empty() {
            buf.extend_from_slice(&encode_record(&WalRecord::ids(carry_ids)));
        }
        let footer = WalRecord {
            kind: RecordKind::Footer,
            req_id: 0,
            payload: fnv1a64(&buf).to_be_bytes().to_vec(),
        };
        buf.extend_from_slice(&encode_record(&footer));
        write_atomic(&self.path, &buf)?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        self.len = buf.len() as u64;
        self.entries_since_checkpoint = 0;
        self.checkpoints += 1;
        self.segments_compacted += self.sealed.len() as u64;
        for idx in std::mem::take(&mut self.sealed) {
            let _ = std::fs::remove_file(self.root.join(segment_file_name(idx)));
        }
        sync_dir(&self.root);
        Ok(())
    }

    /// Observability counters for this handle.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends,
            syncs: self.syncs,
            checkpoints: self.checkpoints,
            seals: self.seals,
            segments_compacted: self.segments_compacted,
            live_segments: self.live_segments() as u64,
        }
    }

    /// Truncates the file to `len` bytes (recovery's torn-tail cut).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble.
    pub fn truncate_to(path: &Path, len: u64) -> Result<(), DbError> {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        f.set_len(len).map_err(|e| io_err(path, e))?;
        f.sync_all().map_err(|e| io_err(path, e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn records_round_trip_through_scan() {
        let root = tmpdir("roundtrip");
        let mut wal = Wal::open_append(&root, 0, DiskFaults::default()).unwrap();
        wal.append(&WalRecord::entry(7, "# profdb v1\n")).unwrap();
        wal.append(&WalRecord::ids(&[1, 2, 3])).unwrap();
        wal.sync().unwrap();
        let scan = scan_wal(&root, &DiskFaults::default()).unwrap();
        assert_eq!(scan.items.len(), 2);
        assert_eq!(scan.pending_entries(), 1);
        assert_eq!(scan.known_ids(), vec![7, 1, 2, 3]);
        assert!(!scan.clean_footer);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_leaves_a_clean_footer() {
        let root = tmpdir("footer");
        let mut wal = Wal::open_append(&root, 0, DiskFaults::default()).unwrap();
        wal.append(&WalRecord::entry(9, "x")).unwrap();
        wal.sync().unwrap();
        assert!(wal.has_pending());
        wal.checkpoint(&[9]).unwrap();
        assert!(!wal.has_pending());
        let scan = scan_wal(&root, &DiskFaults::default()).unwrap();
        assert!(scan.clean_footer, "{scan:?}");
        assert_eq!(scan.pending_entries(), 0);
        assert_eq!(scan.known_ids(), vec![9]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_append_is_a_torn_tail() {
        let root = tmpdir("torn");
        let mut wal = Wal::open_append(&root, 0, DiskFaults::default()).unwrap();
        wal.append(&WalRecord::entry(1, "first")).unwrap();
        wal.sync().unwrap();
        // Crash mid-append: only half the record lands.
        let rec = encode_record(&WalRecord::entry(2, "second"));
        let mut f = OpenOptions::new()
            .append(true)
            .open(root.join(WAL_FILE))
            .unwrap();
        f.write_all(&rec[..rec.len() / 2]).unwrap();
        drop(f);
        let scan = scan_wal(&root, &DiskFaults::default()).unwrap();
        assert_eq!(scan.pending_entries(), 1);
        assert!(matches!(scan.items.last(), Some(ScanItem::TornTail { .. })));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bit_flip_is_quarantinable_not_fatal() {
        let root = tmpdir("flip");
        let faults = DiskFaults {
            bit_flip: Some(200),
            ..DiskFaults::default()
        };
        let mut wal = Wal::open_append(&root, 0, faults).unwrap();
        wal.append(&WalRecord::entry(1, "will be flipped")).unwrap();
        wal.append(&WalRecord::entry(2, "clean after")).unwrap();
        wal.sync().unwrap();
        let scan = scan_wal(&root, &DiskFaults::default()).unwrap();
        let corrupt = scan
            .items
            .iter()
            .filter(|i| matches!(i, ScanItem::Corrupt { .. }))
            .count();
        assert_eq!(corrupt, 1, "{scan:?}");
        // The record after the corruption still scans.
        assert_eq!(scan.pending_entries(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_fsync_failure_surfaces() {
        let root = tmpdir("fsync");
        let faults = DiskFaults {
            fsync_fail: Some(1),
            ..DiskFaults::default()
        };
        let mut wal = Wal::open_append(&root, 0, faults).unwrap();
        wal.append(&WalRecord::entry(1, "x")).unwrap();
        assert!(wal.sync().is_err());
        // One-shot: the next sync succeeds.
        assert!(wal.sync().is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn seal_rolls_the_active_log_and_chain_scans_in_order() {
        let root = tmpdir("seal");
        let mut wal = Wal::open_append(&root, 0, DiskFaults::default()).unwrap();
        wal.append(&WalRecord::entry(1, "first")).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.seal().unwrap(), 0);
        assert_eq!(wal.live_segments(), 2);
        wal.append(&WalRecord::entry(2, "second")).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.seal().unwrap(), 1);
        wal.append(&WalRecord::entry(3, "third")).unwrap();
        wal.sync().unwrap();
        assert!(wal.has_pending());

        let chain = scan_chain(&root, &DiskFaults::default()).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].index, Some(0));
        assert_eq!(chain[1].index, Some(1));
        assert!(chain[2].is_active());
        let ids: Vec<u64> = chain.iter().flat_map(|seg| seg.scan.known_ids()).collect();
        assert_eq!(ids, vec![1, 2, 3], "chain order is oldest-first");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sealed_indices_resume_after_reopen() {
        let root = tmpdir("seal-reopen");
        {
            let mut wal = Wal::open_append(&root, 0, DiskFaults::default()).unwrap();
            wal.append(&WalRecord::entry(1, "x")).unwrap();
            wal.sync().unwrap();
            wal.seal().unwrap();
        }
        let mut wal = Wal::open_append(&root, 1, DiskFaults::default()).unwrap();
        assert_eq!(wal.live_segments(), 2);
        assert_eq!(wal.seal().unwrap(), 1, "indices continue past history");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_compacts_sealed_segments() {
        let root = tmpdir("compact");
        let mut wal = Wal::open_append(&root, 0, DiskFaults::default()).unwrap();
        for i in 0..3u64 {
            wal.append(&WalRecord::entry(i + 1, "entry")).unwrap();
            wal.sync().unwrap();
            wal.seal().unwrap();
        }
        assert_eq!(wal.live_segments(), 4);
        wal.checkpoint(&[1, 2, 3]).unwrap();
        assert_eq!(wal.live_segments(), 1);
        let stats = wal.stats();
        assert_eq!(stats.seals, 3);
        assert_eq!(stats.segments_compacted, 3);
        assert!(sealed_segments(&root).unwrap().is_empty());
        let scan = scan_wal(&root, &DiskFaults::default()).unwrap();
        assert!(scan.clean_footer);
        assert_eq!(scan.known_ids(), vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(7), "wal.000007.log");
        assert_eq!(parse_segment_name("wal.000007.log"), Some(7));
        assert_eq!(parse_segment_name("wal.1000000.log"), Some(1_000_000));
        assert_eq!(parse_segment_name(WAL_FILE), None);
        assert_eq!(parse_segment_name("wal.x.log"), None);
        assert_eq!(parse_segment_name("wal..log"), None);
        assert_eq!(parse_segment_name("entry@00.profdb"), None);
    }

    #[test]
    fn short_read_truncates_the_scan() {
        let root = tmpdir("short");
        let mut wal = Wal::open_append(&root, 0, DiskFaults::default()).unwrap();
        wal.append(&WalRecord::entry(1, "first")).unwrap();
        wal.append(&WalRecord::entry(2, "second")).unwrap();
        wal.sync().unwrap();
        let full = scan_wal(&root, &DiskFaults::default()).unwrap();
        assert_eq!(full.pending_entries(), 2);
        let faults = DiskFaults {
            short_read: Some(full.file_len - 3),
            ..DiskFaults::default()
        };
        let short = scan_wal(&root, &faults).unwrap();
        assert_eq!(short.pending_entries(), 1);
        assert!(matches!(
            short.items.last(),
            Some(ScanItem::TornTail { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }
}
