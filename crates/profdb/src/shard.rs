//! Shard assignment for the clustered profile service.
//!
//! Every profile key — `(workload, module content hash)` — is owned by
//! exactly one shard, chosen by hashing the key with fnv1a64 and reducing
//! modulo the shard count. The router consults the map on every request;
//! shard daemons never need it (they serve whatever keys land on them),
//! so the map is a pure function with no persistent state.
//!
//! **Stability contract:** the mapping is part of the cluster's on-disk
//! contract. Re-mapping a key silently would strand its accumulated
//! profile on the old shard, so any change to the key encoding or the
//! hash (not the shard *count* — resharding is an explicit operation)
//! must bump [`SHARD_MAP_VERSION`], and the golden-vector test in this
//! module pins the current assignment byte-for-byte.

use crate::hash::fnv1a64;

/// Version of the key→shard hash scheme (not of any particular cluster
/// size). Bump when [`ShardMap::key_hash`] changes meaning.
pub const SHARD_MAP_VERSION: u32 = 1;

/// Pure key→shard assignment for a fixed number of shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` shards (clamped to at least one).
    pub fn new(shards: u32) -> ShardMap {
        ShardMap {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The stable 64-bit hash of a profile key, independent of the shard
    /// count: fnv1a64 over `workload`, a NUL separator (workload names
    /// reject control characters, so the encoding is injective), and the
    /// big-endian module hash.
    pub fn key_hash(workload: &str, module_hash: u64) -> u64 {
        let mut buf = Vec::with_capacity(workload.len() + 9);
        buf.extend_from_slice(workload.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&module_hash.to_be_bytes());
        fnv1a64(&buf)
    }

    /// The shard owning `(workload, module_hash)`.
    pub fn shard_of(&self, workload: &str, module_hash: u64) -> u32 {
        (Self::key_hash(workload, module_hash) % u64::from(self.shards)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden vectors for the shard assignment.
    ///
    /// These pins are the cluster's compatibility contract: a profile key
    /// must map to the same shard in every build, or an upgraded router
    /// silently reads/writes the wrong shard and accumulated profiles
    /// appear lost. If this test ever fails because `key_hash` changed
    /// on purpose, you are re-sharding every deployed cluster: bump
    /// `SHARD_MAP_VERSION`, update the vectors in the same commit, and
    /// provide a migration path for existing stores. Never "fix" the
    /// vectors without the version bump.
    #[test]
    fn golden_shard_assignment() {
        assert_eq!(SHARD_MAP_VERSION, 1, "vectors below pin version 1");
        let vectors: &[(&str, u64, u64)] = &[
            // (workload, module_hash, expected key_hash)
            ("mcf", 0x0000_0000_0000_0000, 0xd6dd_3c4f_6f55_2e1f),
            ("mcf", 0xdead_beef_cafe_f00d, 0x5bd6_aae3_fbb1_e936),
            ("181.mcf", 0xdead_beef_cafe_f00d, 0xd5d9_ff42_2511_ed08),
            ("bzip2", 0x0123_4567_89ab_cdef, 0x8d21_9321_e397_cd36),
            ("gap-bfs", 0xffff_ffff_ffff_ffff, 0x4e74_762a_c297_5b8d),
            ("x.y_z-0", 0x0000_0000_0000_0001, 0xf8cf_0d8b_0e86_055d),
        ];
        for &(workload, module_hash, expect) in vectors {
            assert_eq!(
                ShardMap::key_hash(workload, module_hash),
                expect,
                "key_hash({workload:?}, {module_hash:#x}) drifted"
            );
        }
        // Spot-pin the reductions actually used by the chaos campaign's
        // 3-shard topology.
        let map = ShardMap::new(3);
        let assigned: Vec<u32> = vectors
            .iter()
            .map(|&(w, h, _)| map.shard_of(w, h))
            .collect();
        assert_eq!(assigned, vec![1, 1, 0, 1, 1, 1]);
    }

    #[test]
    fn shard_of_is_bounded_and_total() {
        for shards in 1..8u32 {
            let map = ShardMap::new(shards);
            for i in 0..64u64 {
                assert!(map.shard_of("w", i.wrapping_mul(0x9e37_79b9)) < shards);
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardMap::new(0).shards(), 1);
        assert_eq!(ShardMap::new(0).shard_of("mcf", 7), 0);
    }

    #[test]
    fn key_encoding_separates_workload_from_hash() {
        // "ab" + hash X must not collide with "a" + some other encoding:
        // the NUL separator keeps the preimage unambiguous.
        assert_ne!(
            ShardMap::key_hash("ab", 0x6261_0000_0000_0000),
            ShardMap::key_hash("a", 0x0062_0000_0000_0000),
        );
    }
}
