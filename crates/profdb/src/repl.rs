//! Replica delta exchange: the unit of replication between the replicas
//! of a shard.
//!
//! A **delta** is one client-submitted merge — the *incoming* profile
//! entry plus the request's idempotency id — not the WAL's post-merge
//! redo state. That distinction is what makes replication delivery-order
//! independent: post-merge states are absolute snapshots (applying them
//! out of order rolls counters back), whereas incoming entries are pure
//! increments under [`ProfileEntry::merge`], which is commutative,
//! associative, and saturating byte-for-byte. Any replica that applies
//! the same *set* of deltas — in any order, with any duplication —
//! converges to the identical store bytes:
//!
//! * ordering: merge commutativity/associativity (PR 3's property,
//!   strengthened to exact byte equality by the canonical top-table
//!   order);
//! * duplication: every delta carries a nonzero request id and is
//!   applied through [`ProfileDb::merge_store_logged`]'s dedup, so
//!   redelivery is exactly-once;
//! * loss: the sender retries a batch until acknowledged; resends are
//!   harmless by the previous two points.
//!
//! Batches reuse the WAL redo record's shape — `(req_id, entry text)`
//! pairs — in a line-oriented, checksummed text envelope that travels
//! inside wire-protocol request bodies:
//!
//! ```text
//! # profdb delta-batch v1
//! count <N>
//! delta id=<16 hex> bytes=<B>
//! <B bytes of profile entry text>
//! ...
//! checksum <16 hex>              fnv1a64 of everything above
//! ```

use crate::entry::{DbError, ProfileEntry};
use crate::hash::fnv1a64;
use crate::store::{DigestEntry, ProfileDb};
use std::fmt::Write as _;

/// Header line of the batch envelope.
pub const DELTA_BATCH_HEADER: &str = "# profdb delta-batch v1";

/// Header line of the digest-table envelope.
pub const DIGEST_TABLE_HEADER: &str = "# profdb digest v1";

/// One replicated merge: the client's incoming entry and its idempotency
/// id (never zero — dedup is what makes redelivery safe).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaRecord {
    /// Idempotency id stamped by the original submitter.
    pub req_id: u64,
    /// The *pre-merge* incoming entry text (a `# profdb v1` document).
    pub entry_text: String,
}

/// What applying a batch did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaApplyReport {
    /// Deltas merged into the store.
    pub applied: usize,
    /// Deltas skipped because their id was already applied.
    pub deduped: usize,
}

/// Serializes a delta batch into its checksummed text envelope.
pub fn encode_delta_batch(deltas: &[DeltaRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{DELTA_BATCH_HEADER}");
    let _ = writeln!(out, "count {}", deltas.len());
    for d in deltas {
        let _ = writeln!(
            out,
            "delta id={:016x} bytes={}",
            d.req_id,
            d.entry_text.len()
        );
        out.push_str(&d.entry_text);
        if !d.entry_text.ends_with('\n') {
            out.push('\n');
        }
    }
    let sum = fnv1a64(out.as_bytes());
    let _ = writeln!(out, "checksum {sum:016x}");
    out
}

fn batch_err(msg: impl Into<String>) -> DbError {
    DbError::KeyMismatch(format!("delta batch: {}", msg.into()))
}

/// Parses and verifies a delta batch envelope.
///
/// # Errors
///
/// Returns [`DbError::KeyMismatch`] for any structural problem — bad
/// header, count mismatch, zero id, or a checksum that does not match
/// (a corrupted batch must be rejected whole, never half-applied).
pub fn decode_delta_batch(text: &str) -> Result<Vec<DeltaRecord>, DbError> {
    // Split off and verify the checksum line first: it covers every
    // preceding byte, so nothing else is trusted until it matches.
    let body_end = text
        .rfind("checksum ")
        .ok_or_else(|| batch_err("missing checksum line"))?;
    if body_end == 0 || text.as_bytes()[body_end - 1] != b'\n' {
        return Err(batch_err("checksum line not at line start"));
    }
    let sum_line = text[body_end..].trim_end();
    let tail = &text[body_end + sum_line.len()..];
    if !tail.trim().is_empty() {
        return Err(batch_err("trailing bytes after checksum line"));
    }
    let want = u64::from_str_radix(sum_line["checksum ".len()..].trim(), 16)
        .map_err(|_| batch_err(format!("unparsable checksum line `{sum_line}`")))?;
    let body = &text[..body_end];
    let got = fnv1a64(body.as_bytes());
    if got != want {
        return Err(batch_err(format!(
            "checksum mismatch: batch says {want:016x}, content hashes to {got:016x}"
        )));
    }

    let mut rest = body;
    let line = |rest: &mut &str| -> Option<String> {
        let end = rest.find('\n')?;
        let l = rest[..end].to_string();
        *rest = &rest[end + 1..];
        Some(l)
    };
    let header = line(&mut rest).ok_or_else(|| batch_err("empty batch"))?;
    if header.trim() != DELTA_BATCH_HEADER {
        return Err(batch_err(format!("bad header `{}`", header.trim())));
    }
    let count_line = line(&mut rest).ok_or_else(|| batch_err("missing count"))?;
    let count: usize = count_line
        .strip_prefix("count ")
        .and_then(|n| n.trim().parse().ok())
        .ok_or_else(|| batch_err(format!("bad count line `{count_line}`")))?;

    let mut deltas = Vec::with_capacity(count);
    for i in 0..count {
        let head = line(&mut rest).ok_or_else(|| batch_err(format!("truncated at delta {i}")))?;
        let rest_head = head
            .strip_prefix("delta id=")
            .ok_or_else(|| batch_err(format!("bad delta header `{head}`")))?;
        let (id_s, bytes_s) = rest_head
            .split_once(" bytes=")
            .ok_or_else(|| batch_err(format!("bad delta header `{head}`")))?;
        let req_id = u64::from_str_radix(id_s.trim(), 16)
            .map_err(|_| batch_err(format!("bad delta id `{id_s}`")))?;
        if req_id == 0 {
            return Err(batch_err(format!(
                "delta {i} has id 0: exactly-once replication needs a real idempotency id"
            )));
        }
        let nbytes: usize = bytes_s
            .trim()
            .parse()
            .map_err(|_| batch_err(format!("bad delta length `{bytes_s}`")))?;
        let entry_text = rest
            .get(..nbytes)
            .ok_or_else(|| batch_err(format!("delta {i} overruns the batch")))?
            .to_string();
        rest = rest
            .get(nbytes..)
            .ok_or_else(|| batch_err(format!("delta {i} splits a character")))?;
        // encode adds a newline after non-newline-terminated payloads;
        // swallow the separator either way.
        if let Some(stripped) = rest.strip_prefix('\n') {
            if !entry_text.ends_with('\n') {
                rest = stripped;
            }
        }
        deltas.push(DeltaRecord { req_id, entry_text });
    }
    if !rest.trim().is_empty() {
        return Err(batch_err(format!(
            "{} byte(s) of slack between last delta and checksum",
            rest.len()
        )));
    }
    Ok(deltas)
}

/// Serializes a digest table into its text envelope (no checksum line —
/// digests travel inside checksummed wire frames and are advisory: a
/// corrupted digest at worst triggers one spurious repair round, which
/// dedup makes harmless).
pub fn encode_digest_table(entries: &[DigestEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{DIGEST_TABLE_HEADER}");
    let _ = writeln!(out, "count {}", entries.len());
    for e in entries {
        let _ = writeln!(
            out,
            "entry {} {:016x} {:016x}",
            e.workload, e.module_hash, e.digest
        );
    }
    out
}

/// Parses a digest-table envelope.
///
/// # Errors
///
/// Returns [`DbError::KeyMismatch`] for a bad header, count mismatch, or
/// unparsable line.
pub fn decode_digest_table(text: &str) -> Result<Vec<DigestEntry>, DbError> {
    let err = |msg: String| DbError::KeyMismatch(format!("digest table: {msg}"));
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| err("empty".into()))?;
    if header.trim() != DIGEST_TABLE_HEADER {
        return Err(err(format!("bad header `{}`", header.trim())));
    }
    let count_line = lines.next().ok_or_else(|| err("missing count".into()))?;
    let count: usize = count_line
        .strip_prefix("count ")
        .and_then(|n| n.trim().parse().ok())
        .ok_or_else(|| err(format!("bad count line `{count_line}`")))?;
    let mut entries = Vec::with_capacity(count);
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("entry ")
            .ok_or_else(|| err(format!("bad line `{line}`")))?;
        let mut parts = rest.split_whitespace();
        let (Some(workload), Some(hash_s), Some(digest_s), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(err(format!("bad line `{line}`")));
        };
        let module_hash = u64::from_str_radix(hash_s, 16)
            .map_err(|_| err(format!("bad module hash `{hash_s}`")))?;
        let digest = u64::from_str_radix(digest_s, 16)
            .map_err(|_| err(format!("bad digest `{digest_s}`")))?;
        entries.push(DigestEntry {
            workload: workload.to_string(),
            module_hash,
            digest,
        });
    }
    if entries.len() != count {
        return Err(err(format!(
            "count says {count}, table holds {}",
            entries.len()
        )));
    }
    Ok(entries)
}

impl ProfileDb {
    /// Applies a replication delta batch, exactly-once per id: each
    /// delta's entry is parsed and merged through
    /// [`ProfileDb::merge_store_logged`] under its original request id,
    /// so redelivered or overlapping batches never double-count. Every
    /// delta that actually applied is also appended to the pre-merge
    /// retention window, so anti-entropy can later re-send it verbatim
    /// to a diverged sibling.
    ///
    /// # Errors
    ///
    /// Propagates parse/merge/WAL failures of the first failing delta;
    /// deltas before it are applied and durable (redelivery of the whole
    /// batch is the intended retry path — dedup skips them).
    pub fn apply_deltas(&self, deltas: &[DeltaRecord]) -> Result<DeltaApplyReport, DbError> {
        let mut report = DeltaApplyReport::default();
        for d in deltas {
            let entry = ProfileEntry::from_text(&d.entry_text)?;
            let (_, duplicate) = self.merge_store_logged(&entry, d.req_id)?;
            if duplicate {
                report.deduped += 1;
            } else {
                self.retain_delta(d.req_id, &d.entry_text)?;
                report.applied += 1;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(id: u64, text: &str) -> DeltaRecord {
        DeltaRecord {
            req_id: id,
            entry_text: text.to_string(),
        }
    }

    #[test]
    fn batch_round_trip() {
        let deltas = vec![
            delta(0x1111, "# profdb v1\nworkload a\n"),
            delta(0x2222, "no trailing newline"),
            delta(0xffff_ffff_ffff_ffff, ""),
        ];
        let text = encode_delta_batch(&deltas);
        let back = decode_delta_batch(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], deltas[0]);
        assert_eq!(back[1].entry_text, "no trailing newline");
        assert_eq!(back[2].req_id, u64::MAX);
    }

    #[test]
    fn empty_batch_round_trips() {
        let text = encode_delta_batch(&[]);
        assert!(decode_delta_batch(&text).unwrap().is_empty());
    }

    #[test]
    fn corrupted_batch_is_rejected_whole() {
        let text = encode_delta_batch(&[delta(7, "# profdb v1\nworkload a\n")]);
        let evil = text.replace("workload a", "workload b");
        let err = decode_delta_batch(&evil).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn zero_id_is_rejected() {
        // Hand-build a batch with id 0 (encode would happily write it,
        // but apply-side dedup could not make it exactly-once).
        let mut body = format!("{DELTA_BATCH_HEADER}\ncount 1\ndelta id=0 bytes=1\nx\n");
        let sum = crate::hash::fnv1a64(body.as_bytes());
        body.push_str(&format!("checksum {sum:016x}\n"));
        let err = decode_delta_batch(&body).unwrap_err();
        assert!(err.to_string().contains("id 0"), "{err}");
    }

    #[test]
    fn digest_table_round_trips_and_rejects_garbage() {
        let entries = vec![
            DigestEntry {
                workload: "gap".into(),
                module_hash: 0x9,
                digest: 0xdead_beef,
            },
            DigestEntry {
                workload: "mcf".into(),
                module_hash: 0x1234,
                digest: 1,
            },
        ];
        let text = encode_digest_table(&entries);
        assert_eq!(decode_digest_table(&text).unwrap(), entries);
        assert!(decode_digest_table(&encode_digest_table(&[]))
            .unwrap()
            .is_empty());
        assert!(decode_digest_table("").is_err());
        assert!(decode_digest_table("# wrong header\ncount 0\n").is_err());
        let short = text.replace("count 2", "count 3");
        assert!(decode_digest_table(&short).is_err());
        let mangled = text.replace("entry mcf", "mcf entry");
        assert!(decode_digest_table(&mangled).is_err());
    }

    #[test]
    fn applied_deltas_are_retained_for_anti_entropy() {
        let root = std::env::temp_dir().join(format!("repl-retain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let db = ProfileDb::open(&root).unwrap();
        let text = ProfileEntry {
            workload: "mcf".into(),
            module_hash: 3,
            runs: 1,
            edge_tables: vec![vec![5, 0, 3]],
            stride: stride_profiling::StrideProfile::new(),
        }
        .to_text();
        let a = delta(0x11, &text);
        let b = delta(0x22, &text);
        db.apply_deltas(&[a.clone(), b.clone(), a.clone()]).unwrap();
        // Two applied, the redelivered duplicate deduped — and only the
        // applied ones retained, in order.
        assert_eq!(db.retained_deltas(), vec![a.clone(), b.clone()]);
        drop(db);
        // The window is durable across a crash-reopen...
        let db = ProfileDb::open(&root).unwrap();
        assert_eq!(db.retained_deltas(), vec![a, b]);
        // ...and cleared by a checkpoint (the repair-window bound).
        db.checkpoint().unwrap();
        drop(db);
        let db = ProfileDb::open(&root).unwrap();
        assert!(db.retained_deltas().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_batch_is_rejected() {
        let text = encode_delta_batch(&[delta(7, "payload text here")]);
        // Rebuild with a length overrunning the body but a valid checksum.
        let evil_body = text
            .replace("bytes=17", "bytes=9999")
            .rsplit_once("checksum ")
            .map(|(body, _)| body.to_string())
            .unwrap();
        let sum = crate::hash::fnv1a64(evil_body.as_bytes());
        let evil = format!("{evil_body}checksum {sum:016x}\n");
        let err = decode_delta_batch(&evil).unwrap_err();
        assert!(err.to_string().contains("overruns"), "{err}");
    }
}
