//! `profdb` — offline administration for a profile database directory.
//!
//! ```text
//! profdb check   [--db DIR]                  read-only integrity audit
//! profdb list    [--db DIR]                  list entries (verified checksums)
//! profdb recover [--db DIR]                  replay the WAL, quarantine damage
//! profdb gc      [--db DIR] --keep A,B [--dry-run]
//! ```
//!
//! `check`, `list`, and `gc` never mutate the store: they open it without
//! running recovery, so a crash-interrupted database is reported (and, for
//! `gc`, refused) rather than silently repaired. Only `recover` applies
//! the WAL; it then checkpoints so the applied tail is retired and later
//! unrecovered opens see a clean log.
//!
//! Exit status: 0 ok, 1 corruption/refused/failed, 2 usage.

use std::path::PathBuf;
use std::process::ExitCode;
use stride_profdb::{check, recover, DiskFaults, ProfileDb};

fn usage() -> ExitCode {
    eprintln!(
        "usage: profdb COMMAND [--db DIR] [FLAGS]\n\
         \n\
         \x20 check                  audit WAL and entry checksums (read-only)\n\
         \x20 list                   list entries; corrupt entries are counted, not shown\n\
         \x20 recover                replay the WAL: apply complete records, truncate a\n\
         \x20                        torn tail, quarantine checksum failures\n\
         \x20 gc --keep A,B          remove entries for workloads not in the keep list\n\
         \x20    [--dry-run]         print what gc would remove, remove nothing\n\
         \n\
         \x20 --db DIR               database directory (default ./profdb)\n\
         \n\
         gc refuses to run while the WAL has an unapplied tail; run\n\
         `profdb recover` first.\n\
         exit codes: 0 ok, 1 corruption/refused/failed, 2 usage"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    let rest = &args[1..];
    let db = PathBuf::from(flag_value(rest, "--db").unwrap_or_else(|| "profdb".to_string()));

    match cmd {
        "check" => {
            let (report, healthy) = check(&db);
            print!("{report}");
            if healthy {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "list" => {
            let store = match ProfileDb::open_unrecovered(&db) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("profdb: cannot open {}: {e}", db.display());
                    return ExitCode::FAILURE;
                }
            };
            match store.list_verified() {
                Ok((records, corrupt)) => {
                    for rec in &records {
                        println!(
                            "{} module-hash={:016x} runs={}",
                            rec.workload, rec.module_hash, rec.runs
                        );
                    }
                    println!(
                        "{} entr{}, {} corrupt{}",
                        records.len(),
                        if records.len() == 1 { "y" } else { "ies" },
                        corrupt,
                        if store.wal_pending() {
                            ", wal tail pending (run `profdb recover`)"
                        } else {
                            ""
                        }
                    );
                    if corrupt == 0 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("profdb: list failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "recover" => match recover(&db, &DiskFaults::default()) {
            Ok(report) => {
                println!("{report}");
                // Checkpoint so the applied tail is retired from the WAL:
                // without this, the next unrecovered open (check/list/gc)
                // would still see the records as pending.
                match ProfileDb::open(&db).and_then(|store| store.checkpoint()) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("profdb: post-recovery checkpoint failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("profdb: recovery failed: {e}");
                ExitCode::FAILURE
            }
        },
        "gc" => {
            let Some(keep) = flag_value(rest, "--keep") else {
                eprintln!("profdb: gc needs --keep A,B (an empty value keeps nothing)");
                return usage();
            };
            let dry_run = rest.iter().any(|a| a == "--dry-run");
            let keep: Vec<String> = keep
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            let store = match ProfileDb::open_unrecovered(&db) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("profdb: cannot open {}: {e}", db.display());
                    return ExitCode::FAILURE;
                }
            };
            let live = |workload: &str, _hash: u64| keep.iter().any(|k| k == workload);
            let outcome = if dry_run {
                store.gc_plan(live)
            } else {
                store.gc(live)
            };
            match outcome {
                Ok(removed) => {
                    let verb = if dry_run { "would remove" } else { "removed" };
                    for rec in &removed {
                        println!(
                            "{verb} {} module-hash={:016x} runs={}",
                            rec.workload, rec.module_hash, rec.runs
                        );
                    }
                    println!("gc: {verb} {} entr{}", removed.len(), {
                        if removed.len() == 1 {
                            "y"
                        } else {
                            "ies"
                        }
                    });
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("profdb: gc refused: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
