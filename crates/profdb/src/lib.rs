// Library code must degrade gracefully instead of panicking; unwrap and
// expect are allowed only under cfg(test).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Versioned on-disk profile database for the stride-profiling service:
//! store and load edge + stride profiles keyed by `(workload, module
//! content hash)`, merge profiles across training runs, and detect stale
//! entries when a workload's module changes.
//!
//! Multi-run PGO is the paper's §3.2 usability story taken one step
//! further: instead of one train run feeding one recompile, a long-running
//! daemon accumulates profiles over many runs and many days, and the
//! database is the durable artifact between them. Merge semantics are
//! chosen so accumulation never flips a Fig. 5 classification for purely
//! representational reasons:
//!
//! * edge counters and the `total`/`zero`/`zdiff`/`diffs` site counters
//!   merge by saturating sums, so the ratios the classifier reads
//!   (`top1freq/total_freq`, `zdiff/total_freq`, trip counts) converge to
//!   the run-weighted average;
//! * per-site top-stride tables join by stride value (LFU-style) into
//!   canonical `(count desc, stride asc)` order without truncation, so a
//!   stride dominant in either run stays visible in the merged table and
//!   the merge is commutative/associative byte-for-byte — the property
//!   replication ([`repl`]) cashes in for delivery-order-independent
//!   convergence.
//!
//! Entries are human-auditable text files (one per key) with a versioned
//! header; a content hash of the module guards against feeding a profile
//! back into a binary it was not measured on.

pub mod entry;
pub mod hash;
pub mod recovery;
pub mod repl;
pub mod shard;
pub mod store;
pub mod wal;

pub use entry::{DbError, ProfileEntry};
pub use hash::{fnv1a64, module_hash};
pub use recovery::{check, recover, RecoveryReport, QUARANTINE_DIR};
pub use repl::{
    decode_delta_batch, decode_digest_table, encode_delta_batch, encode_digest_table,
    DeltaApplyReport, DeltaRecord, DELTA_BATCH_HEADER, DIGEST_TABLE_HEADER,
};
pub use shard::{ShardMap, SHARD_MAP_VERSION};
pub use store::{DbRecord, DigestEntry, ProfileDb};
pub use wal::{
    encode_record, scan_chain, scan_wal, segment_file_name, DiskFaults, RecordKind, ScanItem,
    SegmentConfig, SegmentScan, Wal, WalRecord, WalScan, WalStats, WAL_FILE,
};
