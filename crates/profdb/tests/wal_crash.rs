//! Crash-at-every-byte-offset property test for WAL recovery.
//!
//! A golden run applies three merges and snapshots the WAL plus the
//! entry file after each. Then, for every prefix length `L` of the
//! final WAL — i.e. a crash after exactly `L` WAL bytes reached the
//! disk — recovery must restore the entry file to the state after the
//! last record wholly contained in the prefix: the *pre-record* or
//! *post-record* state, never a mix. Both crash windows are simulated
//! per offset: the crash before the entry file was rewritten (recovery
//! must replay the record) and after (replay must be idempotent).

use std::fs;
use std::path::{Path, PathBuf};
use stride_ir::{FuncId, InstrId};
use stride_profdb::wal::WAL_FILE;
use stride_profdb::{recover, DiskFaults, ProfileDb, ProfileEntry};
use stride_profiling::{LoadStrideProfile, StrideProfile};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wal-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn entry(total: u64) -> ProfileEntry {
    let mut stride = StrideProfile::new();
    stride.insert(
        FuncId::new(0),
        InstrId::new(1),
        LoadStrideProfile {
            top: vec![(48, total)],
            total_freq: total,
            num_zero_stride: 0,
            num_zero_diff: total,
            total_diffs: total,
        },
    );
    ProfileEntry {
        workload: "mcf".into(),
        module_hash: 0xabcd,
        runs: 1,
        edge_tables: vec![vec![total, 0, 3]],
        stride,
    }
}

/// The single entry file in `dir` (anything that is not the WAL).
fn entry_file(dir: &Path) -> Option<PathBuf> {
    fs::read_dir(dir).ok()?.find_map(|e| {
        let p = e.ok()?.path();
        (p.is_file() && p.file_name()? != WAL_FILE).then_some(p)
    })
}

#[test]
fn crash_at_every_wal_offset_recovers_a_record_boundary_state() {
    // Golden run: three merges, snapshotting WAL and entry bytes after
    // the open and after each merge.
    let golden = tmpdir("golden");
    let db = ProfileDb::open(&golden).expect("open golden");
    let wal_path = golden.join(WAL_FILE);
    // wal_marks[m] / entry_marks[m]: on-disk state after m merges.
    let mut wal_marks = vec![fs::read(&wal_path).expect("initial wal")];
    let mut entry_marks: Vec<Option<Vec<u8>>> = vec![None];
    for m in 0..3u64 {
        db.merge_store_logged(&entry(10 + m), m + 1)
            .expect("golden merge");
        wal_marks.push(fs::read(&wal_path).expect("wal snapshot"));
        let path = entry_file(&golden).expect("entry file exists");
        entry_marks.push(Some(fs::read(path).expect("entry snapshot")));
    }
    let entry_name = entry_file(&golden)
        .expect("entry file")
        .file_name()
        .expect("file name")
        .to_owned();
    let full_wal = wal_marks.last().expect("final wal").clone();
    drop(db);
    let _ = fs::remove_dir_all(&golden);

    let scratch = tmpdir("scratch");
    for cut in 0..=full_wal.len() {
        // Merges whose WAL record is wholly inside the prefix. A prefix
        // shorter than the magic (a crash while creating the WAL) must
        // recover to the empty state.
        let applied = wal_marks
            .iter()
            .filter(|w| w.len() <= cut)
            .count()
            .saturating_sub(1);
        // (pre-apply, post-apply) entry states for the crash window.
        let cases: &[&Option<Vec<u8>>] = if applied == 0 {
            &[&entry_marks[0]]
        } else {
            &[&entry_marks[applied - 1], &entry_marks[applied]]
        };
        for (case, initial_entry) in cases.iter().enumerate() {
            let _ = fs::remove_dir_all(&scratch);
            fs::create_dir_all(&scratch).expect("scratch dir");
            fs::write(scratch.join(WAL_FILE), &full_wal[..cut]).expect("write wal prefix");
            if let Some(bytes) = initial_entry {
                fs::write(scratch.join(&entry_name), bytes).expect("write entry state");
            }

            let report = recover(&scratch, &DiskFaults::default())
                .unwrap_or_else(|e| panic!("recover at offset {cut} case {case}: {e}"));
            let got = entry_file(&scratch).map(|p| fs::read(p).expect("recovered entry"));
            let want = &entry_marks[applied];
            assert_eq!(
                &got, want,
                "offset {cut} case {case}: recovered entry is not the state after \
                 merge {applied} (report: {report})"
            );

            // Replay idempotence: a second recovery pass must be a no-op.
            recover(&scratch, &DiskFaults::default())
                .unwrap_or_else(|e| panic!("re-recover at offset {cut} case {case}: {e}"));
            let again = entry_file(&scratch).map(|p| fs::read(p).expect("entry after re-run"));
            assert_eq!(
                &again, want,
                "offset {cut} case {case}: recovery not idempotent"
            );

            // A normal open on the recovered store must agree, and —
            // unlike an unrecovered one — be allowed to plan a gc.
            let db = ProfileDb::open(&scratch)
                .unwrap_or_else(|e| panic!("open at offset {cut} case {case}: {e}"));
            db.gc_plan(|_, _| true)
                .unwrap_or_else(|e| panic!("gc_plan at offset {cut} case {case}: {e}"));
            if applied > 0 {
                let merged = db
                    .load("mcf", 0xabcd)
                    .unwrap_or_else(|e| panic!("load at offset {cut} case {case}: {e}"));
                assert_eq!(merged.runs, applied as u64, "offset {cut} case {case}");
            }
        }
    }
    let _ = fs::remove_dir_all(&scratch);
}
