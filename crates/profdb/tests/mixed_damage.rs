//! Mixed-damage recovery: one segment chain carrying *both* a
//! checksum-corrupt record in sealed history and a torn tail on the
//! active log, healed (where healing is allowed) in a single recovery
//! pass. Also pins the `profdb` CLI exit-code contract around the same
//! store: `check` is read-only and reports CORRUPT (exit 1) until an
//! operator runs `recover` (exit 0), after which `check` passes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use stride_profdb::{recover, DiskFaults, ProfileDb, ProfileEntry, SegmentConfig};
use stride_profiling::StrideProfile;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mixed-damage-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn entry(workload: &str, module_hash: u64) -> ProfileEntry {
    ProfileEntry {
        workload: workload.into(),
        module_hash,
        runs: 1,
        edge_tables: vec![vec![5, 0, 3]],
        stride: StrideProfile::new(),
    }
}

fn entry_path(root: &Path, workload: &str, hash: u64) -> PathBuf {
    root.join(format!("{workload}@{hash:016x}.profdb"))
}

fn profdb_cli(root: &Path, args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_profdb"))
        .args(args)
        .arg("--db")
        .arg(root)
        .output()
        .expect("run profdb");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn torn_active_tail_and_corrupt_sealed_segment_heal_in_one_pass() {
    let root = tmpdir("chain");
    let mut db = ProfileDb::open(&root).expect("open");
    // Seal after every merge: four one-record sealed segments.
    db.configure_segments(SegmentConfig {
        seal_bytes: 1,
        max_live_segments: 100,
    });
    for i in 0..4u64 {
        db.merge_store_logged(&entry(&format!("wl{i}"), 0xa0 + i), i + 1)
            .expect("sealed-era merge");
    }
    // Stop sealing: the last two merges stay in the active log.
    db.configure_segments(SegmentConfig {
        seal_bytes: 256 << 10,
        max_live_segments: 100,
    });
    for i in 4..6u64 {
        db.merge_store_logged(&entry(&format!("wl{i}"), 0xa0 + i), i + 1)
            .expect("active-era merge");
    }
    drop(db);

    let golden: Vec<Vec<u8>> = (0..6u64)
        .map(|i| fs::read(entry_path(&root, &format!("wl{i}"), 0xa0 + i)).expect("golden entry"))
        .collect();

    // Damage, all in one chain:
    // 1. flip a payload byte in sealed segment 1 (wl1's record) — a
    //    checksum failure in immutable history;
    let seg1 = root.join(stride_profdb::segment_file_name(1));
    let mut bytes = fs::read(&seg1).expect("read sealed segment");
    let n = bytes.len();
    bytes[n - 10] ^= 0xff;
    fs::write(&seg1, &bytes).expect("corrupt sealed segment");
    // 2. tear the active tail mid-record (crash during wl5's append —
    //    its entry write never happened either);
    let wal = root.join(stride_profdb::WAL_FILE);
    let bytes = fs::read(&wal).expect("read active log");
    fs::write(&wal, &bytes[..bytes.len() - 7]).expect("tear active tail");
    fs::remove_file(entry_path(&root, "wl5", 0xa5)).expect("drop wl5 entry");
    // 3. lose wl3's entry file (crash between its sealed WAL append and
    //    the entry write) so the same pass also has redo work.
    fs::remove_file(entry_path(&root, "wl3", 0xa3)).expect("drop wl3 entry");

    // `check` is read-only and must call the damage out, twice.
    for _ in 0..2 {
        let (report, healthy) = profdb_cli(&root, &["check"]);
        assert!(!healthy, "damaged store passed check:\n{report}");
        assert!(report.contains("verdict: CORRUPT"), "{report}");
        assert!(report.contains("torn tail"), "{report}");
        assert!(report.contains("1 corrupt"), "{report}");
    }

    // One library recovery pass heals everything healable.
    let report = recover(&root, &DiskFaults::default()).expect("recover");
    assert_eq!(
        report.quarantined, 1,
        "sealed corruption quarantined: {report}"
    );
    assert!(
        report.torn_tail_bytes.is_some(),
        "active tail truncated: {report}"
    );
    assert_eq!(report.torn_sealed_segments, 0, "{report}");
    assert!(
        report.replayed >= 1,
        "wl3 redone from sealed history: {report}"
    );

    // Boundary state: wl0..wl4 byte-identical to the golden run, wl5
    // (torn mid-append, never acknowledged durable) rolled away.
    for i in 0..5u64 {
        let got = fs::read(entry_path(&root, &format!("wl{i}"), 0xa0 + i)).expect("entry");
        assert_eq!(got, golden[i as usize], "wl{i} diverged from golden");
    }
    assert!(
        !entry_path(&root, "wl5", 0xa5).exists(),
        "torn merge resurrected"
    );

    // A second pass is a no-op on entry state.
    recover(&root, &DiskFaults::default()).expect("re-recover");
    for i in 0..5u64 {
        let got = fs::read(entry_path(&root, &format!("wl{i}"), 0xa0 + i)).expect("entry");
        assert_eq!(got, golden[i as usize], "wl{i} changed on second pass");
    }

    // CLI contract: the sealed segment still carries the flipped byte
    // (recovery preserves, never rewrites, immutable history), so
    // `check` stays CORRUPT until `recover` checkpoints the chain away;
    // then the store audits clean.
    let (report, healthy) = profdb_cli(&root, &["check"]);
    assert!(!healthy, "{report}");
    let (report, healthy) = profdb_cli(&root, &["recover"]);
    assert!(healthy, "recover failed:\n{report}");
    let (report, healthy) = profdb_cli(&root, &["check"]);
    assert!(healthy, "post-recover check failed:\n{report}");
    assert!(report.contains("verdict: ok"), "{report}");
    assert!(
        report.contains("entries: 5 readable, 0 corrupt"),
        "{report}"
    );

    // The quarantine kept evidence of both damage sites.
    let quarantined = fs::read_dir(root.join(stride_profdb::QUARANTINE_DIR))
        .expect("quarantine dir")
        .count();
    assert!(quarantined >= 1, "no quarantined bytes preserved");

    let _ = fs::remove_dir_all(&root);
}
