//! Cluster-grade durability properties of the profile store:
//!
//! * **Convergence** — three replicas fed the same delta batches in
//!   different orders, with duplicated deliveries, end byte-identical.
//!   This is the property the shard replication protocol leans on: the
//!   router may deliver batches in any order and retry freely.
//! * **Bounded segments** — sustained merge traffic seals and compacts
//!   WAL segments so the live chain stays bounded, and recovery of the
//!   segmented store is byte-identical to the running one.
//! * **Torn history** — a torn *sealed* segment (damaged history, not a
//!   crashed tail) is reported and preserved, never truncated.

use std::fs;
use std::path::{Path, PathBuf};
use stride_ir::{FuncId, InstrId};
use stride_profdb::wal::{segment_file_name, SegmentConfig};
use stride_profdb::{check, recover, DeltaRecord, DiskFaults, ProfileDb, ProfileEntry};
use stride_profiling::{LoadStrideProfile, StrideProfile};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("profdb-repl-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// splitmix64: deterministic, seedable, std-only.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

fn entry(workload: &str, module_hash: u64, stride: i64, count: u64) -> ProfileEntry {
    let mut sp = StrideProfile::new();
    sp.insert(
        FuncId::new(0),
        InstrId::new(1),
        LoadStrideProfile {
            top: vec![(stride, count)],
            total_freq: count,
            num_zero_stride: 0,
            num_zero_diff: count,
            total_diffs: count,
        },
    );
    ProfileEntry {
        workload: workload.into(),
        module_hash,
        runs: 1,
        edge_tables: vec![vec![count, 0, 3]],
        stride: sp,
    }
}

/// Sorted (name, bytes) of every entry file in a store — the ground
/// truth for byte-identical comparison (WAL/quarantine excluded: two
/// replicas with different log histories must still compare equal).
fn entry_files(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(root)
        .expect("read store dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            let name = p.file_name()?.to_str()?.to_string();
            name.ends_with(".profdb")
                .then(|| (name, fs::read(&p).expect("read entry file")))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn replicas_converge_byte_identically_under_permutation_and_duplication() {
    // A batch stream over several keys with tied stride counts (the
    // hard case for canonical ordering) and overlapping ids.
    let keys: &[(&str, u64)] = &[("mcf", 0x1), ("mcf", 0x2), ("bfs", 0x1), ("sssp", 0x9)];
    let mut rng = Rng(0x5eed_0007);
    let mut batches: Vec<Vec<DeltaRecord>> = Vec::new();
    let mut req_id = 0u64;
    for _ in 0..12 {
        let mut batch = Vec::new();
        for _ in 0..1 + rng.below(4) {
            req_id += 1;
            let (w, h) = keys[rng.below(keys.len())];
            let stride = [-32i64, 8, 16, 48, 64][rng.below(5)];
            let count = 1 + rng.next() % 50;
            batch.push(DeltaRecord {
                req_id,
                entry_text: entry(w, h, stride, count).to_text(),
            });
        }
        batches.push(batch);
    }

    let mut digests = Vec::new();
    let mut contents = Vec::new();
    for replica in 0..3 {
        let root = tmpdir(&format!("conv-{replica}"));
        let db = ProfileDb::open(&root).expect("open replica");
        // Each replica sees its own delivery order, plus duplicated
        // batches (network retries): a different schedule per replica.
        let mut order: Vec<usize> = (0..batches.len()).collect();
        let mut sched = Rng(0xface_0000 + replica as u64);
        sched.shuffle(&mut order);
        let dups: Vec<usize> = (0..4).map(|_| sched.below(batches.len())).collect();
        order.extend(dups);
        for idx in order {
            db.apply_deltas(&batches[idx]).expect("apply batch");
        }
        digests.push(db.content_digest().expect("digest"));
        contents.push(entry_files(&root));
        drop(db);
        let _ = fs::remove_dir_all(&root);
    }
    assert_eq!(digests[0], digests[1], "replica 0 vs 1 digest diverged");
    assert_eq!(digests[1], digests[2], "replica 1 vs 2 digest diverged");
    assert_eq!(contents[0], contents[1], "replica 0 vs 1 bytes diverged");
    assert_eq!(contents[1], contents[2], "replica 1 vs 2 bytes diverged");
}

#[test]
fn sustained_merge_traffic_keeps_live_segments_bounded() {
    let root = tmpdir("soak");
    let mut db = ProfileDb::open(&root).expect("open");
    // Tiny segments so the soak crosses many seal/compact cycles.
    db.configure_segments(SegmentConfig {
        seal_bytes: 8 << 10,
        max_live_segments: 4,
    });
    let config = db.segment_config();

    const MERGES: u64 = 10_000;
    let mut max_live = 0u64;
    for i in 0..MERGES {
        let e = entry("soak", i % 7, 8 * ((i % 5) as i64 + 1), 1 + i % 3);
        db.merge_store_logged(&e, i + 1).expect("merge");
        if i % 64 == 0 {
            max_live = max_live.max(db.wal_stats().live_segments);
        }
    }
    let stats = db.wal_stats();
    assert!(
        stats.seals >= 10,
        "soak never sealed a segment (seals={}) — seal threshold not exercised",
        stats.seals
    );
    assert!(
        stats.segments_compacted >= 10,
        "soak never compacted (segments_compacted={})",
        stats.segments_compacted
    );
    max_live = max_live.max(stats.live_segments);
    assert!(
        max_live <= config.max_live_segments as u64 + 1,
        "live segments unbounded: saw {max_live}, configured cap {}",
        config.max_live_segments
    );

    let digest = db.content_digest().expect("digest");
    drop(db);
    // Recovery of the segmented store must reproduce the exact bytes.
    let before = entry_files(&root);
    let db2 = ProfileDb::open(&root).expect("reopen");
    assert_eq!(db2.content_digest().expect("digest"), digest);
    assert_eq!(entry_files(&root), before, "recovery changed entry bytes");
    let (summary, healthy) = check(&root);
    assert!(healthy, "segmented store unhealthy after soak:\n{summary}");
    drop(db2);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_middle_segment_is_reported_and_preserved() {
    let root = tmpdir("torn-mid");
    let mut db = ProfileDb::open(&root).expect("open");
    db.configure_segments(SegmentConfig {
        seal_bytes: 1, // seal after every merge: each record gets a segment
        max_live_segments: 100,
    });
    for i in 0..4u64 {
        let e = entry("mcf", 0xabc, 16, 10 + i);
        db.merge_store_logged(&e, i + 1).expect("merge");
    }
    let want_files = entry_files(&root);
    drop(db);

    // Tear a *middle* sealed segment mid-record: damaged history, not a
    // crashed tail.
    let victim = root.join(segment_file_name(1));
    let bytes = fs::read(&victim).expect("read sealed segment");
    assert!(bytes.len() > 12, "segment too small to tear");
    let torn = &bytes[..bytes.len() - 5];
    fs::write(&victim, torn).expect("tear segment");

    let (summary, healthy) = check(&root);
    assert!(!healthy, "check missed the torn sealed segment:\n{summary}");
    assert!(
        summary.contains("TORN (sealed history damaged)"),
        "check did not flag the sealed tear:\n{summary}"
    );

    let report = recover(&root, &DiskFaults::default()).expect("recover");
    assert_eq!(
        report.torn_sealed_segments, 1,
        "recovery did not report the torn sealed segment: {report:?}"
    );
    // The sealed segment must be preserved byte-for-byte — truncation is
    // only legal on the active tail, where torn bytes are an unfinished
    // append rather than lost history.
    assert_eq!(
        fs::read(&victim).expect("re-read"),
        torn,
        "recovery modified a sealed segment"
    );
    // A quarantine copy of the damaged tail exists for forensics.
    let quarantined = fs::read_dir(root.join("quarantine"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert!(quarantined >= 1, "no quarantine copy of the torn tail");
    // Entry files are untouched: the torn record was already applied.
    assert_eq!(entry_files(&root), want_files);
    let _ = fs::remove_dir_all(&root);
}
