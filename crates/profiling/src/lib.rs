//! Profiling runtimes for the stride-prefetch reproduction: the LFU value
//! profiler (Calder et al., MICRO-30) specialized to address strides, the
//! `strideProf` routine in its plain / enhanced / sampled variants
//! (Figs. 6, 7 and 9 of the paper), edge-frequency profiles with the
//! Fig. 10 trip-count computation, and the integrated [`ProfilerRuntime`]
//! the VM invokes from instrumented code.
//!
//! # Example
//!
//! Discover the dominant stride of an address stream:
//!
//! ```
//! use stride_profiling::{StrideProfConfig, StrideProfData, StrideProfEngine};
//!
//! let config = StrideProfConfig::plain();
//! let mut engine = StrideProfEngine::new();
//! let mut data = StrideProfData::new(&config);
//! for i in 0..100u64 {
//!     engine.stride_prof(&config, &mut data, 0x1000 + i * 48);
//! }
//! assert_eq!(data.top_strides()[0], (48, 99));
//! ```

pub mod freq;
pub mod lfu;
pub mod profile;
pub mod refdist;
pub mod runtime;
pub mod stride_prof;
pub mod text;

pub use freq::{EdgeProfile, FreqSource};
pub use lfu::{Lfu, LfuConfig, LfuStats};
pub use profile::{LoadStrideProfile, StrideProfile};
pub use refdist::{RefDistSummary, ReferenceDistanceProfiler};
pub use runtime::{
    ProfilerRuntime, COST_PROFILE_EDGE, COST_TRIP_CHECK_BASE, COST_TRIP_CHECK_PER_EDGE,
};
pub use stride_prof::{
    ChunkSampling, StrideProfConfig, StrideProfData, StrideProfEngine, StrideProfStats,
};
pub use text::{
    edge_profile_from_text, edge_profile_to_text, stride_profile_from_text, stride_profile_to_text,
    ProfileParseError,
};
