//! The stride profile fed back to the compiler: per profiled load, the top
//! strides and the counters the Fig. 5 classification reads.

use crate::stride_prof::{StrideProfConfig, StrideProfData};
use stride_ir::{FuncId, InstrId};

/// Final stride profile of one load site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadStrideProfile {
    /// Top strides and frequencies, highest first. When fine sampling with
    /// factor F collected the data, the stride values have already been
    /// divided back by F (Fig. 8: `S2 = S1 / F`).
    pub top: Vec<(i64, u64)>,
    /// Number of non-zero strides profiled (Fig. 5's `total_freq`).
    pub total_freq: u64,
    /// References with unchanged (or `is_same_value`-equal) address.
    pub num_zero_stride: u64,
    /// Zero stride differences (the phased signal).
    pub num_zero_diff: u64,
    /// Stride differences observed.
    pub total_diffs: u64,
}

impl LoadStrideProfile {
    /// Extracts the final profile from per-load runtime state, undoing the
    /// fine-sampling stride scaling.
    pub fn from_data(data: &mut StrideProfData, config: &StrideProfConfig) -> Self {
        let f = config.fine_sample.unwrap_or(1) as i64;
        let top = data
            .top_strides()
            .into_iter()
            .map(|(s, c)| (s / f, c))
            .collect();
        LoadStrideProfile {
            top,
            total_freq: data.total_freq(),
            num_zero_stride: data.num_zero_stride,
            num_zero_diff: data.num_zero_diff,
            total_diffs: data.total_diffs,
        }
    }

    /// The dominant stride and its frequency, if any stride was seen.
    pub fn top1(&self) -> Option<(i64, u64)> {
        self.top.first().copied()
    }

    /// Sum of the frequencies of the top four strides (Fig. 5's
    /// `top4freq`).
    pub fn top4_freq(&self) -> u64 {
        self.top.iter().take(4).map(|&(_, c)| c).sum()
    }

    /// `top1freq / total_freq` (0 when nothing was profiled).
    pub fn top1_ratio(&self) -> f64 {
        if self.total_freq == 0 {
            return 0.0;
        }
        self.top1().map_or(0.0, |(_, c)| c as f64) / self.total_freq as f64
    }

    /// `top4freq / total_freq`.
    pub fn top4_ratio(&self) -> f64 {
        if self.total_freq == 0 {
            return 0.0;
        }
        self.top4_freq() as f64 / self.total_freq as f64
    }

    /// `num_zero_diff / total_freq` (Fig. 5's phased-ness measure).
    pub fn zero_diff_ratio(&self) -> f64 {
        if self.total_freq == 0 {
            return 0.0;
        }
        self.num_zero_diff as f64 / self.total_freq as f64
    }
}

/// Stride profiles for every profiled load of a module.
///
/// Stored as dense per-function tables indexed by the raw `FuncId` /
/// `InstrId` values: lookups on the feedback path are two bounds-checked
/// array reads instead of a hash, and iteration is in deterministic
/// (function, site) order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrideProfile {
    funcs: Vec<Vec<Option<LoadStrideProfile>>>,
    len: usize,
}

impl StrideProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the profile of one load site (replacing any previous one).
    pub fn insert(&mut self, func: FuncId, site: InstrId, profile: LoadStrideProfile) {
        let f = func.index();
        if f >= self.funcs.len() {
            self.funcs.resize_with(f + 1, Vec::new);
        }
        let table = &mut self.funcs[f];
        let i = site.index();
        if i >= table.len() {
            table.resize_with(i + 1, || None);
        }
        if table[i].is_none() {
            self.len += 1;
        }
        table[i] = Some(profile);
    }

    /// The profile of one load site.
    pub fn get(&self, func: FuncId, site: InstrId) -> Option<&LoadStrideProfile> {
        self.funcs.get(func.index())?.get(site.index())?.as_ref()
    }

    /// Number of profiled sites.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no site was profiled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over all `(func, site, profile)` entries in (function,
    /// site) order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, InstrId, &LoadStrideProfile)> {
        self.funcs.iter().enumerate().flat_map(|(f, table)| {
            table.iter().enumerate().filter_map(move |(i, p)| {
                p.as_ref()
                    .map(|p| (FuncId::new(f as u32), InstrId::new(i as u32), p))
            })
        })
    }

    /// Merges another profile into this one (multi-run PGO: profiles from
    /// several training runs are combined before feedback). Sites present
    /// in both have their counters summed and their top-stride lists
    /// joined by stride value (counts sum saturating) and re-sorted into
    /// the canonical `(count desc, stride asc)` order.
    ///
    /// The join keeps every stride of both lists — no truncation — so the
    /// operation is commutative and associative *byte-for-byte*, not just
    /// up to tie order: any delivery order of the same set of profiles
    /// converges to the identical table. Replication (profdb WAL deltas)
    /// leans on exactly this property; weaken it and replicas diverge.
    pub fn merge(&mut self, other: &StrideProfile) {
        // Canonicalize the accumulated side first: single-run tables keep
        // their LFU emission order until their first merge, and a site the
        // incoming profile does not mention would otherwise keep that
        // order forever, breaking byte commutativity.
        self.for_each_mut(|_, _, p| canonicalize_top(&mut p.top));
        for (func, site, theirs) in other.iter() {
            if self.get(func, site).is_none() {
                let mut copied = theirs.clone();
                canonicalize_top(&mut copied.top);
                self.insert(func, site, copied);
                continue;
            }
            let ours = self.get_mut(func, site).expect("site just checked");
            for &(stride, count) in &theirs.top {
                match ours.top.iter_mut().find(|(s, _)| *s == stride) {
                    Some((_, c)) => *c = c.saturating_add(count),
                    None => ours.top.push((stride, count)),
                }
            }
            canonicalize_top(&mut ours.top);
            ours.total_freq = ours.total_freq.saturating_add(theirs.total_freq);
            ours.num_zero_stride = ours.num_zero_stride.saturating_add(theirs.num_zero_stride);
            ours.num_zero_diff = ours.num_zero_diff.saturating_add(theirs.num_zero_diff);
            ours.total_diffs = ours.total_diffs.saturating_add(theirs.total_diffs);
        }
    }

    /// Keeps only the profiles `keep` accepts (fault injection and
    /// profile filtering: dropping a site can only move its load toward
    /// "not prefetched").
    pub fn retain(&mut self, mut keep: impl FnMut(FuncId, InstrId, &LoadStrideProfile) -> bool) {
        for (f, table) in self.funcs.iter_mut().enumerate() {
            for (i, slot) in table.iter_mut().enumerate() {
                let drop_it = match slot {
                    Some(p) => !keep(FuncId::new(f as u32), InstrId::new(i as u32), p),
                    None => false,
                };
                if drop_it {
                    *slot = None;
                    self.len -= 1;
                }
            }
        }
    }

    /// Mutates every profile in place, in deterministic (function, site)
    /// order (fault injection: truncating top tables, dropping counters).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(FuncId, InstrId, &mut LoadStrideProfile)) {
        for (fi, table) in self.funcs.iter_mut().enumerate() {
            for (i, slot) in table.iter_mut().enumerate() {
                if let Some(p) = slot {
                    f(FuncId::new(fi as u32), InstrId::new(i as u32), p);
                }
            }
        }
    }

    /// Mutable access to one site's profile, if present.
    fn get_mut(&mut self, func: FuncId, site: InstrId) -> Option<&mut LoadStrideProfile> {
        self.funcs
            .get_mut(func.index())?
            .get_mut(site.index())?
            .as_mut()
    }
}

/// Sorts a top-stride table into the canonical total order: count
/// descending, then stride ascending. The order is total (no two entries
/// share a stride after a join), so the sorted table is independent of
/// the order entries were inserted or merged in.
fn canonicalize_top(top: &mut [(i64, u64)]) {
    top.sort_by(|&(sa, ca), &(sb, cb)| cb.cmp(&ca).then(sa.cmp(&sb)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stride_prof::StrideProfEngine;

    fn profile_of(addresses: &[u64], config: &StrideProfConfig) -> LoadStrideProfile {
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(config);
        for &a in addresses {
            engine.stride_prof(config, &mut data, a);
        }
        LoadStrideProfile::from_data(&mut data, config)
    }

    #[test]
    fn ratios_for_constant_stride() {
        let cfg = StrideProfConfig::plain();
        let addrs: Vec<u64> = (0..101).map(|i| i * 64).collect();
        let p = profile_of(&addrs, &cfg);
        assert_eq!(p.top1(), Some((64, 100)));
        assert!((p.top1_ratio() - 1.0).abs() < 1e-9);
        assert!((p.top4_ratio() - 1.0).abs() < 1e-9);
        assert!(p.zero_diff_ratio() > 0.95);
    }

    #[test]
    fn fine_sampling_scaling_is_undone() {
        let cfg = StrideProfConfig {
            fine_sample: Some(4),
            ..StrideProfConfig::plain()
        };
        let addrs: Vec<u64> = (0..401).map(|i| i * 16).collect();
        let p = profile_of(&addrs, &cfg);
        assert_eq!(p.top1().map(|(s, _)| s), Some(16));
    }

    #[test]
    fn empty_profile_has_zero_ratios() {
        let cfg = StrideProfConfig::plain();
        let p = profile_of(&[], &cfg);
        assert_eq!(p.top1(), None);
        assert_eq!(p.top1_ratio(), 0.0);
        assert_eq!(p.top4_ratio(), 0.0);
        assert_eq!(p.zero_diff_ratio(), 0.0);
    }

    #[test]
    fn top4_sums_at_most_four() {
        let cfg = StrideProfConfig::plain();
        // five distinct strides, 10 of each
        let mut addrs = vec![0u64];
        for s in [8i64, 16, 24, 32, 40] {
            for _ in 0..10 {
                let l = *addrs.last().unwrap();
                addrs.push(l + s as u64);
                let l = *addrs.last().unwrap();
                addrs.push(l + 1000); // separator stride, seen 5x total
            }
        }
        let p = profile_of(&addrs, &cfg);
        assert!(p.top4_freq() <= p.total_freq);
        assert!(p.top.len() >= 4);
    }

    #[test]
    fn merge_sums_counters_and_combines_tops() {
        let cfg = StrideProfConfig::plain();
        let a = profile_of(&(0..50).map(|i| i * 64).collect::<Vec<_>>(), &cfg);
        let b = profile_of(&(0..30).map(|i| i * 64).collect::<Vec<_>>(), &cfg);
        let mut pa = StrideProfile::new();
        pa.insert(FuncId::new(0), InstrId::new(1), a.clone());
        let mut pb = StrideProfile::new();
        pb.insert(FuncId::new(0), InstrId::new(1), b.clone());
        pb.insert(FuncId::new(0), InstrId::new(2), b.clone());
        pa.merge(&pb);
        assert_eq!(pa.len(), 2);
        let merged = pa.get(FuncId::new(0), InstrId::new(1)).unwrap();
        assert_eq!(merged.total_freq, a.total_freq + b.total_freq);
        assert_eq!(
            merged.top1(),
            Some((64, a.top1().unwrap().1 + b.top1().unwrap().1))
        );
        // disjoint site copied verbatim
        assert_eq!(pa.get(FuncId::new(0), InstrId::new(2)), Some(&b));
    }

    #[test]
    fn merge_combines_distinct_strides() {
        let cfg = StrideProfConfig::plain();
        let a = profile_of(&(0..40).map(|i| i * 64).collect::<Vec<_>>(), &cfg);
        let b = profile_of(&(0..10).map(|i| i * 8).collect::<Vec<_>>(), &cfg);
        let mut pa = StrideProfile::new();
        pa.insert(FuncId::new(0), InstrId::new(1), a);
        let mut pb = StrideProfile::new();
        pb.insert(FuncId::new(0), InstrId::new(1), b);
        pa.merge(&pb);
        let merged = pa.get(FuncId::new(0), InstrId::new(1)).unwrap();
        // dominant stride stays 64; the 8-byte stride appears behind it
        assert_eq!(merged.top1().unwrap().0, 64);
        assert!(merged.top.iter().any(|&(s, _)| s == 8));
    }

    #[test]
    fn merge_is_byte_commutative_and_associative_even_with_tied_counts() {
        // Three single-site profiles whose top tables tie on count: the
        // canonical (count desc, stride asc) join must make every merge
        // order produce the *identical* table, not just an equivalent set.
        let mk = |top: Vec<(i64, u64)>| {
            let mut sp = StrideProfile::new();
            sp.insert(
                FuncId::new(0),
                InstrId::new(1),
                LoadStrideProfile {
                    top,
                    total_freq: 10,
                    num_zero_stride: 1,
                    num_zero_diff: 2,
                    total_diffs: 9,
                },
            );
            sp
        };
        let a = mk(vec![(64, 5), (8, 5)]);
        let b = mk(vec![(16, 5), (24, 3)]);
        let c = mk(vec![(-32, 5), (8, 2)]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        let mut ba = b.clone();
        ba.merge(&a);
        c_ba.merge(&ba);
        assert_eq!(ab_c, c_ba, "merge must be order-independent");
        let merged = ab_c.get(FuncId::new(0), InstrId::new(1)).unwrap();
        assert_eq!(
            merged.top,
            vec![(8, 7), (-32, 5), (16, 5), (64, 5), (24, 3)],
            "ties break by ascending stride, nothing truncated"
        );
    }

    #[test]
    fn stride_profile_map_roundtrip() {
        let cfg = StrideProfConfig::plain();
        let p = profile_of(&[0, 64, 128], &cfg);
        let mut sp = StrideProfile::new();
        assert!(sp.is_empty());
        sp.insert(FuncId::new(0), InstrId::new(7), p.clone());
        assert_eq!(sp.len(), 1);
        assert_eq!(sp.get(FuncId::new(0), InstrId::new(7)), Some(&p));
        assert_eq!(sp.get(FuncId::new(0), InstrId::new(8)), None);
        assert_eq!(sp.iter().count(), 1);
    }
}
