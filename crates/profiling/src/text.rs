//! Text serialization of profiles — the feedback-file format a production
//! compiler would write after the profiling run and read back in the
//! recompile (the paper's cross-compilation usability discussion in §3.2
//! is exactly about shipping these files around).
//!
//! The format is line-oriented and human-auditable:
//!
//! ```text
//! # edge profile v1
//! func fn0 counters=25
//! e3 1234
//! # stride profile v1
//! site fn0 i5 total=100 zero=3 zdiff=88 diffs=99 top=64:90,8:10
//! ```

use crate::freq::EdgeProfile;
use crate::profile::{LoadStrideProfile, StrideProfile};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use stride_ir::{Cfg, EdgeId, FuncId, InstrId, Module};

/// A profile-file parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile line {}: {}", self.line, self.message)
    }
}

impl Error for ProfileParseError {}

fn perr<T>(line: usize, message: impl Into<String>) -> Result<T, ProfileParseError> {
    Err(ProfileParseError {
        line,
        message: message.into(),
    })
}

fn parse_tagged(s: &str, tag: &str, line: usize) -> Result<u64, ProfileParseError> {
    let Some(v) = s.strip_prefix(tag) else {
        return perr(line, format!("expected `{tag}` in `{s}`"));
    };
    v.parse().map_err(|_| ProfileParseError {
        line,
        message: format!("bad number in `{s}`"),
    })
}

fn parse_id(s: &str, prefix: &str, line: usize) -> Result<u32, ProfileParseError> {
    let Some(v) = s.strip_prefix(prefix) else {
        return perr(line, format!("expected `{prefix}N` in `{s}`"));
    };
    v.parse().map_err(|_| ProfileParseError {
        line,
        message: format!("bad id in `{s}`"),
    })
}

/// Serializes an edge profile; only non-zero counters are listed.
pub fn edge_profile_to_text(profile: &EdgeProfile, module: &Module) -> String {
    let mut out = String::from("# edge profile v1\n");
    for func in &module.functions {
        let cfg = Cfg::compute(func);
        let n_counters = cfg.num_edges() + 1 + cfg.num_blocks();
        let _ = writeln!(out, "func {} counters={}", func.id, n_counters);
        for e in 0..n_counters {
            let c = profile.count(func.id, EdgeId::new(e as u32));
            if c != 0 {
                let _ = writeln!(out, "e{e} {c}");
            }
        }
    }
    out
}

/// Parses an edge profile written by [`edge_profile_to_text`], validated
/// against `module` (the counter spaces must match).
///
/// # Errors
///
/// Returns a [`ProfileParseError`] on malformed text or a counter-space
/// mismatch with `module`.
pub fn edge_profile_from_text(
    text: &str,
    module: &Module,
) -> Result<EdgeProfile, ProfileParseError> {
    let mut profile = EdgeProfile::for_module(module);
    let mut current: Option<(FuncId, usize)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("func ") {
            let (fid_s, counters_s) = rest.split_once(' ').ok_or_else(|| ProfileParseError {
                line: lineno,
                message: "malformed func line".into(),
            })?;
            let fid = FuncId::new(parse_id(fid_s, "fn", lineno)?);
            let counters = parse_tagged(counters_s.trim(), "counters=", lineno)? as usize;
            let Some(func) = module.functions.get(fid.index()) else {
                return perr(lineno, format!("module has no function {fid}"));
            };
            let cfg = Cfg::compute(func);
            let expected = cfg.num_edges() + 1 + cfg.num_blocks();
            if counters != expected {
                return perr(
                    lineno,
                    format!(
                        "counter space mismatch for {fid}: file has {counters}, module needs {expected}"
                    ),
                );
            }
            current = Some((fid, counters));
            continue;
        }
        if line.starts_with('e') {
            let Some((fid, counters)) = current else {
                return perr(lineno, "counter before any `func` line");
            };
            let (e_s, c_s) = line.split_once(' ').ok_or_else(|| ProfileParseError {
                line: lineno,
                message: "malformed counter line".into(),
            })?;
            let e = parse_id(e_s, "e", lineno)? as usize;
            if e >= counters {
                return perr(lineno, format!("counter e{e} out of range"));
            }
            let c: u64 = c_s.trim().parse().map_err(|_| ProfileParseError {
                line: lineno,
                message: format!("bad count `{c_s}`"),
            })?;
            profile.set(fid, EdgeId::new(e as u32), c);
            continue;
        }
        return perr(lineno, format!("unrecognized line `{line}`"));
    }
    Ok(profile)
}

/// Serializes a stride profile.
pub fn stride_profile_to_text(profile: &StrideProfile) -> String {
    let mut out = String::from("# stride profile v1\n");
    let mut entries: Vec<(FuncId, InstrId, &LoadStrideProfile)> = profile.iter().collect();
    entries.sort_by_key(|&(f, s, _)| (f, s));
    for (func, site, p) in entries {
        let top = p
            .top
            .iter()
            .map(|(s, c)| format!("{s}:{c}"))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "site {func} {site} total={} zero={} zdiff={} diffs={} top={}",
            p.total_freq, p.num_zero_stride, p.num_zero_diff, p.total_diffs, top
        );
    }
    out
}

/// Parses a stride profile written by [`stride_profile_to_text`].
///
/// # Errors
///
/// Returns a [`ProfileParseError`] on malformed text.
pub fn stride_profile_from_text(text: &str) -> Result<StrideProfile, ProfileParseError> {
    let mut profile = StrideProfile::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix("site ") else {
            return perr(lineno, format!("unrecognized line `{line}`"));
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() != 7 {
            return perr(lineno, "site line needs 7 fields");
        }
        let func = FuncId::new(parse_id(fields[0], "fn", lineno)?);
        let site = InstrId::new(parse_id(fields[1], "i", lineno)?);
        let total_freq = parse_tagged(fields[2], "total=", lineno)?;
        let num_zero_stride = parse_tagged(fields[3], "zero=", lineno)?;
        let num_zero_diff = parse_tagged(fields[4], "zdiff=", lineno)?;
        let total_diffs = parse_tagged(fields[5], "diffs=", lineno)?;
        let top_s = fields[6]
            .strip_prefix("top=")
            .ok_or_else(|| ProfileParseError {
                line: lineno,
                message: "missing top=".into(),
            })?;
        let mut top = Vec::new();
        if !top_s.is_empty() {
            for pair in top_s.split(',') {
                let (s, c) = pair.split_once(':').ok_or_else(|| ProfileParseError {
                    line: lineno,
                    message: format!("bad top entry `{pair}`"),
                })?;
                let stride: i64 = s.parse().map_err(|_| ProfileParseError {
                    line: lineno,
                    message: format!("bad stride `{s}`"),
                })?;
                let count: u64 = c.parse().map_err(|_| ProfileParseError {
                    line: lineno,
                    message: format!("bad count `{c}`"),
                })?;
                top.push((stride, count));
            }
        }
        profile.insert(
            func,
            site,
            LoadStrideProfile {
                top,
                total_freq,
                num_zero_stride,
                num_zero_diff,
                total_diffs,
            },
        );
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{ModuleBuilder, Operand};

    fn small_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        fb.while_nonzero(p, |fb, p| {
            fb.load_to(p, p, 0);
        });
        fb.ret(Some(Operand::Imm(0)));
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn edge_profile_round_trips() {
        let m = small_module();
        let mut p = EdgeProfile::for_module(&m);
        let f = m.entry;
        p.increment(f, EdgeId::new(0));
        for _ in 0..999 {
            p.increment(f, EdgeId::new(2));
        }
        let text = edge_profile_to_text(&p, &m);
        let q = edge_profile_from_text(&text, &m).expect("parses");
        let cfg = Cfg::compute(m.function(f));
        let n = cfg.num_edges() + 1 + cfg.num_blocks();
        for e in 0..n {
            assert_eq!(
                p.count(f, EdgeId::new(e as u32)),
                q.count(f, EdgeId::new(e as u32)),
                "counter e{e} differs"
            );
        }
    }

    #[test]
    fn stride_profile_round_trips() {
        let mut p = StrideProfile::new();
        p.insert(
            FuncId::new(0),
            InstrId::new(7),
            LoadStrideProfile {
                top: vec![(64, 900), (-48, 55)],
                total_freq: 1000,
                num_zero_stride: 12,
                num_zero_diff: 850,
                total_diffs: 999,
            },
        );
        p.insert(
            FuncId::new(2),
            InstrId::new(0),
            LoadStrideProfile {
                top: vec![],
                total_freq: 0,
                num_zero_stride: 5,
                num_zero_diff: 0,
                total_diffs: 0,
            },
        );
        let text = stride_profile_to_text(&p);
        let q = stride_profile_from_text(&text).expect("parses");
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.get(FuncId::new(0), InstrId::new(7)),
            p.get(FuncId::new(0), InstrId::new(7))
        );
        assert_eq!(
            q.get(FuncId::new(2), InstrId::new(0)),
            p.get(FuncId::new(2), InstrId::new(0))
        );
    }

    #[test]
    fn counter_space_mismatch_is_rejected() {
        let m = small_module();
        let text = "# edge profile v1\nfunc fn0 counters=3\n";
        let e = edge_profile_from_text(text, &m).unwrap_err();
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn malformed_lines_report_position() {
        let e = stride_profile_from_text("# stride profile v1\nnot a site line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let m = small_module();
        let e = edge_profile_from_text("wat\n", &m).unwrap_err();
        assert_eq!(e.line, 1);
    }
}
