//! Text serialization of profiles — the feedback-file format a production
//! compiler would write after the profiling run and read back in the
//! recompile (the paper's cross-compilation usability discussion in §3.2
//! is exactly about shipping these files around).
//!
//! The format is line-oriented and human-auditable. Version 2 adds an
//! integrity count to the header so truncated files are rejected instead
//! of silently losing sites; v1 files (no count) are still read:
//!
//! ```text
//! # edge profile v2 funcs=1
//! func fn0 counters=25
//! e3 1234
//! # stride profile v2 sites=1
//! site fn0 i5 total=100 zero=3 zdiff=88 diffs=99 top=64:90,8:10
//! ```

use crate::freq::EdgeProfile;
use crate::profile::{LoadStrideProfile, StrideProfile};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use stride_ir::{Cfg, EdgeId, FuncId, InstrId, Module};

/// A profile-file parse failure, located to the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token (1 when it could not be
    /// located within the line).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile line {}, col {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ProfileParseError {}

impl ProfileParseError {
    /// Fills in `col` by locating the first backtick-quoted fragment of
    /// the message within the offending source line.
    fn locate_in(mut self, line_text: &str) -> Self {
        let fragment = self.message.split('`').nth(1).filter(|f| !f.is_empty());
        if let Some(fragment) = fragment {
            if let Some(byte_pos) = line_text.find(fragment) {
                self.col = line_text[..byte_pos].chars().count() + 1;
            }
        }
        self
    }

    /// Renders the error with the offending source line and a caret under
    /// the located column:
    ///
    /// ```text
    /// profile line 2, col 10: bad count `x9`
    ///     2 | e3 x9
    ///       |    ^
    /// ```
    ///
    /// `source` must be the text the profile was parsed from; if the line
    /// cannot be found, only the message itself is rendered.
    pub fn render(&self, source: &str) -> String {
        let mut out = self.to_string();
        if let Some(line_text) = source.lines().nth(self.line.saturating_sub(1)) {
            let gutter = format!("{:>5}", self.line);
            let _ = write!(out, "\n{gutter} | {line_text}");
            let pad: String = line_text
                .chars()
                .take(self.col.saturating_sub(1))
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let _ = write!(out, "\n      | {pad}^");
        }
        out
    }
}

fn perr<T>(line: usize, message: impl Into<String>) -> Result<T, ProfileParseError> {
    Err(ProfileParseError {
        line,
        col: 1,
        message: message.into(),
    })
}

fn parse_tagged(s: &str, tag: &str, line: usize) -> Result<u64, ProfileParseError> {
    let Some(v) = s.strip_prefix(tag) else {
        return perr(line, format!("expected `{tag}` in `{s}`"));
    };
    v.parse().map_err(|_| ProfileParseError {
        line,
        col: 1,
        message: format!("bad number in `{s}`"),
    })
}

fn parse_id(s: &str, prefix: &str, line: usize) -> Result<u32, ProfileParseError> {
    let Some(v) = s.strip_prefix(prefix) else {
        return perr(line, format!("expected `{prefix}N` in `{s}`"));
    };
    v.parse().map_err(|_| ProfileParseError {
        line,
        col: 1,
        message: format!("bad id in `{s}`"),
    })
}

/// The header of a versioned profile section: how many records a v2 file
/// promises (`None` for v1 files, which carry no integrity count).
struct Header {
    declared: Option<u64>,
}

/// Parses `# <kind> profile vN [tag=M]` headers, accepting v1 (bare) and
/// v2 (with the integrity count). Returns `None` for other comments.
fn parse_header(
    line: &str,
    kind: &str,
    tag: &str,
    lineno: usize,
) -> Result<Option<Header>, ProfileParseError> {
    let Some(rest) = line.strip_prefix(&format!("# {kind} profile ")) else {
        return Ok(None);
    };
    let mut fields = rest.split_whitespace();
    let version = match fields.next() {
        Some("v1") => 1,
        Some("v2") => 2,
        Some(v) => return perr(lineno, format!("unsupported {kind} profile version `{v}`")),
        None => return perr(lineno, format!("missing {kind} profile version")),
    };
    let declared = match fields.next() {
        Some(field) if version >= 2 => Some(parse_tagged(field, &format!("{tag}="), lineno)?),
        Some(field) => return perr(lineno, format!("unexpected `{field}` in v1 header")),
        None if version >= 2 => return perr(lineno, format!("v2 header needs `{tag}=`")),
        None => None,
    };
    Ok(Some(Header { declared }))
}

/// Serializes an edge profile; only non-zero counters are listed.
pub fn edge_profile_to_text(profile: &EdgeProfile, module: &Module) -> String {
    let mut out = format!("# edge profile v2 funcs={}\n", module.functions.len());
    for func in &module.functions {
        let cfg = Cfg::compute(func);
        let n_counters = cfg.num_edges() + 1 + cfg.num_blocks();
        let _ = writeln!(out, "func {} counters={}", func.id, n_counters);
        for e in 0..n_counters {
            let c = profile.count(func.id, EdgeId::new(e as u32));
            if c != 0 {
                let _ = writeln!(out, "e{e} {c}");
            }
        }
    }
    out
}

/// Parses an edge profile written by [`edge_profile_to_text`] (v2, or the
/// count-less v1 format), validated against `module` (the counter spaces
/// must match, and a v2 header's `funcs=` count must be met).
///
/// # Errors
///
/// Returns a [`ProfileParseError`] on malformed text, a counter-space
/// mismatch with `module`, or a v2 integrity-count violation.
pub fn edge_profile_from_text(
    text: &str,
    module: &Module,
) -> Result<EdgeProfile, ProfileParseError> {
    let mut profile = EdgeProfile::for_module(module);
    let mut current: Option<(FuncId, usize)> = None;
    let mut declared: Option<u64> = None;
    let mut seen_funcs: u64 = 0;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        let step = |profile: &mut EdgeProfile,
                    current: &mut Option<(FuncId, usize)>,
                    declared: &mut Option<u64>,
                    seen_funcs: &mut u64|
         -> Result<(), ProfileParseError> {
            if let Some(header) = parse_header(line, "edge", "funcs", lineno)? {
                *declared = header.declared;
                return Ok(());
            }
            if line.is_empty() || line.starts_with('#') {
                return Ok(());
            }
            if let Some(rest) = line.strip_prefix("func ") {
                let (fid_s, counters_s) =
                    rest.split_once(' ').ok_or_else(|| ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: "malformed func line".into(),
                    })?;
                let fid = FuncId::new(parse_id(fid_s, "fn", lineno)?);
                let counters = parse_tagged(counters_s.trim(), "counters=", lineno)? as usize;
                let Some(func) = module.functions.get(fid.index()) else {
                    return perr(lineno, format!("module has no function `{fid}`"));
                };
                let cfg = Cfg::compute(func);
                let expected = cfg.num_edges() + 1 + cfg.num_blocks();
                if counters != expected {
                    return perr(
                        lineno,
                        format!(
                            "counter space mismatch for {fid}: file has {counters}, module needs {expected}"
                        ),
                    );
                }
                *current = Some((fid, counters));
                *seen_funcs += 1;
                return Ok(());
            }
            if line.starts_with('e') {
                let Some((fid, counters)) = *current else {
                    return perr(lineno, "counter before any `func` line");
                };
                let (e_s, c_s) = line.split_once(' ').ok_or_else(|| ProfileParseError {
                    line: lineno,
                    col: 1,
                    message: "malformed counter line".into(),
                })?;
                let e = parse_id(e_s, "e", lineno)? as usize;
                if e >= counters {
                    return perr(lineno, format!("counter `e{e}` out of range"));
                }
                let c: u64 = c_s.trim().parse().map_err(|_| ProfileParseError {
                    line: lineno,
                    col: 1,
                    message: format!("bad count `{c_s}`"),
                })?;
                profile.set(fid, EdgeId::new(e as u32), c);
                return Ok(());
            }
            perr(lineno, format!("unrecognized line `{line}`"))
        };
        step(&mut profile, &mut current, &mut declared, &mut seen_funcs)
            .map_err(|e| e.locate_in(raw))?;
    }
    if let Some(expected) = declared {
        if seen_funcs != expected {
            return perr(
                text.lines().count(),
                format!("truncated edge profile: header declares {expected} func(s), found {seen_funcs}"),
            );
        }
    }
    Ok(profile)
}

/// Serializes a stride profile.
pub fn stride_profile_to_text(profile: &StrideProfile) -> String {
    let mut entries: Vec<(FuncId, InstrId, &LoadStrideProfile)> = profile.iter().collect();
    entries.sort_by_key(|&(f, s, _)| (f, s));
    let mut out = format!("# stride profile v2 sites={}\n", entries.len());
    for (func, site, p) in entries {
        let top = p
            .top
            .iter()
            .map(|(s, c)| format!("{s}:{c}"))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "site {func} {site} total={} zero={} zdiff={} diffs={} top={}",
            p.total_freq, p.num_zero_stride, p.num_zero_diff, p.total_diffs, top
        );
    }
    out
}

/// Parses a stride profile written by [`stride_profile_to_text`] (v2, or
/// the count-less v1 format).
///
/// # Errors
///
/// Returns a [`ProfileParseError`] on malformed text or a v2
/// integrity-count violation.
pub fn stride_profile_from_text(text: &str) -> Result<StrideProfile, ProfileParseError> {
    let mut profile = StrideProfile::new();
    let mut declared: Option<u64> = None;
    let mut seen_sites: u64 = 0;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        let step = |profile: &mut StrideProfile,
                    declared: &mut Option<u64>,
                    seen_sites: &mut u64|
         -> Result<(), ProfileParseError> {
            if let Some(header) = parse_header(line, "stride", "sites", lineno)? {
                *declared = header.declared;
                return Ok(());
            }
            if line.is_empty() || line.starts_with('#') {
                return Ok(());
            }
            let Some(rest) = line.strip_prefix("site ") else {
                return perr(lineno, format!("unrecognized line `{line}`"));
            };
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 7 {
                return perr(lineno, "site line needs 7 fields");
            }
            let func = FuncId::new(parse_id(fields[0], "fn", lineno)?);
            let site = InstrId::new(parse_id(fields[1], "i", lineno)?);
            let total_freq = parse_tagged(fields[2], "total=", lineno)?;
            let num_zero_stride = parse_tagged(fields[3], "zero=", lineno)?;
            let num_zero_diff = parse_tagged(fields[4], "zdiff=", lineno)?;
            let total_diffs = parse_tagged(fields[5], "diffs=", lineno)?;
            let top_s = fields[6]
                .strip_prefix("top=")
                .ok_or_else(|| ProfileParseError {
                    line: lineno,
                    col: 1,
                    message: "missing top=".into(),
                })?;
            let mut top = Vec::new();
            if !top_s.is_empty() {
                for pair in top_s.split(',') {
                    let (s, c) = pair.split_once(':').ok_or_else(|| ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: format!("bad top entry `{pair}`"),
                    })?;
                    let stride: i64 = s.parse().map_err(|_| ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: format!("bad stride `{s}`"),
                    })?;
                    let count: u64 = c.parse().map_err(|_| ProfileParseError {
                        line: lineno,
                        col: 1,
                        message: format!("bad count `{c}`"),
                    })?;
                    top.push((stride, count));
                }
            }
            profile.insert(
                func,
                site,
                LoadStrideProfile {
                    top,
                    total_freq,
                    num_zero_stride,
                    num_zero_diff,
                    total_diffs,
                },
            );
            *seen_sites += 1;
            Ok(())
        };
        step(&mut profile, &mut declared, &mut seen_sites).map_err(|e| e.locate_in(raw))?;
    }
    if let Some(expected) = declared {
        if seen_sites != expected {
            return perr(
                text.lines().count(),
                format!(
                    "truncated stride profile: header declares {expected} site(s), found {seen_sites}"
                ),
            );
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{ModuleBuilder, Operand};

    fn small_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        fb.while_nonzero(p, |fb, p| {
            fb.load_to(p, p, 0);
        });
        fb.ret(Some(Operand::Imm(0)));
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn edge_profile_round_trips() {
        let m = small_module();
        let mut p = EdgeProfile::for_module(&m);
        let f = m.entry;
        p.increment(f, EdgeId::new(0));
        for _ in 0..999 {
            p.increment(f, EdgeId::new(2));
        }
        let text = edge_profile_to_text(&p, &m);
        assert!(text.starts_with("# edge profile v2 funcs=1\n"));
        let q = edge_profile_from_text(&text, &m).expect("parses");
        let cfg = Cfg::compute(m.function(f));
        let n = cfg.num_edges() + 1 + cfg.num_blocks();
        for e in 0..n {
            assert_eq!(
                p.count(f, EdgeId::new(e as u32)),
                q.count(f, EdgeId::new(e as u32)),
                "counter e{e} differs"
            );
        }
    }

    #[test]
    fn stride_profile_round_trips() {
        let mut p = StrideProfile::new();
        p.insert(
            FuncId::new(0),
            InstrId::new(7),
            LoadStrideProfile {
                top: vec![(64, 900), (-48, 55)],
                total_freq: 1000,
                num_zero_stride: 12,
                num_zero_diff: 850,
                total_diffs: 999,
            },
        );
        p.insert(
            FuncId::new(2),
            InstrId::new(0),
            LoadStrideProfile {
                top: vec![],
                total_freq: 0,
                num_zero_stride: 5,
                num_zero_diff: 0,
                total_diffs: 0,
            },
        );
        let text = stride_profile_to_text(&p);
        assert!(text.starts_with("# stride profile v2 sites=2\n"));
        let q = stride_profile_from_text(&text).expect("parses");
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.get(FuncId::new(0), InstrId::new(7)),
            p.get(FuncId::new(0), InstrId::new(7))
        );
        assert_eq!(
            q.get(FuncId::new(2), InstrId::new(0)),
            p.get(FuncId::new(2), InstrId::new(0))
        );
    }

    #[test]
    fn v1_files_without_counts_still_parse() {
        let m = small_module();
        let edge = "# edge profile v1\nfunc fn0 counters=9\ne0 7\n";
        // (small_module has 9 counters: edges + 1 virtual + blocks)
        let p = edge_profile_from_text(edge, &m).expect("v1 edge parses");
        assert_eq!(p.count(m.entry, EdgeId::new(0)), 7);
        let stride = "# stride profile v1\nsite fn0 i1 total=5 zero=0 zdiff=4 diffs=4 top=64:5\n";
        let q = stride_profile_from_text(stride).expect("v1 stride parses");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn truncated_v2_files_are_rejected() {
        let m = small_module();
        let e = edge_profile_from_text("# edge profile v2 funcs=2\nfunc fn0 counters=9\n", &m)
            .unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
        let e = stride_profile_from_text("# stride profile v2 sites=3\n").unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let e = stride_profile_from_text("# stride profile v9 sites=0\n").unwrap_err();
        assert!(e.message.contains("unsupported"), "{e}");
    }

    #[test]
    fn counter_space_mismatch_is_rejected() {
        let m = small_module();
        let text = "# edge profile v1\nfunc fn0 counters=3\n";
        let e = edge_profile_from_text(text, &m).unwrap_err();
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn malformed_lines_report_position() {
        let e = stride_profile_from_text("# stride profile v1\nnot a site line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let m = small_module();
        let e = edge_profile_from_text("wat\n", &m).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn errors_locate_the_offending_token() {
        let src = "# stride profile v1\nsite fn0 i1 total=5 zero=0 zdiff=4 diffs=4 top=64:xx\n";
        let e = stride_profile_from_text(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.col > 1, "col located: {e:?}");
        let rendered = e.render(src);
        assert!(rendered.contains("    2 | site fn0"), "{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(
            caret_line.chars().filter(|&c| c == '^').count(),
            1,
            "{rendered}"
        );
        // The caret must sit under the offending token.
        let line_text = src.lines().nth(1).unwrap();
        let caret_col = caret_line.chars().count() - "      | ".len();
        let token_col = line_text.find("xx").unwrap() + 1;
        assert_eq!(caret_col, token_col, "{rendered}");
    }

    #[test]
    fn bad_count_column_points_at_number() {
        let m = small_module();
        let src = "# edge profile v1\nfunc fn0 counters=9\ne0 x9\n";
        let e = edge_profile_from_text(src, &m).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 4, "{e:?}");
    }
}
