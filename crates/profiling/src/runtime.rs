//! The profiling runtime wired into the VM: owns the edge counters and the
//! per-load `strideProf` state, and prices every hook so instrumented runs
//! pay the paper's profiling overhead.

use crate::freq::EdgeProfile;
use crate::profile::{LoadStrideProfile, StrideProfile};
use crate::stride_prof::{StrideProfConfig, StrideProfData, StrideProfEngine, StrideProfStats};
use stride_ir::{EdgeId, FuncId, InstrId, Module};
use stride_vm::ProfilingRuntime;

/// Cycle cost of one edge-counter update (`ld; add; st` of Fig. 14).
pub const COST_PROFILE_EDGE: u64 = 3;
/// Fixed part of a trip-count check (shift + compare + predicate set).
pub const COST_TRIP_CHECK_BASE: u64 = 3;
/// Per-summed-counter cost of a trip-count check (load + add).
pub const COST_TRIP_CHECK_PER_EDGE: u64 = 2;

/// The integrated profiling runtime: edge-frequency counters plus
/// `strideProf` state for every profiled load (one *slot* per load,
/// assigned by the instrumentation pass).
#[derive(Clone, Debug)]
pub struct ProfilerRuntime {
    edges: EdgeProfile,
    engine: StrideProfEngine,
    config: StrideProfConfig,
    slots: Vec<StrideProfData>,
    slot_sites: Vec<(FuncId, InstrId)>,
}

impl ProfilerRuntime {
    /// Creates a runtime for `module` (the *original*, pre-instrumentation
    /// module — edge counters are keyed by its CFG) with one stride slot
    /// per `(func, load)` in `slot_sites`.
    pub fn new(
        module: &Module,
        slot_sites: Vec<(FuncId, InstrId)>,
        config: StrideProfConfig,
    ) -> Self {
        let slots = slot_sites
            .iter()
            .map(|_| StrideProfData::new(&config))
            .collect();
        ProfilerRuntime {
            edges: EdgeProfile::for_module(module),
            engine: StrideProfEngine::new(),
            config,
            slots,
            slot_sites,
        }
    }

    /// A runtime that collects only the edge-frequency profile (the
    /// baseline the paper's overhead figures compare against).
    pub fn edge_only(module: &Module) -> Self {
        Self::new(module, Vec::new(), StrideProfConfig::plain())
    }

    /// Read access to the edge counters (e.g. mid-run inspection).
    pub fn edges(&self) -> &EdgeProfile {
        &self.edges
    }

    /// Aggregate `strideProf` statistics (Figs. 21/22).
    pub fn stride_stats(&self) -> StrideProfStats {
        self.engine.stats
    }

    /// Finalizes the run: returns the edge profile, the stride profile
    /// (with fine-sampling scaling undone) and the aggregate statistics,
    /// including the summed per-load LFU counters.
    pub fn finish(mut self) -> (EdgeProfile, StrideProfile, StrideProfStats) {
        let mut stride = StrideProfile::new();
        let mut stats = self.engine.stats;
        for (i, data) in self.slots.iter_mut().enumerate() {
            let (func, site) = self.slot_sites[i];
            stats.lfu.absorb(data.lfu_stats());
            stride.insert(func, site, LoadStrideProfile::from_data(data, &self.config));
        }
        (self.edges, stride, stats)
    }
}

impl ProfilingRuntime for ProfilerRuntime {
    fn profile_edge(&mut self, func: FuncId, edge: EdgeId) -> u64 {
        self.edges.increment(func, edge);
        COST_PROFILE_EDGE
    }

    fn trip_count_check(
        &mut self,
        func: FuncId,
        incoming: &[EdgeId],
        outgoing: &[EdgeId],
        shift: u32,
    ) -> (bool, u64) {
        let r1: u64 = incoming.iter().map(|&e| self.edges.count(func, e)).sum();
        let r2: u64 = outgoing.iter().map(|&e| self.edges.count(func, e)).sum();
        let cost = COST_TRIP_CHECK_BASE
            + COST_TRIP_CHECK_PER_EDGE * (incoming.len() + outgoing.len()) as u64;
        ((r2 >> shift) > r1, cost)
    }

    fn stride_prof(&mut self, _func: FuncId, _site: InstrId, slot: u32, addr: u64) -> u64 {
        let data = &mut self.slots[slot as usize];
        self.engine.stride_prof(&self.config, data, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::ModuleBuilder;

    fn empty_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn edge_counts_accumulate() {
        let m = empty_module();
        let mut rt = ProfilerRuntime::edge_only(&m);
        let f = FuncId::new(0);
        let e = EdgeId::new(0); // virtual entry edge of the single block fn
        let c1 = rt.profile_edge(f, e);
        let c2 = rt.profile_edge(f, e);
        assert_eq!(c1, COST_PROFILE_EDGE);
        assert_eq!(c2, COST_PROFILE_EDGE);
        assert_eq!(rt.edges().count(f, e), 2);
    }

    #[test]
    fn trip_check_thresholds_on_shift() {
        let m = empty_module();
        let mut rt = ProfilerRuntime::edge_only(&m);
        let f = FuncId::new(0);
        let e = EdgeId::new(0);
        // entry freq 1, header freq 300, shift 7 (TT = 128): 300>>7 = 2 > 1
        rt.profile_edge(f, e);
        let header_edge = e;
        for _ in 0..299 {
            rt.profile_edge(f, header_edge);
        }
        let (pred, cost) = rt.trip_count_check(f, &[], &[header_edge], 7);
        assert!(pred); // 300 >> 7 = 2 > 0 (no incoming counters summed)
        assert_eq!(cost, COST_TRIP_CHECK_BASE + COST_TRIP_CHECK_PER_EDGE);
    }

    #[test]
    fn trip_check_false_for_low_counts() {
        let m = empty_module();
        let mut rt = ProfilerRuntime::edge_only(&m);
        let f = FuncId::new(0);
        let e_in = EdgeId::new(0);
        rt.profile_edge(f, e_in);
        // header executed 64 times: 64 >> 7 == 0, not > 1
        let (pred, _) = rt.trip_count_check(f, &[e_in], &[e_in], 7);
        assert!(!pred);
    }

    #[test]
    fn stride_slots_collect_independent_profiles() {
        let m = empty_module();
        let f = FuncId::new(0);
        let s0 = InstrId::new(0);
        let s1 = InstrId::new(1);
        let mut rt = ProfilerRuntime::new(&m, vec![(f, s0), (f, s1)], StrideProfConfig::plain());
        for i in 0..50u64 {
            rt.stride_prof(f, s0, 0, 0x1000 + i * 64);
            rt.stride_prof(f, s1, 1, 0x9000 + i * 8);
        }
        let (_, stride, stats) = rt.finish();
        assert_eq!(stats.calls, 100);
        assert_eq!(stride.get(f, s0).unwrap().top1().unwrap().0, 64);
        assert_eq!(stride.get(f, s1).unwrap().top1().unwrap().0, 8);
    }

    #[test]
    fn finish_returns_edge_profile_too() {
        let m = empty_module();
        let mut rt = ProfilerRuntime::edge_only(&m);
        rt.profile_edge(FuncId::new(0), EdgeId::new(0));
        let (edges, stride, _) = rt.finish();
        assert_eq!(edges.count(FuncId::new(0), EdgeId::new(0)), 1);
        assert!(stride.is_empty());
    }
}
