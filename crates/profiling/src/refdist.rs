//! Reference-distance profiling — the first future-work direction of the
//! paper's §6: "profile the number of memory references between the
//! successive references at a load site. If this number is large, we
//! should not prefetch for the load."
//!
//! The profiler consumes a stream of `(site, is_tracked)` memory-reference
//! events and records, per tracked site, the distribution of intervening
//! memory references between its successive executions.

use std::collections::HashMap;
use stride_ir::{FuncId, InstrId};

/// Summary of the reference distances of one load site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefDistSummary {
    /// Number of distances observed (executions - 1).
    pub samples: u64,
    /// Sum of distances (for the mean).
    pub total: u64,
    /// Largest observed distance.
    pub max: u64,
    /// Smallest observed distance.
    pub min: u64,
}

impl RefDistSummary {
    /// Mean intervening references between successive executions.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total as f64 / self.samples as f64
        }
    }
}

/// Streaming reference-distance profiler.
///
/// Feed it every memory reference of a run in order via
/// [`ReferenceDistanceProfiler::reference`]; tracked sites additionally
/// record distances.
#[derive(Clone, Debug, Default)]
pub struct ReferenceDistanceProfiler {
    clock: u64,
    last_seen: HashMap<(FuncId, InstrId), u64>,
    summaries: HashMap<(FuncId, InstrId), RefDistSummary>,
}

impl ReferenceDistanceProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one memory reference. `site` is `Some` for loads whose
    /// distance is being profiled and `None` for every other memory
    /// reference (they advance the clock only).
    pub fn reference(&mut self, site: Option<(FuncId, InstrId)>) {
        self.clock += 1;
        let Some(key) = site else {
            return;
        };
        if let Some(prev) = self.last_seen.insert(key, self.clock) {
            // intervening references strictly between the two executions
            let dist = self.clock - prev - 1;
            let s = self.summaries.entry(key).or_insert(RefDistSummary {
                samples: 0,
                total: 0,
                max: 0,
                min: u64::MAX,
            });
            s.samples += 1;
            s.total += dist;
            s.max = s.max.max(dist);
            s.min = s.min.min(dist);
        }
    }

    /// The summary for one site, if it executed at least twice.
    pub fn summary(&self, func: FuncId, site: InstrId) -> Option<RefDistSummary> {
        self.summaries.get(&(func, site)).copied()
    }

    /// Applies the paper's future-work heuristic: prefetch only when the
    /// mean reference distance is below `threshold` (a large distance
    /// means the prefetched line is likely evicted before use).
    pub fn should_prefetch(&self, func: FuncId, site: InstrId, threshold: f64) -> bool {
        match self.summary(func, site) {
            Some(s) => s.mean() < threshold,
            None => false,
        }
    }

    /// Total memory references observed.
    pub fn total_references(&self) -> u64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FuncId = FuncId(0);
    const A: InstrId = InstrId(1);
    const B: InstrId = InstrId(2);

    #[test]
    fn tight_loop_load_has_small_distance() {
        let mut p = ReferenceDistanceProfiler::new();
        // loop body: tracked load + 2 other references
        for _ in 0..10 {
            p.reference(Some((F, A)));
            p.reference(None);
            p.reference(None);
        }
        let s = p.summary(F, A).unwrap();
        assert_eq!(s.samples, 9);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!(p.should_prefetch(F, A, 100.0));
    }

    #[test]
    fn out_loop_load_with_many_intervening_refs() {
        let mut p = ReferenceDistanceProfiler::new();
        for _ in 0..5 {
            p.reference(Some((F, B)));
            for _ in 0..1000 {
                p.reference(None);
            }
        }
        let s = p.summary(F, B).unwrap();
        assert_eq!(s.mean(), 1000.0);
        assert!(!p.should_prefetch(F, B, 100.0));
    }

    #[test]
    fn sites_are_independent() {
        let mut p = ReferenceDistanceProfiler::new();
        p.reference(Some((F, A)));
        p.reference(Some((F, B)));
        p.reference(Some((F, A)));
        p.reference(None);
        p.reference(Some((F, B)));
        assert_eq!(p.summary(F, A).unwrap().mean(), 1.0);
        assert_eq!(p.summary(F, B).unwrap().mean(), 2.0);
        assert_eq!(p.total_references(), 5);
    }

    #[test]
    fn single_execution_has_no_summary() {
        let mut p = ReferenceDistanceProfiler::new();
        p.reference(Some((F, A)));
        assert_eq!(p.summary(F, A), None);
        assert!(!p.should_prefetch(F, A, 1e9));
    }

    #[test]
    fn varying_distances_tracked_min_max() {
        let mut p = ReferenceDistanceProfiler::new();
        p.reference(Some((F, A)));
        p.reference(None);
        p.reference(Some((F, A))); // dist 1
        p.reference(Some((F, A))); // dist 0
        for _ in 0..5 {
            p.reference(None);
        }
        p.reference(Some((F, A))); // dist 5
        let s = p.summary(F, A).unwrap();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 5);
        assert_eq!(s.samples, 3);
    }
}
