//! Edge-frequency profiles and the derived quantities the paper's
//! feedback pass needs: block frequencies and loop trip counts (Fig. 10).

use stride_ir::{BlockId, Cfg, EdgeId, FuncId, LoopForest, LoopId, Module};

/// Where a frequency quantity should be derived from: the edge counters
/// (edge-check instrumentation) or the per-block counters (block-check
/// instrumentation, Fig. 11).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FreqSource {
    /// Edge-frequency counters (plus the virtual entry counter).
    Edges,
    /// Block-frequency counters.
    Blocks,
}

/// Edge-frequency profile for a whole module, keyed by the *original*
/// module's deterministic edge numbering ([`Cfg::compute`]).
///
/// The counter space of each function holds, in order: one counter per CFG
/// edge, one virtual counter counting function entries (so block
/// frequencies are well defined even for entry blocks and single-block
/// functions), and one counter per block (used by the block-check method,
/// which profiles block frequencies instead of edge frequencies).
#[derive(Clone, Debug, Default)]
pub struct EdgeProfile {
    counts: Vec<Vec<u64>>,
}

impl EdgeProfile {
    /// Creates a zeroed profile sized for `module`.
    pub fn for_module(module: &Module) -> Self {
        let counts = module
            .functions
            .iter()
            .map(|f| {
                let cfg = Cfg::compute(f);
                vec![0u64; cfg.num_edges() + 1 + cfg.num_blocks()]
            })
            .collect();
        EdgeProfile { counts }
    }

    /// The virtual entry-edge id for a function with `num_edges` real
    /// edges.
    pub fn entry_edge(cfg: &Cfg) -> EdgeId {
        EdgeId::new(cfg.num_edges() as u32)
    }

    /// The counter id holding the block frequency of `block` (block-check
    /// instrumentation).
    pub fn block_counter(cfg: &Cfg, block: BlockId) -> EdgeId {
        EdgeId::new((cfg.num_edges() + 1 + block.index()) as u32)
    }

    /// Increments one counter, saturating at `u64::MAX` so arbitrarily
    /// long campaigns cannot overflow-panic in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn increment(&mut self, func: FuncId, edge: EdgeId) {
        let c = &mut self.counts[func.index()][edge.index()];
        *c = c.saturating_add(1);
    }

    /// Sets one counter to an absolute value (profile-file loading).
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn set(&mut self, func: FuncId, edge: EdgeId, count: u64) {
        self.counts[func.index()][edge.index()] = count;
    }

    /// Reads one counter (0 for out-of-range ids, so profiles built for a
    /// smaller module are usable defensively).
    pub fn count(&self, func: FuncId, edge: EdgeId) -> u64 {
        self.counts
            .get(func.index())
            .and_then(|v| v.get(edge.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Execution frequency of `block`: the sum of its incoming edge
    /// counters, plus the virtual entry counter if it is the function's
    /// entry block.
    pub fn block_freq(&self, func: FuncId, cfg: &Cfg, entry: BlockId, block: BlockId) -> u64 {
        let mut freq: u64 = 0;
        for &p in cfg.preds(block) {
            if let Some(e) = cfg.edge_id(p, block) {
                freq = freq.saturating_add(self.count(func, e));
            }
        }
        if block == entry {
            freq = freq.saturating_add(self.count(func, Self::entry_edge(cfg)));
        }
        freq
    }

    /// Frequency of a loop's header: the sum of the counters of its
    /// outgoing edges (Figs. 12–13 — works even though the header itself
    /// may have no dedicated block counter).
    pub fn loop_header_freq(&self, func: FuncId, cfg: &Cfg, loops: &LoopForest, l: LoopId) -> u64 {
        loops
            .header_out_edges(l, cfg)
            .into_iter()
            .filter_map(|(a, b)| cfg.edge_id(a, b))
            .map(|e| self.count(func, e))
            .fold(0u64, u64::saturating_add)
    }

    /// Frequency of entering the loop from outside (the pre-head frequency
    /// of Fig. 10).
    pub fn loop_entry_freq(&self, func: FuncId, cfg: &Cfg, loops: &LoopForest, l: LoopId) -> u64 {
        loops
            .entry_edges(l, cfg)
            .into_iter()
            .filter_map(|(a, b)| cfg.edge_id(a, b))
            .map(|e| self.count(func, e))
            .fold(0u64, u64::saturating_add)
    }

    /// Average trip count of a loop (Fig. 10):
    /// `TC = header_freq / entry_freq`; 0 if the loop was never entered.
    pub fn trip_count(&self, func: FuncId, cfg: &Cfg, loops: &LoopForest, l: LoopId) -> f64 {
        let entry = self.loop_entry_freq(func, cfg, loops, l);
        if entry == 0 {
            return 0.0;
        }
        self.loop_header_freq(func, cfg, loops, l) as f64 / entry as f64
    }

    /// Block frequency from either counter space.
    ///
    /// With [`FreqSource::Blocks`] the dedicated block counter is read
    /// directly; with [`FreqSource::Edges`] it is derived as in
    /// [`EdgeProfile::block_freq`].
    pub fn block_freq_via(
        &self,
        source: FreqSource,
        func: FuncId,
        cfg: &Cfg,
        entry: BlockId,
        block: BlockId,
    ) -> u64 {
        match source {
            FreqSource::Edges => self.block_freq(func, cfg, entry, block),
            FreqSource::Blocks => self.count(func, Self::block_counter(cfg, block)),
        }
    }

    /// Trip count from either counter space.
    ///
    /// The block-counter variant uses
    /// `freq[header] / sum(freq[outside preds])`, as in Fig. 11. When an
    /// outside predecessor also branches elsewhere, its block frequency
    /// overestimates the entering frequency, so the block-check trip count
    /// is a lower bound of the edge-check one — an inherent imprecision of
    /// block profiles the paper glosses over.
    pub fn trip_count_via(
        &self,
        source: FreqSource,
        func: FuncId,
        cfg: &Cfg,
        loops: &LoopForest,
        l: LoopId,
    ) -> f64 {
        match source {
            FreqSource::Edges => self.trip_count(func, cfg, loops, l),
            FreqSource::Blocks => {
                let entry: u64 = loops
                    .entry_edges(l, cfg)
                    .into_iter()
                    .map(|(from, _)| self.count(func, Self::block_counter(cfg, from)))
                    .fold(0u64, u64::saturating_add);
                if entry == 0 {
                    return 0.0;
                }
                let header = loops.get(l).header;
                self.count(func, Self::block_counter(cfg, header)) as f64 / entry as f64
            }
        }
    }

    /// Read-only view of the raw per-function counter tables, in function
    /// order (profile-database serialization: the tables carry the whole
    /// counter space without needing the module).
    pub fn tables(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Rebuilds a profile from raw counter tables produced by
    /// [`EdgeProfile::tables`] (profile-database loading). The caller is
    /// responsible for the tables matching the target module's counter
    /// space; reads against a mismatched module degrade to 0 per
    /// [`EdgeProfile::count`].
    pub fn from_tables(counts: Vec<Vec<u64>>) -> Self {
        EdgeProfile { counts }
    }

    /// Total of all edge counters (for overhead sanity checks).
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .flatten()
            .fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Clamps every counter to at most `cap`, modeling saturated hardware
    /// frequency counters (fault injection / degradation testing). Since
    /// clamping only lowers frequencies and trip counts, the classifier
    /// can only become *more* conservative under it.
    pub fn clamp(&mut self, cap: u64) {
        for table in &mut self.counts {
            for c in table {
                *c = (*c).min(cap);
            }
        }
    }

    /// Merges another edge profile into this one by summing counters
    /// (multi-run PGO).
    ///
    /// # Panics
    ///
    /// Panics if the two profiles were built for modules with different
    /// shapes (counter space sizes differ).
    pub fn merge(&mut self, other: &EdgeProfile) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "profiles built for different modules"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            assert_eq!(a.len(), b.len(), "profiles built for different modules");
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.saturating_add(*y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{DomTree, FuncAnalysis, ModuleBuilder};

    /// Builds the Fig. 10 loop: b1 -> b2, b2 -> b2 (back edge), b2 -> b3,
    /// then installs the paper's frequencies and checks TC = 50.
    #[test]
    fn figure_10_trip_count() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let header = fb.new_block();
        let exit = fb.new_block();
        fb.br(header); // b0 -> b1(header)
        fb.switch_to(header);
        let c = fb.cmp(stride_ir::CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, header, exit); // self loop
        fb.switch_to(exit);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg, func.entry);
        let loops = LoopForest::compute(&cfg, &dom, func.entry);
        let l = loops.loops()[0].id;

        let mut prof = EdgeProfile::for_module(&m);
        // freq(b1 -> b2) = 20, freq(b2 -> b2) = 980, freq(b2 -> b3) = 20
        let e_enter = cfg.edge_id(BlockId::new(0), BlockId::new(1)).unwrap();
        let e_back = cfg.edge_id(BlockId::new(1), BlockId::new(1)).unwrap();
        let e_exit = cfg.edge_id(BlockId::new(1), BlockId::new(2)).unwrap();
        for _ in 0..20 {
            prof.increment(f, e_enter);
            prof.increment(f, e_exit);
        }
        for _ in 0..980 {
            prof.increment(f, e_back);
        }
        assert_eq!(prof.loop_entry_freq(f, &cfg, &loops, l), 20);
        assert_eq!(prof.loop_header_freq(f, &cfg, &loops, l), 1000);
        let tc = prof.trip_count(f, &cfg, &loops, l);
        assert!((tc - 50.0).abs() < 1e-9, "tc = {tc}");
    }

    #[test]
    fn block_freq_sums_incoming_edges() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let c = fb.cmp(stride_ir::CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, b1, b2);
        fb.switch_to(b1);
        fb.br(b3);
        fb.switch_to(b2);
        fb.br(b3);
        fb.switch_to(b3);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        let mut prof = EdgeProfile::for_module(&m);
        let e13 = cfg.edge_id(b1, b3).unwrap();
        let e23 = cfg.edge_id(b2, b3).unwrap();
        for _ in 0..7 {
            prof.increment(f, e13);
        }
        for _ in 0..3 {
            prof.increment(f, e23);
        }
        assert_eq!(prof.block_freq(f, &cfg, func.entry, b3), 10);
        assert_eq!(prof.block_freq(f, &cfg, func.entry, b1), 0);
    }

    #[test]
    fn entry_block_uses_virtual_counter() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        let mut prof = EdgeProfile::for_module(&m);
        let entry_edge = EdgeProfile::entry_edge(&cfg);
        for _ in 0..5 {
            prof.increment(f, entry_edge);
        }
        assert_eq!(prof.block_freq(f, &cfg, func.entry, func.entry), 5);
    }

    #[test]
    fn never_entered_loop_has_zero_trip_count() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 1);
        let mut fb = mb.function(f);
        fb.counted_loop(fb.param(0), |fb, _| {
            let a = fb.const_(0);
            let _ = fb.load(a, 0);
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let prof = EdgeProfile::for_module(&m);
        let l = analysis.loops.loops()[0].id;
        assert_eq!(prof.trip_count(f, &analysis.cfg, &analysis.loops, l), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut a = EdgeProfile::for_module(&m);
        let mut b = EdgeProfile::for_module(&m);
        let e = EdgeId::new(0); // virtual entry counter
        a.increment(f, e);
        for _ in 0..3 {
            b.increment(f, e);
        }
        a.merge(&b);
        assert_eq!(a.count(f, e), 4);
        assert_eq!(b.count(f, e), 3); // other untouched
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut prof = EdgeProfile::for_module(&m);
        let e = EdgeId::new(0);
        prof.set(f, e, u64::MAX);
        prof.increment(f, e); // would overflow-panic in debug without saturation
        assert_eq!(prof.count(f, e), u64::MAX);
        let mut other = EdgeProfile::for_module(&m);
        other.set(f, e, 1);
        prof.merge(&other);
        assert_eq!(prof.count(f, e), u64::MAX);
        assert_eq!(prof.total(), u64::MAX);
    }

    #[test]
    fn clamp_caps_every_counter() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut prof = EdgeProfile::for_module(&m);
        prof.set(f, EdgeId::new(0), 1_000_000);
        prof.clamp(100);
        assert_eq!(prof.count(f, EdgeId::new(0)), 100);
    }

    #[test]
    fn out_of_range_reads_are_zero() {
        let m = ModuleBuilder::new().finish();
        let prof = EdgeProfile::for_module(&m);
        assert_eq!(prof.count(FuncId::new(5), EdgeId::new(9)), 0);
        assert_eq!(prof.total(), 0);
    }
}
