//! The `strideProf` runtime routine of the paper, in its three variants:
//!
//! * **plain** (Fig. 6): zero-stride fast path, zero-diff counting, LFU
//!   insertion of non-zero strides;
//! * **enhanced** (Fig. 7): `is_same_value` low-bit masking when comparing
//!   addresses (and strides, via [`LfuConfig::same_value_shift`]);
//! * **sampled** (Fig. 9): chunk sampling (skip N1 references, profile the
//!   next N2 — state shared across all loads, like the paper's `static`
//!   counters) composed with per-load fine sampling (profile 1 of every F
//!   references; collected strides are `F×` the true stride and are scaled
//!   back at profile-extraction time, Fig. 8).
//!
//! Each call returns a cycle cost so instrumented runs pay realistic
//! overhead; the cost of the taken path (sampled-out vs. zero-stride vs.
//! full LFU insertion) differs exactly as the paper's Figs. 20–22 discuss.

use crate::lfu::{Lfu, LfuConfig};

/// Chunk-sampling parameters (Fig. 9): after `skip` references are
/// skipped, the next `profile` references are profiled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSampling {
    /// N1: references skipped per period.
    pub skip: u64,
    /// N2: references profiled per period.
    pub profile: u64,
}

/// Configuration of the `strideProf` routine.
#[derive(Clone, Copy, Debug)]
pub struct StrideProfConfig {
    /// LFU buffers used for the stride value profile.
    pub lfu: LfuConfig,
    /// Use Fig. 7's `is_same_value` when comparing addresses for the
    /// zero-stride check.
    pub enhanced: bool,
    /// Low bits ignored by `is_same_value` (the paper uses 4: half a
    /// 32-byte cache line... the Itanium L2 line; we keep it configurable).
    pub same_value_shift: u32,
    /// Fine sampling factor F (profile 1 of every F references).
    pub fine_sample: Option<u32>,
    /// Chunk sampling parameters.
    pub chunk_sample: Option<ChunkSampling>,
    /// Cycle cost of reaching the routine at all (call linkage, argument
    /// setup).
    pub cost_call: u64,
    /// Extra cost of a sampled-out early return.
    pub cost_sampled_out: u64,
    /// Extra cost of the zero-stride fast path.
    pub cost_zero_stride: u64,
    /// Extra cost of the stride/diff bookkeeping before the LFU call.
    pub cost_stride_path: u64,
}

impl StrideProfConfig {
    /// Plain Fig. 6 routine.
    pub const fn plain() -> Self {
        StrideProfConfig {
            lfu: LfuConfig::standard(),
            enhanced: false,
            same_value_shift: 4,
            fine_sample: None,
            chunk_sample: None,
            cost_call: 24,
            cost_sampled_out: 5,
            cost_zero_stride: 14,
            cost_stride_path: 24,
        }
    }

    /// Enhanced Fig. 7 routine (`is_same_value` on addresses and strides).
    pub const fn enhanced() -> Self {
        StrideProfConfig {
            enhanced: true,
            lfu: LfuConfig::enhanced(),
            ..Self::plain()
        }
    }

    /// Sampled Fig. 9 routine. The paper's production values are
    /// N1 = 8 M skipped / N2 = 2 M profiled with F = 4; the defaults here
    /// keep the same 20% duty cycle and F, scaled down so the simulated
    /// workloads (whose guarded methods see on the order of 10^5-10^6
    /// `strideProf` calls rather than SPEC's 10^9) still collect many
    /// chunks per run, and so short call bursts from low-frequency loops
    /// straddle at least one profiled window.
    pub const fn sampled() -> Self {
        StrideProfConfig {
            fine_sample: Some(4),
            // A prime total period (1999) keeps the windows from
            // phase-locking onto the fixed per-iteration call order of a
            // deterministic simulation (real runs get this decorrelation
            // from hardware noise).
            chunk_sample: Some(ChunkSampling {
                skip: 1_599,
                profile: 400,
            }),
            ..Self::enhanced()
        }
    }
}

impl Default for StrideProfConfig {
    fn default() -> Self {
        Self::plain()
    }
}

/// Per-load profiling state (the paper's `prof_data`).
#[derive(Clone, Debug)]
pub struct StrideProfData {
    prev_address: Option<u64>,
    prev_stride: Option<i64>,
    /// References whose address matched the previous one (zero stride).
    pub num_zero_stride: u64,
    /// Successive non-zero strides whose difference was zero — the phased
    /// signal (Fig. 4b).
    pub num_zero_diff: u64,
    /// Number of stride differences observed.
    pub total_diffs: u64,
    lfu: Lfu,
    /// Fine-sampling countdown (the paper's `number_to_skip`).
    number_to_skip: u32,
}

impl StrideProfData {
    /// Creates empty per-load state.
    pub fn new(config: &StrideProfConfig) -> Self {
        StrideProfData {
            prev_address: None,
            prev_stride: None,
            num_zero_stride: 0,
            num_zero_diff: 0,
            total_diffs: 0,
            lfu: Lfu::new(config.lfu),
            number_to_skip: 0,
        }
    }

    /// Top recorded strides `(stride, frequency)`, highest frequency
    /// first. Strides are as collected — divide by F when fine sampling
    /// was used (see [`crate::profile::LoadStrideProfile::from_data`]).
    pub fn top_strides(&mut self) -> Vec<(i64, u64)> {
        self.lfu.top_values()
    }

    /// Number of non-zero strides collected (the `total_freq` of Fig. 5).
    pub fn total_freq(&self) -> u64 {
        self.lfu.total()
    }

    /// Observability counters of this load's LFU instance.
    pub fn lfu_stats(&self) -> crate::lfu::LfuStats {
        self.lfu.stats()
    }
}

/// Aggregate counters across all loads, reported in Figs. 21 and 22.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrideProfStats {
    /// Invocations of the routine (= instrumented load references
    /// executed under a true guard).
    pub calls: u64,
    /// Invocations that survived both sampling filters (Fig. 21).
    pub processed: u64,
    /// Invocations that reached the LFU routine (Fig. 22); the gap to
    /// `processed` is the zero-stride fast path.
    pub lfu_inserts: u64,
    /// Aggregate LFU-internal counters (temp-buffer hits, evictions,
    /// merges) across all profiled loads. Filled in by
    /// [`crate::ProfilerRuntime::finish`], which owns the per-load LFU
    /// instances.
    pub lfu: crate::lfu::LfuStats,
}

/// The shared `strideProf` engine: global sampling state + statistics.
/// One instance serves every profiled load of a run (per-load state lives
/// in [`StrideProfData`]).
#[derive(Clone, Debug, Default)]
pub struct StrideProfEngine {
    /// Chunk-sampling state, shared across loads (the paper's `static
    /// int number_skipped / number_profiled`).
    number_skipped: u64,
    number_profiled: u64,
    /// Aggregate statistics.
    pub stats: StrideProfStats,
}

impl StrideProfEngine {
    /// Creates a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `strideProf(address, prof_data)` routine. Returns the cycle
    /// cost of the call.
    pub fn stride_prof(
        &mut self,
        config: &StrideProfConfig,
        data: &mut StrideProfData,
        address: u64,
    ) -> u64 {
        self.stats.calls = self.stats.calls.saturating_add(1);
        let mut cost = config.cost_call;

        // --- chunk sampling (Fig. 9, shared static state) ----------------
        if let Some(chunk) = config.chunk_sample {
            if self.number_skipped < chunk.skip {
                self.number_skipped += 1;
                return cost + config.cost_sampled_out;
            }
            if self.number_profiled == chunk.profile {
                self.number_profiled = 0;
                self.number_skipped = 0;
                return cost + config.cost_sampled_out;
            }
            self.number_profiled += 1;
        }

        // --- fine sampling (Fig. 9, per-load state) -----------------------
        if let Some(f) = config.fine_sample {
            if data.number_to_skip > 0 {
                data.number_to_skip -= 1;
                return cost + config.cost_sampled_out;
            }
            data.number_to_skip = f - 1;
        }

        self.stats.processed = self.stats.processed.saturating_add(1);

        // --- first observation: just remember the address -----------------
        let Some(prev) = data.prev_address else {
            data.prev_address = Some(address);
            return cost + config.cost_zero_stride;
        };

        // --- zero-stride fast path (bypasses LFU) -------------------------
        let same = if config.enhanced {
            (address >> config.same_value_shift) == (prev >> config.same_value_shift)
        } else {
            address == prev
        };
        if same {
            data.num_zero_stride = data.num_zero_stride.saturating_add(1);
            return cost + config.cost_zero_stride;
        }

        // --- stride and stride-difference bookkeeping ----------------------
        let stride = address.wrapping_sub(prev) as i64;
        match data.prev_stride {
            Some(ps) => {
                data.total_diffs = data.total_diffs.saturating_add(1);
                if stride == ps {
                    data.num_zero_diff = data.num_zero_diff.saturating_add(1);
                } else {
                    // Fig. 6/7: prev_stride is updated only when the diff is
                    // non-zero, so it tracks the current phase.
                    data.prev_stride = Some(stride);
                }
            }
            None => data.prev_stride = Some(stride),
        }
        data.prev_address = Some(address);
        cost += config.cost_stride_path;
        cost += data.lfu.insert(stride);
        self.stats.lfu_inserts = self.stats.lfu_inserts.saturating_add(1);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(config: &StrideProfConfig, addresses: &[u64]) -> (StrideProfData, StrideProfEngine) {
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(config);
        for &a in addresses {
            engine.stride_prof(config, &mut data, a);
        }
        (data, engine)
    }

    /// Addresses walking by a constant stride.
    fn walk(start: u64, stride: i64, n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| start.wrapping_add((stride as u64).wrapping_mul(i as u64)))
            .collect()
    }

    #[test]
    fn constant_stride_is_discovered() {
        let cfg = StrideProfConfig::plain();
        let (mut data, engine) = feed(&cfg, &walk(0x1000, 64, 101));
        let top = data.top_strides();
        assert_eq!(top[0], (64, 100));
        assert_eq!(data.total_freq(), 100);
        // every stride equals the previous one: all diffs are zero
        assert_eq!(data.num_zero_diff, 99);
        assert_eq!(data.total_diffs, 99);
        assert_eq!(engine.stats.processed, 101);
        assert_eq!(engine.stats.lfu_inserts, 100);
    }

    #[test]
    fn zero_strides_bypass_lfu() {
        let cfg = StrideProfConfig::plain();
        let addrs = vec![0x1000; 50];
        let (data, engine) = feed(&cfg, &addrs);
        assert_eq!(data.num_zero_stride, 49);
        assert_eq!(data.total_freq(), 0);
        assert_eq!(engine.stats.lfu_inserts, 0);
        assert_eq!(engine.stats.processed, 50);
    }

    #[test]
    fn phased_sequence_has_zero_diffs_fig4b() {
        // Fig. 4: strides 2,2,2,2,2,100,100,100,100,1 (phased) — top
        // diff is 0 with frequency 7.
        let cfg = StrideProfConfig::plain();
        let mut addrs = vec![0u64];
        for s in [2i64, 2, 2, 2, 2, 100, 100, 100, 100, 1] {
            let last = *addrs.last().unwrap();
            addrs.push(last.wrapping_add(s as u64));
        }
        let (mut data, _) = feed(&cfg, &addrs);
        assert_eq!(data.total_freq(), 10);
        assert_eq!(data.num_zero_diff, 7);
        assert_eq!(data.total_diffs, 9);
        let top = data.top_strides();
        assert_eq!(top[0], (2, 5));
        assert_eq!(top[1], (100, 4));
    }

    #[test]
    fn alternating_sequence_has_no_zero_diffs_fig4c() {
        // Strides 2,100,2,100,... — same top strides, but no zero diffs.
        let cfg = StrideProfConfig::plain();
        let mut addrs = vec![0u64];
        for s in [2i64, 100, 2, 100, 2, 100, 2, 100, 2, 1] {
            let last = *addrs.last().unwrap();
            addrs.push(last.wrapping_add(s as u64));
        }
        let (mut data, _) = feed(&cfg, &addrs);
        assert_eq!(data.num_zero_diff, 0);
        let top = data.top_strides();
        assert_eq!(top[0], (2, 5));
        assert_eq!(top[1], (100, 4));
    }

    #[test]
    fn enhanced_treats_nearby_addresses_as_same() {
        let cfg = StrideProfConfig::enhanced();
        // drift by 8 bytes: same 16-byte-aligned bucket -> zero stride
        let (data, _) = feed(&cfg, &[0x1000, 0x1008, 0x1000, 0x1008]);
        assert_eq!(data.num_zero_stride, 3);
        assert_eq!(data.total_freq(), 0);
    }

    #[test]
    fn plain_does_not_coalesce_nearby_addresses() {
        let cfg = StrideProfConfig::plain();
        let (data, _) = feed(&cfg, &[0x1000, 0x1008, 0x1000, 0x1008]);
        assert_eq!(data.num_zero_stride, 0);
        assert_eq!(data.total_freq(), 3);
    }

    #[test]
    fn fine_sampling_scales_strides_by_f() {
        // With F = 4, only every 4th reference is profiled, so the
        // collected stride is 4x the true one (Fig. 8).
        let cfg = StrideProfConfig {
            fine_sample: Some(4),
            ..StrideProfConfig::plain()
        };
        let (mut data, engine) = feed(&cfg, &walk(0x1000, 16, 401));
        assert_eq!(engine.stats.calls, 401);
        assert_eq!(engine.stats.processed, 101);
        let top = data.top_strides();
        assert_eq!(top[0].0, 64); // 4 * 16
    }

    #[test]
    fn chunk_sampling_limits_processed_fraction() {
        let cfg = StrideProfConfig {
            chunk_sample: Some(ChunkSampling {
                skip: 800,
                profile: 200,
            }),
            ..StrideProfConfig::plain()
        };
        let (_, engine) = feed(&cfg, &walk(0, 8, 10_000));
        // ~20% duty cycle (one extra call per period resets the counters)
        let frac = engine.stats.processed as f64 / engine.stats.calls as f64;
        assert!((0.15..=0.25).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn chunk_state_is_shared_across_loads() {
        let cfg = StrideProfConfig {
            chunk_sample: Some(ChunkSampling {
                skip: 10,
                profile: 10,
            }),
            ..StrideProfConfig::plain()
        };
        let mut engine = StrideProfEngine::new();
        let mut d1 = StrideProfData::new(&cfg);
        let mut d2 = StrideProfData::new(&cfg);
        // interleave two loads; the skip budget is consumed jointly
        for i in 0..10 {
            engine.stride_prof(&cfg, &mut d1, i * 64);
            engine.stride_prof(&cfg, &mut d2, i * 128);
        }
        assert_eq!(engine.stats.processed, 10); // 20 calls, first 10 skipped
    }

    #[test]
    fn sampled_out_calls_cost_less() {
        let cfg = StrideProfConfig {
            fine_sample: Some(4),
            ..StrideProfConfig::plain()
        };
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(&cfg);
        let c_full = engine.stride_prof(&cfg, &mut data, 0x1000);
        let c_skip = engine.stride_prof(&cfg, &mut data, 0x1040);
        assert!(c_skip < c_full, "skip {c_skip} vs full {c_full}");
    }

    #[test]
    fn saturated_counters_do_not_overflow_panic() {
        let cfg = StrideProfConfig::plain();
        let mut engine = StrideProfEngine::new();
        engine.stats.calls = u64::MAX;
        engine.stats.processed = u64::MAX;
        let mut data = StrideProfData::new(&cfg);
        data.num_zero_stride = u64::MAX;
        data.num_zero_diff = u64::MAX;
        data.total_diffs = u64::MAX;
        // first observation, then a zero stride, then two equal strides:
        // exercises every saturating counter path
        for a in [0x1000, 0x1000, 0x1040, 0x1080] {
            engine.stride_prof(&cfg, &mut data, a);
        }
        assert_eq!(engine.stats.calls, u64::MAX);
        assert_eq!(data.num_zero_stride, u64::MAX);
        assert_eq!(data.total_diffs, u64::MAX);
    }

    #[test]
    fn prev_stride_not_updated_on_zero_diff() {
        // Sequence with strides 8, 8, 9: after the two 8s, prev_stride
        // stays 8, so the 9 is one non-zero diff.
        let cfg = StrideProfConfig::plain();
        let (data, _) = feed(&cfg, &[0, 8, 16, 25]);
        assert_eq!(data.num_zero_diff, 1);
        assert_eq!(data.total_diffs, 2);
    }

    #[test]
    fn multi_stride_phases_report_all_dominants() {
        // Three phases of strides 16, 24, 32 (the 254.gap shape of §1).
        let cfg = StrideProfConfig::plain();
        let mut addrs = vec![0u64];
        for &s in &[16i64; 40] {
            let l = *addrs.last().unwrap();
            addrs.push(l + s as u64);
        }
        for &s in &[24i64; 40] {
            let l = *addrs.last().unwrap();
            addrs.push(l + s as u64);
        }
        for &s in &[32i64; 40] {
            let l = *addrs.last().unwrap();
            addrs.push(l + s as u64);
        }
        let (mut data, _) = feed(&cfg, &addrs);
        let top = data.top_strides();
        let strides: Vec<i64> = top.iter().take(3).map(|&(s, _)| s).collect();
        assert!(strides.contains(&16) && strides.contains(&24) && strides.contains(&32));
        // phased: diffs within each phase are zero
        assert!(data.num_zero_diff >= 3 * 39 - 3);
    }
}
