//! The two-buffer Least-Frequently-Used value profiler of Calder, Feller
//! and Eustace ("Value Profiling", MICRO-30), which the paper uses to
//! collect stride profiles (§3.1).
//!
//! The profiler keeps a small *temp* buffer updated on every insertion and
//! a *final* (steady) buffer. When a value is inserted:
//!
//! * if present in the temp buffer, its count is incremented;
//! * otherwise it replaces the least-frequently-used temp entry.
//!
//! Periodically the temp buffer is merged into the final buffer by keeping
//! the highest-count entries of both, and temp counts are cleared.
//!
//! The paper's *enhanced* routine (Fig. 7) treats strides that differ only
//! in their low bits as the same value (`is_same_value`), shrinking the
//! number of distinct tracked values and therefore the search cost;
//! [`LfuConfig::same_value_shift`] implements that masking.

/// Configuration of an [`Lfu`] profiler.
#[derive(Clone, Copy, Debug)]
pub struct LfuConfig {
    /// Temp buffer entries.
    pub temp_entries: usize,
    /// Final buffer entries (the "top N" reported).
    pub final_entries: usize,
    /// Insertions between merges of temp into final.
    pub merge_period: u64,
    /// Low bits ignored when comparing values (Fig. 7's `is_same_value`
    /// compares `a >> 4 == b >> 4`); 0 compares exactly.
    pub same_value_shift: u32,
    /// Cycle cost charged per entry examined during the search (drives the
    /// profiling-overhead experiments).
    pub cost_per_probe: u64,
    /// Fixed cycle cost per insertion.
    pub cost_base: u64,
}

impl LfuConfig {
    /// The configuration used by the paper-style stride profiles: top-8
    /// final buffer, exact comparison.
    pub const fn standard() -> Self {
        LfuConfig {
            temp_entries: 16,
            final_entries: 8,
            merge_period: 4096,
            same_value_shift: 0,
            cost_per_probe: 4,
            cost_base: 56,
        }
    }

    /// Fig. 7's enhanced comparison: values equal when their top bits
    /// (above bit 4) agree.
    pub const fn enhanced() -> Self {
        LfuConfig {
            same_value_shift: 4,
            ..Self::standard()
        }
    }
}

impl Default for LfuConfig {
    fn default() -> Self {
        Self::standard()
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    /// Canonical key (`value >> same_value_shift`).
    key: i64,
    /// First concrete value seen for this key (what gets reported).
    repr: i64,
    count: u64,
}

/// Observability counters of one [`Lfu`] instance (never affect the
/// profile itself).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LfuStats {
    /// Insertions that found their key already in the temp buffer.
    pub hits: u64,
    /// Insertions that displaced the least-frequently-used temp entry.
    pub evictions: u64,
    /// Temp-into-steady merges performed.
    pub merges: u64,
}

impl LfuStats {
    /// Saturating field-wise accumulation.
    pub fn absorb(&mut self, other: LfuStats) {
        self.hits = self.hits.saturating_add(other.hits);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.merges = self.merges.saturating_add(other.merges);
    }
}

/// One LFU value profiler instance (one per profiled load).
#[derive(Clone, Debug)]
pub struct Lfu {
    config: LfuConfig,
    temp: Vec<Entry>,
    steady: Vec<Entry>,
    since_merge: u64,
    total: u64,
    stats: LfuStats,
}

impl Lfu {
    /// Creates an empty profiler.
    pub fn new(config: LfuConfig) -> Self {
        Lfu {
            config,
            temp: Vec::with_capacity(config.temp_entries),
            steady: Vec::with_capacity(config.final_entries),
            since_merge: 0,
            total: 0,
            stats: LfuStats::default(),
        }
    }

    fn key_of(&self, value: i64) -> i64 {
        value >> self.config.same_value_shift
    }

    /// Inserts one value; returns the cycle cost of the operation.
    pub fn insert(&mut self, value: i64) -> u64 {
        let key = self.key_of(value);
        self.total = self.total.saturating_add(1);
        self.since_merge += 1;
        let mut cost = self.config.cost_base;

        let mut found = false;
        for (probes, e) in self.temp.iter_mut().enumerate() {
            if e.key == key {
                e.count = e.count.saturating_add(1);
                cost += (probes as u64 + 1) * self.config.cost_per_probe;
                self.stats.hits = self.stats.hits.saturating_add(1);
                found = true;
                break;
            }
        }
        if !found {
            cost += self.temp.len() as u64 * self.config.cost_per_probe;
            if self.temp.len() < self.config.temp_entries {
                self.temp.push(Entry {
                    key,
                    repr: value,
                    count: 1,
                });
            } else {
                // replace the least frequently used temp entry
                let (idx, _) = self
                    .temp
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.count)
                    .expect("temp buffer nonempty");
                self.temp[idx] = Entry {
                    key,
                    repr: value,
                    count: 1,
                };
                self.stats.evictions = self.stats.evictions.saturating_add(1);
            }
        }

        if self.since_merge >= self.config.merge_period {
            self.merge();
            cost += 2
                * (self.config.temp_entries + self.config.final_entries) as u64
                * self.config.cost_per_probe;
        }
        cost
    }

    /// Merges temp counts into the steady buffer and clears temp.
    fn merge(&mut self) {
        self.since_merge = 0;
        self.stats.merges = self.stats.merges.saturating_add(1);
        for t in self.temp.drain(..) {
            if let Some(s) = self.steady.iter_mut().find(|s| s.key == t.key) {
                s.count = s.count.saturating_add(t.count);
            } else {
                self.steady.push(t);
            }
        }
        self.steady.sort_by_key(|e| std::cmp::Reverse(e.count));
        self.steady.truncate(self.config.final_entries);
    }

    /// Top values and their frequencies, highest first. Forces a merge of
    /// pending temp counts.
    pub fn top_values(&mut self) -> Vec<(i64, u64)> {
        self.merge();
        self.steady.iter().map(|e| (e.repr, e.count)).collect()
    }

    /// Total values inserted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observability counters accumulated so far.
    pub fn stats(&self) -> LfuStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfu() -> Lfu {
        Lfu::new(LfuConfig::standard())
    }

    #[test]
    fn single_value_dominates() {
        let mut l = lfu();
        for _ in 0..100 {
            l.insert(64);
        }
        let top = l.top_values();
        assert_eq!(top[0], (64, 100));
        assert_eq!(l.total(), 100);
    }

    #[test]
    fn figure_4a_example() {
        // Stride sequence 2,2,2,2,2,100,100,100,100,1 -> top: 2 (5), 100 (4).
        let mut l = lfu();
        for s in [2, 2, 2, 2, 2, 100, 100, 100, 100, 1] {
            l.insert(s);
        }
        let top = l.top_values();
        assert_eq!(top[0], (2, 5));
        assert_eq!(top[1], (100, 4));
        assert_eq!(l.total(), 10);
    }

    #[test]
    fn eviction_keeps_frequent_values() {
        let mut l = Lfu::new(LfuConfig {
            temp_entries: 4,
            final_entries: 2,
            merge_period: 1000,
            ..LfuConfig::standard()
        });
        // Hot values interleaved with a stream of cold singletons.
        for i in 0..200 {
            l.insert(7);
            l.insert(13);
            l.insert(1000 + i); // never repeats
        }
        let top = l.top_values();
        assert_eq!(top.len(), 2);
        let values: Vec<i64> = top.iter().map(|&(v, _)| v).collect();
        assert!(values.contains(&7) && values.contains(&13));
        assert_eq!(top[0].1, 200);
    }

    #[test]
    fn merge_preserves_counts_across_periods() {
        let mut l = Lfu::new(LfuConfig {
            merge_period: 10,
            ..LfuConfig::standard()
        });
        for _ in 0..35 {
            l.insert(42);
        }
        assert_eq!(l.top_values()[0], (42, 35));
    }

    #[test]
    fn same_value_shift_coalesces_nearby_strides() {
        let mut l = Lfu::new(LfuConfig::enhanced());
        // 64 and 72 share key 4 (>>4); 128 does not.
        for _ in 0..10 {
            l.insert(64);
        }
        for _ in 0..5 {
            l.insert(72);
        }
        for _ in 0..3 {
            l.insert(128);
        }
        let top = l.top_values();
        assert_eq!(top[0], (64, 15)); // repr is the first value seen
        assert_eq!(top[1], (128, 3));
    }

    #[test]
    fn exact_comparison_keeps_nearby_strides_distinct() {
        let mut l = lfu();
        for _ in 0..10 {
            l.insert(64);
        }
        for _ in 0..5 {
            l.insert(72);
        }
        let top = l.top_values();
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn insertion_cost_grows_with_distinct_values() {
        let mut l = lfu();
        let c_first = l.insert(1);
        for v in 2..=16 {
            l.insert(v);
        }
        // Re-inserting value 16 probes deep into the temp buffer.
        let c_deep = l.insert(16);
        assert!(c_deep > c_first);
    }

    #[test]
    fn negative_strides_are_tracked() {
        let mut l = lfu();
        for _ in 0..8 {
            l.insert(-64);
        }
        assert_eq!(l.top_values()[0], (-64, 8));
    }

    #[test]
    fn top_values_empty_for_fresh_profiler() {
        let mut l = lfu();
        assert!(l.top_values().is_empty());
        assert_eq!(l.total(), 0);
    }
}
