//! Aggregations behind Figs. 17–19: the in-loop/out-loop reference mix and
//! the distribution of load references by stride property.

use crate::classify::{classify_profile, StrideClass};
use crate::config::PrefetchConfig;
use stride_ir::{FuncAnalysis, Module};
use stride_profiling::StrideProfile;
use stride_vm::RunResult;

/// Dynamic load-reference mix (Fig. 17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadMix {
    /// References from loads inside reducible loops.
    pub in_loop: u64,
    /// References from out-loop loads (including irreducible regions).
    pub out_loop: u64,
}

impl LoadMix {
    /// Fraction of references that are in-loop.
    pub fn in_loop_fraction(&self) -> f64 {
        let total = self.in_loop + self.out_loop;
        if total == 0 {
            0.0
        } else {
            self.in_loop as f64 / total as f64
        }
    }
}

/// Splits the dynamic load references of a run into in-loop and out-loop
/// (Fig. 17), using the static loop structure and per-site counts.
pub fn load_mix(module: &Module, run: &RunResult) -> LoadMix {
    let mut mix = LoadMix::default();
    for func in &module.functions {
        let analysis = FuncAnalysis::compute(func);
        for (site, block) in func.loads() {
            let count = run.load_count(func.id, site);
            if analysis.loops.loop_of(block).is_some() {
                mix.in_loop += count;
            } else {
                mix.out_loop += count;
            }
        }
    }
    mix
}

/// Distribution of load references by stride property (Figs. 18/19),
/// as fractions of the total load references of the population.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassDistribution {
    /// Fraction classified SSST.
    pub ssst: f64,
    /// Fraction classified PMST.
    pub pmst: f64,
    /// Fraction classified WSST.
    pub wsst: f64,
    /// Fraction with no stride pattern (or no profile).
    pub none: f64,
}

impl ClassDistribution {
    /// Sum of all four fractions (1.0 when the population is nonempty).
    pub fn total(&self) -> f64 {
        self.ssst + self.pmst + self.wsst + self.none
    }
}

/// Which load population a distribution describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadPopulation {
    /// Loads inside reducible loops (Fig. 19).
    InLoop,
    /// All other loads (Fig. 18).
    OutLoop,
}

/// Computes the Figs. 18/19 distribution: classify each profiled load by
/// its stride profile (thresholds only — no frequency or trip filters,
/// matching the figures, which describe the load population rather than
/// the prefetch decision) and weight by dynamic reference counts from
/// `run`. Loads without a profile fall into the `none` bucket.
pub fn class_distribution(
    module: &Module,
    stride: &StrideProfile,
    run: &RunResult,
    population: LoadPopulation,
    config: &PrefetchConfig,
) -> ClassDistribution {
    let mut counts = [0u64; 4]; // ssst, pmst, wsst, none
    let mut total = 0u64;
    for func in &module.functions {
        let analysis = FuncAnalysis::compute(func);
        for (site, block) in func.loads() {
            let in_loop = analysis.loops.loop_of(block).is_some();
            let wanted = match population {
                LoadPopulation::InLoop => in_loop,
                LoadPopulation::OutLoop => !in_loop,
            };
            if !wanted {
                continue;
            }
            let refs = run.load_count(func.id, site);
            if refs == 0 {
                continue;
            }
            total += refs;
            let class = stride
                .get(func.id, site)
                .and_then(|p| classify_profile(p, &config.thresholds));
            let bucket = match class {
                Some(StrideClass::Ssst) => 0,
                Some(StrideClass::Pmst) => 1,
                Some(StrideClass::Wsst) => 2,
                None => 3,
            };
            counts[bucket] += refs;
        }
    }
    if total == 0 {
        return ClassDistribution::default();
    }
    let t = total as f64;
    ClassDistribution {
        ssst: counts[0] as f64 / t,
        pmst: counts[1] as f64 / t,
        wsst: counts[2] as f64 / t,
        none: counts[3] as f64 / t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_profiling, run_uninstrumented, PipelineConfig, ProfilingVariant};
    use stride_ir::{ModuleBuilder, Operand};

    /// In-loop strided walk over a global array + one out-loop load.
    fn mixed_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 1 << 20);
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let sum = fb.mov(0i64);
        fb.counted_loop(fb.param(0), |fb, i| {
            let off = fb.mul(i, 64i64);
            let a = fb.add(base, off);
            let (v, _) = fb.load(a, 0);
            fb.bin_to(sum, stride_ir::BinOp::Add, sum, v);
        });
        let (last, _) = fb.load(base, 0); // out-loop
        let out = fb.add(sum, last);
        fb.ret(Some(Operand::Reg(out)));
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn load_mix_counts_dynamic_references() {
        let m = mixed_module();
        let cfg = PipelineConfig::default();
        let (run, _) = run_uninstrumented(&m, &[1000], &cfg).unwrap();
        let mix = load_mix(&m, &run);
        assert_eq!(mix.in_loop, 1000);
        assert_eq!(mix.out_loop, 1);
        assert!(mix.in_loop_fraction() > 0.99);
    }

    #[test]
    fn distribution_classifies_strided_walk_as_ssst() {
        let m = mixed_module();
        let cfg = PipelineConfig::default();
        let outcome = run_profiling(&m, &[5000], ProfilingVariant::NaiveAll, &cfg).unwrap();
        let (run, _) = run_uninstrumented(&m, &[5000], &cfg).unwrap();
        let d = class_distribution(
            &m,
            &outcome.stride,
            &run,
            LoadPopulation::InLoop,
            &PrefetchConfig::paper(),
        );
        assert!(d.ssst > 0.9, "in-loop walk should be SSST, got {d:?}");
        assert!((d.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_loop_singleton_is_none_bucket() {
        let m = mixed_module();
        let cfg = PipelineConfig::default();
        let outcome = run_profiling(&m, &[5000], ProfilingVariant::NaiveAll, &cfg).unwrap();
        let (run, _) = run_uninstrumented(&m, &[5000], &cfg).unwrap();
        let d = class_distribution(
            &m,
            &outcome.stride,
            &run,
            LoadPopulation::OutLoop,
            &PrefetchConfig::paper(),
        );
        // the single out-loop load executes once and has no stride pattern
        assert!((d.none - 1.0).abs() < 1e-9, "got {d:?}");
    }

    #[test]
    fn empty_population_is_all_zero() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let cfg = PipelineConfig::default();
        let (run, _) = run_uninstrumented(&m, &[], &cfg).unwrap();
        let d = class_distribution(
            &m,
            &StrideProfile::new(),
            &run,
            LoadPopulation::InLoop,
            &PrefetchConfig::paper(),
        );
        assert_eq!(d.total(), 0.0);
        let mix = load_mix(&m, &run);
        assert_eq!(mix.in_loop_fraction(), 0.0);
    }
}
