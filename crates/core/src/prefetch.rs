//! Prefetch insertion (§2.2–§2.3): rewrites a copy of the original module,
//! inserting `prefetch` instructions for every classified load.
//!
//! * **SSST in-loop**: `prefetch(P + K*S)` with a compile-time constant
//!   `K*S` folded into the prefetch offset.
//! * **PMST in-loop**: compute the stride in registers
//!   (`stride = P - prev; prev = P`) and prefetch `P + K*stride`, with `K`
//!   rounded down to a power of two so the multiply becomes a shift.
//! * **WSST in-loop** (disabled by default, as in the paper's evaluation):
//!   like PMST but the prefetch is predicated on
//!   `stride == profiled stride`.
//! * **out-loop**: only SSST, with the fixed distance
//!   [`PrefetchConfig::out_loop_distance`] — the register-based sequences
//!   would lose their state across function invocations (§2.3).

use crate::classify::{Classification, ClassifiedLoad, StrideClass};
use crate::config::PrefetchConfig;
use std::collections::HashMap;
use stride_ir::{
    ensure_preheader, insert_at_end, insert_before, BinOp, CmpOp, FuncAnalysis, FuncId, Module, Op,
    Operand,
};

/// What the prefetch pass did (the per-benchmark numbers behind
/// Figs. 18/19's "prefetched as" buckets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchReport {
    /// In-loop SSST representatives transformed.
    pub ssst_in_loop: usize,
    /// PMST representatives transformed.
    pub pmst: usize,
    /// WSST representatives transformed (0 unless enabled).
    pub wsst: usize,
    /// Out-loop SSST representatives transformed.
    pub ssst_out_loop: usize,
    /// Out-loop PMST/WSST loads skipped per §2.3.
    pub out_loop_skipped: usize,
    /// Total `prefetch` instructions inserted (≥ representatives, because
    /// of cover loads).
    pub prefetches_inserted: usize,
}

/// The in-loop prefetch distance `K = min(trip_count / TT, C)`, at least 1.
pub fn prefetch_distance(trip_count: f64, config: &PrefetchConfig) -> u64 {
    let k = (trip_count / config.thresholds.trip_count_threshold as f64) as u64;
    k.clamp(1, config.max_prefetch_distance)
}

/// Rounds `k` down to a power of two (PMST avoids the multiply by
/// shifting).
pub fn round_pow2(k: u64) -> u64 {
    if k == 0 {
        1
    } else {
        1 << (63 - k.leading_zeros())
    }
}

/// Applies prefetching for every load in `classification` to a copy of
/// `module`; returns the transformed module and a report.
pub fn apply_prefetching(
    module: &Module,
    classification: &Classification,
    config: &PrefetchConfig,
) -> (Module, PrefetchReport) {
    let mut out = module.clone();
    let mut report = PrefetchReport::default();

    // Group by function so analyses are computed once.
    let mut by_func: HashMap<FuncId, Vec<&ClassifiedLoad>> = HashMap::new();
    for load in &classification.loads {
        by_func.entry(load.func).or_default().push(load);
    }
    let mut funcs: Vec<FuncId> = by_func.keys().copied().collect();
    funcs.sort();

    for func_id in funcs {
        let analysis = FuncAnalysis::compute(module.function(func_id));
        let func = out.function_mut(func_id);
        for load in &by_func[&func_id] {
            match (load.loop_id, load.class) {
                (Some(_), StrideClass::Ssst) => {
                    let k = prefetch_distance(load.trip_count, config);
                    insert_ssst(func, load, k, config.line_size, &mut report);
                    report.ssst_in_loop += 1;
                }
                (Some(l), StrideClass::Pmst) => {
                    let k = round_pow2(prefetch_distance(load.trip_count, config));
                    insert_register_stride(func, &analysis, l, load, k, None, &mut report);
                    report.pmst += 1;
                }
                (Some(l), StrideClass::Wsst) => {
                    if !config.enable_wsst_prefetch {
                        continue;
                    }
                    let k = round_pow2(prefetch_distance(load.trip_count, config));
                    insert_register_stride(
                        func,
                        &analysis,
                        l,
                        load,
                        k,
                        Some(load.dominant_stride),
                        &mut report,
                    );
                    report.wsst += 1;
                }
                (None, StrideClass::Ssst) => {
                    insert_ssst(
                        func,
                        load,
                        config.out_loop_distance,
                        config.line_size,
                        &mut report,
                    );
                    report.ssst_out_loop += 1;
                }
                (None, _) => {
                    // §2.3: PMST/WSST out-loop loads are not prefetched.
                    report.out_loop_skipped += 1;
                }
            }
        }
    }
    (out, report)
}

/// SSST: one `prefetch(P + K*S)` per cover load, in front of the
/// representative (the cover loads share the representative's base
/// register, so their prefetch addresses differ only in the offset).
///
/// When the dominant stride exceeds the cache line and is not a multiple
/// of it, successive iterations demand more than one new line per
/// iteration; a single prefetch would leave `1 - 64/S` of the lines
/// uncovered. Per §2.2 ("enough loads will be prefetched to cover the
/// cache lines in that range"), extra line-spaced prefetches fill the
/// stride window. Line-multiple strides skip intermediate lines entirely,
/// so no extra prefetches are issued for them.
fn insert_ssst(
    func: &mut stride_ir::Function,
    load: &ClassifiedLoad,
    k: u64,
    line_size: u64,
    report: &mut PrefetchReport,
) {
    let Some((block, idx)) = func.find_instr(load.site) else {
        return; // stale profile entry: the load no longer exists
    };
    let Op::Load { addr, .. } = func.block(block).instrs[idx].op else {
        return;
    };
    let ahead = (k as i64).saturating_mul(load.dominant_stride);
    let mut ops = Vec::new();
    let mut repr_offset = 0i64;
    for &cover in &load.cover {
        let Some((cb, ci)) = func.find_instr(cover) else {
            continue;
        };
        let Op::Load { offset, .. } = func.block(cb).instrs[ci].op else {
            continue;
        };
        if cover == load.site {
            repr_offset = offset;
        }
        ops.push((
            None,
            Op::Prefetch {
                addr,
                offset: offset.saturating_add(ahead),
            },
        ));
        report.prefetches_inserted += 1;
    }
    // Stride-window coverage for |S| > line with a non-line-multiple S.
    // Capped: beyond a few lines per iteration the loop is bandwidth-bound
    // and blanket prefetching only pollutes, so huge strides get the
    // single target-line prefetch.
    let line = line_size as i64;
    let s = load.dominant_stride;
    if s.abs() > line && s.abs() % line != 0 && s.abs() / line <= 4 {
        let extra = s.abs() / line;
        let dir = s.signum();
        for j in 1..=extra {
            ops.push((
                None,
                Op::Prefetch {
                    addr,
                    offset: repr_offset
                        .saturating_add(ahead)
                        .saturating_add(dir * j * line),
                },
            ));
            report.prefetches_inserted += 1;
        }
    }
    insert_before(func, load.site, ops);
}

/// PMST / WSST: register-computed stride.
///
/// Before the representative load:
/// ```text
/// stride = P - prev          ; uses last iteration's address
/// prev   = P
/// tmp    = stride << log2(K)
/// a2     = P + tmp
/// [p = (stride == S)]        ; WSST only
/// [p?] prefetch [a2 + off]   ; one per cover load
/// ```
/// `prev` is zero-initialized in the loop preheader, so the first
/// iteration issues one wild (harmless, non-faulting) prefetch — the paper
/// accepts the same.
#[allow(clippy::too_many_arguments)]
fn insert_register_stride(
    func: &mut stride_ir::Function,
    analysis: &FuncAnalysis,
    loop_id: stride_ir::LoopId,
    load: &ClassifiedLoad,
    k: u64,
    conditional_on_stride: Option<i64>,
    report: &mut PrefetchReport,
) {
    let Some((block, idx)) = func.find_instr(load.site) else {
        return; // stale profile entry: the load no longer exists
    };
    let Op::Load { addr, .. } = func.block(block).instrs[idx].op else {
        return;
    };

    // Zero-init `prev` in the preheader.
    let l = analysis.loops.get(loop_id);
    let outside: Vec<_> = analysis
        .cfg
        .preds(l.header)
        .iter()
        .copied()
        .filter(|p| !l.contains(*p))
        .collect();
    let prev = func.new_reg();
    let pre = ensure_preheader(func, l.header, &outside);
    insert_at_end(
        func,
        pre,
        vec![(
            None,
            Op::Const {
                dst: prev,
                value: 0,
            },
        )],
    );

    let stride = func.new_reg();
    let tmp = func.new_reg();
    let a2 = func.new_reg();
    let shift = k.trailing_zeros() as i64;

    let mut ops = vec![
        (
            None,
            Op::Bin {
                dst: stride,
                op: BinOp::Sub,
                lhs: addr,
                rhs: Operand::Reg(prev),
            },
        ),
        (
            None,
            Op::Mov {
                dst: prev,
                src: addr,
            },
        ),
        (
            None,
            Op::Bin {
                dst: tmp,
                op: BinOp::Shl,
                lhs: Operand::Reg(stride),
                rhs: Operand::Imm(shift),
            },
        ),
        (
            None,
            Op::Bin {
                dst: a2,
                op: BinOp::Add,
                lhs: addr,
                rhs: Operand::Reg(tmp),
            },
        ),
    ];

    let pred = conditional_on_stride.map(|s| {
        let p = func.new_reg();
        ops.push((
            None,
            Op::Cmp {
                dst: p,
                op: CmpOp::Eq,
                lhs: Operand::Reg(stride),
                rhs: Operand::Imm(s),
            },
        ));
        p
    });

    for &cover in &load.cover {
        let Some((cb, ci)) = func.find_instr(cover) else {
            continue;
        };
        let Op::Load { offset, .. } = func.block(cb).instrs[ci].op else {
            continue;
        };
        ops.push((
            pred,
            Op::Prefetch {
                addr: Operand::Reg(a2),
                offset,
            },
        ));
        report.prefetches_inserted += 1;
    }
    insert_before(func, load.site, ops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{verify_module, InstrId, ModuleBuilder};
    use stride_profiling::{EdgeProfile, FreqSource, LoadStrideProfile, StrideProfile};

    fn mk_profile(top: Vec<(i64, u64)>, total: u64, zero_diff: u64) -> LoadStrideProfile {
        LoadStrideProfile {
            top,
            total_freq: total,
            num_zero_stride: 0,
            num_zero_diff: zero_diff,
            total_diffs: total,
        }
    }

    /// A chasing loop plus full synthetic profiles; returns
    /// (module, repr_site, classification ready to apply).
    fn classified_module(profile: LoadStrideProfile) -> (Module, InstrId, Classification) {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        let mut site = None;
        fb.while_nonzero(p, |fb, p| {
            site = Some(fb.load_to(p, p, 0));
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let site = site.unwrap();

        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let l = analysis.loops.loops()[0].id;
        let cfg = &analysis.cfg;
        let mut freq = EdgeProfile::for_module(&m);
        let (a, b) = analysis.loops.entry_edges(l, cfg)[0];
        freq.increment(f, cfg.edge_id(a, b).unwrap());
        let outs = analysis.loops.header_out_edges(l, cfg);
        let body_edge = cfg.edge_id(outs[0].0, outs[0].1).unwrap();
        for _ in 0..100_000 {
            freq.increment(f, body_edge);
        }
        let mut stride = StrideProfile::new();
        stride.insert(f, site, profile);
        let c = crate::classify::classify(
            &m,
            &stride,
            &freq,
            FreqSource::Edges,
            &PrefetchConfig::paper(),
        );
        (m, site, c)
    }

    #[test]
    fn distance_heuristic() {
        let cfg = PrefetchConfig::paper();
        assert_eq!(prefetch_distance(100.0, &cfg), 1); // below TT: clamp to 1
        assert_eq!(prefetch_distance(300.0, &cfg), 2);
        assert_eq!(prefetch_distance(100_000.0, &cfg), 8); // clamp to C
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(round_pow2(1), 1);
        assert_eq!(round_pow2(2), 2);
        assert_eq!(round_pow2(3), 2);
        assert_eq!(round_pow2(7), 4);
        assert_eq!(round_pow2(8), 8);
        assert_eq!(round_pow2(0), 1);
    }

    #[test]
    fn ssst_inserts_constant_offset_prefetch() {
        let (m, site, c) = classified_module(mk_profile(vec![(48, 9500)], 10_000, 9000));
        assert_eq!(c.loads[0].class, StrideClass::Ssst);
        let (out, report) = apply_prefetching(&m, &c, &PrefetchConfig::paper());
        verify_module(&out).expect("verifies");
        assert_eq!(report.ssst_in_loop, 1);
        assert_eq!(report.prefetches_inserted, 1);
        // the prefetch sits right before the load, with offset K*S
        let f = &out.functions[0];
        let (block, idx) = f.find_instr(site).unwrap();
        let before = &f.block(block).instrs[idx - 1];
        let Op::Prefetch { offset, .. } = before.op else {
            panic!("expected prefetch, got {:?}", before.op);
        };
        // trip count ~100_000 -> K = 8; 8 * 48 = 384
        assert_eq!(offset, 384);
    }

    #[test]
    fn pmst_inserts_register_stride_sequence() {
        let (m, site, c) = classified_module(mk_profile(
            vec![(16, 3000), (24, 2900), (32, 2500)],
            10_000,
            6000,
        ));
        assert_eq!(c.loads[0].class, StrideClass::Pmst);
        let (out, report) = apply_prefetching(&m, &c, &PrefetchConfig::paper());
        verify_module(&out).expect("verifies");
        assert_eq!(report.pmst, 1);
        let f = &out.functions[0];
        let (block, idx) = f.find_instr(site).unwrap();
        let instrs = &f.block(block).instrs;
        // sub, mov, shl, add, prefetch precede the load
        assert!(matches!(instrs[idx - 1].op, Op::Prefetch { .. }));
        assert!(matches!(instrs[idx - 5].op, Op::Bin { op: BinOp::Sub, .. }));
        // prev is initialized in a preheader
        let has_init = out.functions[0].instrs().any(|(_, i)| {
            matches!(i.op, Op::Const { value: 0, .. })
                && i.id.index() >= m.functions[0].next_instr as usize
        });
        assert!(has_init, "preheader init missing");
    }

    #[test]
    fn wsst_disabled_by_default() {
        let (m, _, c) = classified_module(mk_profile(vec![(32, 3000)], 10_000, 1500));
        assert_eq!(c.loads[0].class, StrideClass::Wsst);
        let (out, report) = apply_prefetching(&m, &c, &PrefetchConfig::paper());
        assert_eq!(report.wsst, 0);
        assert_eq!(report.prefetches_inserted, 0);
        assert_eq!(out.instr_count(), m.instr_count());
    }

    #[test]
    fn wsst_enabled_inserts_conditional_prefetch() {
        let (m, site, c) = classified_module(mk_profile(vec![(32, 3000)], 10_000, 1500));
        let cfg = PrefetchConfig {
            enable_wsst_prefetch: true,
            ..PrefetchConfig::paper()
        };
        let (out, report) = apply_prefetching(&m, &c, &cfg);
        verify_module(&out).expect("verifies");
        assert_eq!(report.wsst, 1);
        let f = &out.functions[0];
        let (block, idx) = f.find_instr(site).unwrap();
        let prefetch = &f.block(block).instrs[idx - 1];
        assert!(matches!(prefetch.op, Op::Prefetch { .. }));
        assert!(prefetch.pred.is_some(), "WSST prefetch must be predicated");
        // predicate computed by a stride == S compare
        let cmp = &f.block(block).instrs[idx - 2];
        assert!(
            matches!(
                cmp.op,
                Op::Cmp {
                    op: CmpOp::Eq,
                    rhs: Operand::Imm(32),
                    ..
                }
            ),
            "got {:?}",
            cmp.op
        );
    }

    #[test]
    fn out_loop_ssst_uses_fixed_distance() {
        // out-loop load with an SSST profile (call-site stride patterns)
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("t", 1 << 20);
        let callee = mb.declare_function("hot", 1);
        {
            let mut fb = mb.function(callee);
            let (v, _site) = fb.load(fb.param(0), 0);
            fb.ret(Some(Operand::Reg(v)));
        }
        let f = mb.declare_function("main", 0);
        {
            let mut fb = mb.function(f);
            let base = fb.global_addr(g);
            fb.counted_loop(10_000i64, |fb, i| {
                let off = fb.mul(i, 64i64);
                let a = fb.add(base, off);
                fb.call_void(callee, &[Operand::Reg(a)]);
            });
            fb.ret(None);
        }
        mb.set_entry(f);
        let m = mb.finish();
        let site = m.function(callee).loads()[0].0;

        let mut freq = EdgeProfile::for_module(&m);
        // callee entered 10_000 times: bump its virtual entry counter
        let ccfg = stride_ir::Cfg::compute(m.function(callee));
        let entry_edge = EdgeProfile::entry_edge(&ccfg);
        for _ in 0..10_000 {
            freq.increment(callee, entry_edge);
        }
        let mut stride = StrideProfile::new();
        stride.insert(callee, site, mk_profile(vec![(64, 9500)], 10_000, 9400));
        let cfg = PrefetchConfig::paper();
        let c = crate::classify::classify(&m, &stride, &freq, FreqSource::Edges, &cfg);
        assert_eq!(c.loads.len(), 1);
        assert!(c.loads[0].loop_id.is_none());

        let (out, report) = apply_prefetching(&m, &c, &cfg);
        verify_module(&out).expect("verifies");
        assert_eq!(report.ssst_out_loop, 1);
        let fc = &out.functions[callee.index()];
        let (block, idx) = fc.find_instr(site).unwrap();
        let Op::Prefetch { offset, .. } = fc.block(block).instrs[idx - 1].op else {
            panic!("missing prefetch");
        };
        assert_eq!(offset, 4 * 64); // out_loop_distance * stride
    }

    #[test]
    fn out_loop_pmst_is_skipped() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let (_, site) = fb.load(fb.param(0), 0);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let mut freq = EdgeProfile::for_module(&m);
        let cfg0 = stride_ir::Cfg::compute(m.function(f));
        for _ in 0..10_000 {
            freq.increment(f, EdgeProfile::entry_edge(&cfg0));
        }
        let mut stride = StrideProfile::new();
        stride.insert(
            f,
            site,
            mk_profile(vec![(16, 3000), (24, 2900), (32, 2500)], 10_000, 6000),
        );
        let cfg = PrefetchConfig::paper();
        let c = crate::classify::classify(&m, &stride, &freq, FreqSource::Edges, &cfg);
        assert_eq!(c.loads.len(), 1);
        let (out, report) = apply_prefetching(&m, &c, &cfg);
        assert_eq!(report.out_loop_skipped, 1);
        assert_eq!(report.prefetches_inserted, 0);
        assert_eq!(out.instr_count(), m.instr_count());
    }
}
