// Library code must degrade gracefully instead of panicking; unwrap and
// expect are allowed only under cfg(test).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! The paper's contribution: integrated stride + frequency profiling and
//! stride-profile-guided compiler prefetching (Wu, PLDI 2002).
//!
//! The crate stitches the substrates together into the paper's two
//! compiler passes:
//!
//! 1. **Instrumentation** ([`instrument()`]): insert edge/block frequency
//!    counters, trip-count-guard predicates (edge-check / block-check,
//!    Figs. 11–14) and `strideProf` calls into a copy of the module.
//! 2. **Feedback** ([`classify()`] + [`apply_prefetching`]): read the
//!    profiles back, filter by frequency and trip count, classify loads as
//!    SSST / PMST / WSST (Fig. 5) and insert the matching prefetch
//!    sequences (§2.2–2.3).
//!
//! [`pipeline`] wires both passes around the VM and cache simulator to
//! reproduce the paper's speedup (Fig. 16), overhead (Figs. 20–22) and
//! input-sensitivity (Figs. 23–25) experiments.
//!
//! # Example
//!
//! ```
//! use stride_core::{measure_speedup, PipelineConfig, ProfilingVariant};
//! use stride_ir::{ModuleBuilder, Operand};
//!
//! // Repeated strided sweeps over a large array. (The sweep loop is
//! // entered several times: edge-check's trip-count guard only activates
//! // strideProf once the counters show a hot loop, so a loop nest
//! // executed exactly once is never stride-profiled — §3.2.)
//! let mut mb = ModuleBuilder::new();
//! let g = mb.add_global("arr", 1 << 22);
//! let f = mb.declare_function("main", 1);
//! let mut fb = mb.function(f);
//! let base = fb.global_addr(g);
//! let sum = fb.mov(0i64);
//! fb.counted_loop(fb.param(0), |fb, _pass| {
//!     fb.counted_loop(20_000i64, |fb, i| {
//!         let off = fb.mul(i, 128i64);
//!         let a = fb.add(base, off);
//!         let (v, _) = fb.load(a, 0);
//!         fb.bin_to(sum, stride_ir::BinOp::Add, sum, v);
//!     });
//! });
//! fb.ret(Some(Operand::Reg(sum)));
//! mb.set_entry(f);
//! let module = mb.finish();
//!
//! let config = PipelineConfig::default();
//! let out = measure_speedup(&module, &[3], &[4],
//!                           ProfilingVariant::EdgeCheck, &config)?;
//! assert!(out.speedup > 1.0);
//! # Ok::<(), stride_core::PipelineError>(())
//! ```

pub mod classify;
pub mod config;
pub mod dependent;
pub mod error;
pub mod exec;
pub mod faults;
pub mod instrument;
pub mod obs;
pub mod pipeline;
pub mod prefetch;
pub mod report;
pub mod runcache;
pub mod select;

pub use classify::{classify, classify_profile, Classification, ClassifiedLoad, StrideClass};
pub use config::{ClassifyThresholds, PrefetchConfig};
pub use dependent::apply_dependent_prefetching;
pub use error::PipelineError;
pub use exec::{default_jobs, parallel_map, parallel_map_isolated, parse_jobs, TaskFailure};
pub use faults::{
    corrupt_ir_text, degradation_violations, measure_speedup_faulted, FaultInjector, FaultKind,
    FaultPlan, FaultRng, FaultScenario,
};
pub use instrument::{
    instrument, instrument_edges_only, instrument_two_pass, profiling_instr_count, select_two_pass,
    InstrumentedModule,
};
pub use obs::{Counter, Gauge, Histogram, Registry, TraceEvent, Tracer};
pub use pipeline::{
    measure_overhead, measure_speedup, observe_hierarchy, observe_overhead, observe_profile,
    observe_speedup, prefetch_with_profiles, run_edge_only, run_profiling, run_uninstrumented,
    OverheadOutcome, PipelineConfig, ProfileOutcome, ProfilingVariant, SpeedupOutcome,
};
pub use prefetch::{apply_prefetching, prefetch_distance, round_pow2, PrefetchReport};
pub use report::{class_distribution, load_mix, ClassDistribution, LoadMix, LoadPopulation};
pub use runcache::{fingerprint_module, RunCache, RunCacheStats};
pub use select::{select_profiled_loads, ProfiledLoad, ProfilingMethod, Selection};
