//! Dependent-load prefetching — the paper's second future-work direction
//! (§6): "there are cases where a load itself does not have stride
//! patterns, but its address depends on another load with stride
//! patterns. We may extend our method to prefetch loads that depend on
//! the results of the prefetching instructions."
//!
//! The implemented form is the classic dependence-based one-iteration-
//! ahead scheme: in a pointer-chasing loop
//!
//! ```text
//! loop:
//!     v = load [p + 8]     ; irregular when the chain hops
//!     p = load [p + 0]     ; the chasing load (often SSST itself)
//!     ...
//! ```
//!
//! once `p = load [p + 0]` has produced next iteration's pointer, next
//! iteration's `[p + 8]` address is *known exactly* — no stride assumption
//! needed. We insert `prefetch [p + 8]` immediately after the chasing
//! load. The prefetch is non-faulting, so the nil pointer at the end of
//! the chain is harmless.
//!
//! Disabled by default ([`PrefetchConfig::enable_dependent_prefetch`]);
//! the paper left it as future work.

use crate::classify::Classification;
use crate::config::PrefetchConfig;
use std::collections::HashSet;
use stride_ir::{FuncAnalysis, InstrId, Module, Op, Operand, Reg};

/// Applies dependence-based prefetching to a copy of `module`: for every
/// in-loop *chasing* load (`r = load [r + c]`), insert prefetches of the
/// distinct cache lines that other same-loop loads address through `r`.
///
/// Loads already covered by the stride transformation (members of
/// `classification`'s cover sets) are skipped, so the two schemes compose.
/// Returns the transformed module and the number of prefetches inserted.
pub fn apply_dependent_prefetching(
    module: &Module,
    classification: &Classification,
    config: &PrefetchConfig,
) -> (Module, usize) {
    let mut out = module.clone();
    let mut inserted = 0usize;

    // Loads the stride transformation already prefetches.
    let covered: HashSet<(stride_ir::FuncId, InstrId)> = classification
        .loads
        .iter()
        .flat_map(|l| l.cover.iter().map(move |&c| (l.func, c)))
        .collect();

    for func in &module.functions {
        let analysis = FuncAnalysis::compute(func);

        // Collect (chasing load, dependent offsets) plans first; mutate after.
        let mut plans: Vec<(InstrId, Reg, Vec<i64>)> = Vec::new();
        for block in &func.blocks {
            let Some(loop_id) = analysis.loops.loop_of(block.id) else {
                continue;
            };
            for instr in &block.instrs {
                let Op::Load { dst, addr, .. } = instr.op else {
                    continue;
                };
                if addr != Operand::Reg(dst) {
                    continue; // not a chasing load (r = load [r + c])
                }
                // Dependent loads: same loop, base register == dst
                // (including the chasing load itself — prefetching
                // `[p_next + 0]` walks the chain one node ahead), skipping
                // loads already stride-prefetched.
                let mut offsets: Vec<i64> = Vec::new();
                for dep_block in &analysis.loops.get(loop_id).blocks {
                    for dep in &func.block(*dep_block).instrs {
                        let Op::Load {
                            addr: dep_addr,
                            offset,
                            ..
                        } = dep.op
                        else {
                            continue;
                        };
                        if dep_addr != Operand::Reg(dst) {
                            continue;
                        }
                        if covered.contains(&(func.id, dep.id)) {
                            continue;
                        }
                        let line = offset.div_euclid(config.line_size as i64);
                        if !offsets
                            .iter()
                            .any(|o| o.div_euclid(config.line_size as i64) == line)
                        {
                            offsets.push(offset);
                        }
                    }
                }
                if !offsets.is_empty() {
                    plans.push((instr.id, dst, offsets));
                }
            }
        }

        if plans.is_empty() {
            continue;
        }
        let out_func = out.function_mut(func.id);
        for (site, reg, offsets) in plans {
            // Insert after the chasing load: find it and splice behind it.
            let Some((block, idx)) = out_func.find_instr(site) else {
                continue; // site vanished between analysis and insertion
            };
            let ops: Vec<(Option<Reg>, Op)> = offsets
                .iter()
                .map(|&offset| {
                    (
                        None,
                        Op::Prefetch {
                            addr: Operand::Reg(reg),
                            offset,
                        },
                    )
                })
                .collect();
            inserted += ops.len();
            let new: Vec<stride_ir::Instr> = ops
                .into_iter()
                .map(|(pred, op)| {
                    let id = out_func.new_instr_id();
                    stride_ir::Instr { id, pred, op }
                })
                .collect();
            out_func
                .block_mut(block)
                .instrs
                .splice(idx + 1..idx + 1, new);
        }
    }
    (out, inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{verify_module, ModuleBuilder};

    /// A chasing loop with one dependent payload load.
    fn chase_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        fb.while_nonzero(p, |fb, p| {
            let (_, _payload) = fb.load(p, 8);
            fb.load_to(p, p, 0); // chasing load
        });
        fb.ret(None);
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn inserts_prefetch_after_chasing_load() {
        let m = chase_module();
        let (out, n) =
            apply_dependent_prefetching(&m, &Classification::default(), &PrefetchConfig::paper());
        verify_module(&out).expect("verifies");
        // both the payload (offset 8) and the chase target (offset 0) sit
        // on line 0 relative to p, so one prefetch covers them
        assert_eq!(n, 1);
        let f = &out.functions[0];
        let mut found = false;
        for block in &f.blocks {
            for (i, instr) in block.instrs.iter().enumerate() {
                if let Op::Load { dst, addr, .. } = instr.op {
                    if addr == Operand::Reg(dst) {
                        let next = &block.instrs[i + 1];
                        assert!(
                            matches!(next.op, Op::Prefetch { .. }),
                            "prefetch must follow the chasing load"
                        );
                        found = true;
                    }
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn covered_loads_are_skipped() {
        let m = chase_module();
        // Mark the payload load as already covered by stride prefetching.
        let payload = m.functions[0]
            .loads()
            .iter()
            .map(|&(id, _)| id)
            .min()
            .unwrap();
        let classification = Classification {
            loads: vec![crate::classify::ClassifiedLoad {
                func: m.entry,
                site: payload,
                block: stride_ir::BlockId::new(2),
                loop_id: None,
                class: crate::classify::StrideClass::Ssst,
                dominant_stride: 48,
                trip_count: 1000.0,
                freq: 10_000,
                cover: vec![payload],
            }],
            ..Classification::default()
        };
        let (_, n) = apply_dependent_prefetching(&m, &classification, &PrefetchConfig::paper());
        // only the chasing load's own line remains as a dependent target
        assert_eq!(n, 1);
    }

    #[test]
    fn no_chasing_load_means_no_change() {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("a", 4096);
        let f = mb.declare_function("main", 0);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        fb.counted_loop(16i64, |fb, i| {
            let off = fb.mul(i, 8i64);
            let a = fb.add(base, off);
            let _ = fb.load(a, 0);
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let (out, n) =
            apply_dependent_prefetching(&m, &Classification::default(), &PrefetchConfig::paper());
        assert_eq!(n, 0);
        assert_eq!(out.instr_count(), m.instr_count());
    }

    #[test]
    fn semantics_preserved_and_helps_an_irregular_chain() {
        use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};
        // Build an irregular chain (no stride pattern) and check the
        // dependent prefetch keeps semantics; timing benefit is exercised
        // in the ablation binary.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 2);
        let mut fb = mb.function(f);
        // build a chain with pseudo-random hops
        let lcg_state = fb.mov(fb.param(1));
        let head = fb.alloc(64i64);
        let prev = fb.mov(head);
        fb.counted_loop(fb.param(0), |fb, i| {
            fb.bin_to(
                lcg_state,
                stride_ir::BinOp::Mul,
                lcg_state,
                6364136223846793005i64,
            );
            fb.bin_to(
                lcg_state,
                stride_ir::BinOp::Add,
                lcg_state,
                1442695040888963407i64,
            );
            let sz = fb.bin(stride_ir::BinOp::Lshr, lcg_state, 58i64);
            let sz16 = fb.mul(sz, 16i64);
            let sz2 = fb.add(sz16, 32i64);
            let node = fb.alloc(sz2);
            fb.store(i, node, 8);
            fb.store(node, prev, 0);
            fb.store(0i64, node, 0);
            fb.mov_to(prev, node);
        });
        let sum = fb.mov(0i64);
        let p = fb.mov(head);
        fb.while_nonzero(p, |fb, p| {
            let (v, _) = fb.load(p, 8);
            fb.bin_to(sum, stride_ir::BinOp::Add, sum, v);
            fb.load_to(p, p, 0);
        });
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        let m = mb.finish();

        let (out, n) =
            apply_dependent_prefetching(&m, &Classification::default(), &PrefetchConfig::paper());
        assert!(n >= 1);
        verify_module(&out).expect("verifies");
        let run = |m: &Module| {
            let mut vm = Vm::new(m, VmConfig::default());
            vm.run(&[500, 99], &mut FlatTiming, &mut NullRuntime)
                .unwrap()
                .return_value
        };
        assert_eq!(run(&m), run(&out));
    }
}
