//! Unified failure taxonomy for the profile-guided pipeline.
//!
//! Every fallible stage — parsing IR text, running the VM, reading
//! profiles back — reports through [`PipelineError`] so callers (the
//! repro harness, the ablation driver, the fault simulator) can degrade
//! gracefully: log the failing stage with full context and keep
//! producing results for the stages and workloads that still work.
//!
//! The type is `Clone` so memoized pipeline runs (see the bench crate's
//! run cache) can hand the same failure to every waiter.

use std::fmt;

use stride_ir::ParseError;
use stride_vm::VmError;

/// Why a pipeline stage failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The VM aborted while executing a module (fuel exhaustion, wild
    /// demand access, unknown function, ...).
    Vm(VmError),
    /// IR text failed to parse.
    Parse(ParseError),
    /// A module or profile was structurally unusable and could not be
    /// degraded around (e.g. an entry function that does not exist).
    Malformed(String),
    /// A fault-injection plan string could not be parsed.
    BadFaultPlan(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Vm(e) => write!(f, "vm: {e}"),
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Malformed(what) => write!(f, "malformed input: {what}"),
            PipelineError::BadFaultPlan(what) => write!(f, "bad fault plan: {what}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<VmError> for PipelineError {
    fn from(e: VmError) -> Self {
        PipelineError::Vm(e)
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl PipelineError {
    /// One-line diagnostic suitable for a campaign report. Stable across
    /// runs and job counts: contains no addresses, times or paths.
    pub fn diagnostic(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_vm_and_parse_errors() {
        let e: PipelineError = VmError::OutOfFuel { executed: 10 }.into();
        assert_eq!(e, PipelineError::Vm(VmError::OutOfFuel { executed: 10 }));
        assert!(e.to_string().contains("budget exhausted"));

        let p = stride_ir::module_from_string("fn @main(").unwrap_err();
        let e: PipelineError = p.into();
        assert!(matches!(e, PipelineError::Parse(_)));
        assert!(e.to_string().starts_with("parse: "));
    }

    #[test]
    fn is_cloneable_for_memoized_slots() {
        let e = PipelineError::Malformed("no entry function".into());
        let c = e.clone();
        assert_eq!(e, c);
        assert_eq!(c.diagnostic(), "malformed input: no entry function");
    }
}
