//! Thresholds and knobs of the classification and prefetching algorithms
//! (§2.2 of the paper, Fig. 5).

/// The Fig. 5 classification thresholds — the **single source of truth**
/// for every constant the filter/classify pass compares against.
///
/// Both the production classifier (`classify` / `classify_profile`) and
/// the genwork ground-truth oracle evaluate exactly these fields, so a
/// threshold tweak cannot silently drift between the two. All thresholds
/// are documented minima: a ratio exactly at a threshold qualifies
/// (inclusive comparison).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassifyThresholds {
    /// `SSST_threshold`: minimum `top1/total` ratio for a strong
    /// single-stride load (paper: 0.7).
    pub ssst_threshold: f64,
    /// `PMST_threshold`: minimum `top4/total` ratio for a phased
    /// multi-stride load (paper's example: 0.6).
    pub pmst_threshold: f64,
    /// `PMST_diff_threshold`: minimum `zero_diffs/total` ratio for PMST
    /// (paper's example: 0.4).
    pub pmst_diff_threshold: f64,
    /// `WSST_threshold`: minimum `top1/total` ratio for a weak
    /// single-stride load (paper's example: 0.25).
    pub wsst_threshold: f64,
    /// `WSST_diff_threshold`: minimum `zero_diffs/total` ratio for WSST
    /// (paper's example: 0.1).
    pub wsst_diff_threshold: f64,
    /// `FT`: minimum dynamic frequency of a load to be considered
    /// (paper: 2000).
    pub frequency_threshold: u64,
    /// `TT`: minimum loop trip count (paper: 128). Also the divisor of the
    /// prefetch-distance heuristic `K = min(trip_count/TT, C)`.
    pub trip_count_threshold: u64,
}

impl ClassifyThresholds {
    /// The paper's thresholds (§2.2 / Fig. 5).
    pub const fn paper() -> Self {
        ClassifyThresholds {
            ssst_threshold: 0.70,
            pmst_threshold: 0.60,
            pmst_diff_threshold: 0.40,
            wsst_threshold: 0.25,
            wsst_diff_threshold: 0.10,
            frequency_threshold: 2000,
            trip_count_threshold: 128,
        }
    }

    /// `W = floor(log2(TT))`, the shift used by the trip-count check to
    /// avoid a division (§3.2).
    pub fn trip_shift(&self) -> u32 {
        63 - self.trip_count_threshold.max(1).leading_zeros()
    }
}

impl Default for ClassifyThresholds {
    fn default() -> Self {
        Self::paper()
    }
}

/// All tunables of the feedback pass. Defaults follow the paper.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// The Fig. 5 filter/classify thresholds.
    pub thresholds: ClassifyThresholds,
    /// `C`: maximum prefetch distance in strides (paper: 8).
    pub max_prefetch_distance: u64,
    /// Fixed prefetch distance for out-loop SSST loads (paper: 4).
    pub out_loop_distance: u64,
    /// Cache line size for cover-load computation.
    pub line_size: u64,
    /// Enable WSST prefetching. The paper implements it but disables it in
    /// the evaluation ("prefetching for weak single strided load is not
    /// enabled for this paper"); we default to the paper's setting.
    pub enable_wsst_prefetch: bool,
    /// Enable dependence-based prefetching of loads whose address comes
    /// from another load (§6 future work #2). Off by default; the paper
    /// left it unevaluated.
    pub enable_dependent_prefetch: bool,
}

impl PrefetchConfig {
    /// The paper's configuration.
    pub const fn paper() -> Self {
        PrefetchConfig {
            thresholds: ClassifyThresholds::paper(),
            max_prefetch_distance: 8,
            out_loop_distance: 4,
            line_size: 64,
            enable_wsst_prefetch: false,
            enable_dependent_prefetch: false,
        }
    }

    /// `W = floor(log2(TT))` — see [`ClassifyThresholds::trip_shift`].
    pub fn trip_shift(&self) -> u32 {
        self.thresholds.trip_shift()
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = PrefetchConfig::paper();
        assert_eq!(c.thresholds.ssst_threshold, 0.70);
        assert_eq!(c.thresholds.frequency_threshold, 2000);
        assert_eq!(c.thresholds.trip_count_threshold, 128);
        assert_eq!(c.max_prefetch_distance, 8);
        assert_eq!(c.out_loop_distance, 4);
        assert!(!c.enable_wsst_prefetch);
        assert_eq!(c.thresholds, ClassifyThresholds::paper());
    }

    #[test]
    fn trip_shift_is_log2() {
        let t = ClassifyThresholds {
            trip_count_threshold: 128,
            ..ClassifyThresholds::paper()
        };
        assert_eq!(t.trip_shift(), 7);
        let t = ClassifyThresholds {
            trip_count_threshold: 100,
            ..ClassifyThresholds::paper()
        };
        assert_eq!(t.trip_shift(), 6); // floor(log2(100))
        let t = ClassifyThresholds {
            trip_count_threshold: 1,
            ..ClassifyThresholds::paper()
        };
        assert_eq!(t.trip_shift(), 0);
        // PrefetchConfig delegates.
        assert_eq!(PrefetchConfig::paper().trip_shift(), 7);
    }
}
