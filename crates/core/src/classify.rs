//! Profile-feedback classification of profiled loads (Fig. 5): filter by
//! frequency and trip count, then sort into SSST / PMST / WSST, and expand
//! each surviving representative into the *cover loads* that must be
//! prefetched to span the cache lines its equivalence class touches.

use crate::config::{ClassifyThresholds, PrefetchConfig};
use std::collections::HashMap;
use stride_ir::{
    equivalent_load_classes, BlockId, EquivClass, FuncAnalysis, FuncId, InstrId, LoopId, Module,
};
use stride_profiling::{EdgeProfile, FreqSource, LoadStrideProfile, StrideProfile};

/// The stride classes of §2.2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StrideClass {
    /// Strong single stride: one dominant non-zero stride.
    Ssst,
    /// Phased multi-stride: several strides, phase-wise constant.
    Pmst,
    /// Weak single stride: one stride, occasionally.
    Wsst,
}

impl std::fmt::Display for StrideClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StrideClass::Ssst => "SSST",
            StrideClass::Pmst => "PMST",
            StrideClass::Wsst => "WSST",
        };
        f.write_str(s)
    }
}

/// Classifies a single load's stride profile against the thresholds,
/// ignoring the frequency/trip-count filters (used both by Fig. 5 and by
/// the Figs. 18/19 distribution reports).
pub fn classify_profile(p: &LoadStrideProfile, t: &ClassifyThresholds) -> Option<StrideClass> {
    // Degenerate profiles never classify: nothing recorded, an empty
    // top-N table (e.g. fault-truncated), or a table whose entries all
    // carry zero frequency. Each would otherwise divide by or compare
    // against vacuous quantities.
    if p.total_freq == 0 || p.top.is_empty() || p.top.iter().all(|&(_, f)| f == 0) {
        return None;
    }
    // The Fig. 5 thresholds are documented as minima, so a ratio exactly
    // at a threshold qualifies (inclusive comparison).
    if p.top1_ratio() >= t.ssst_threshold {
        Some(StrideClass::Ssst)
    } else if p.top4_ratio() >= t.pmst_threshold && p.zero_diff_ratio() >= t.pmst_diff_threshold {
        Some(StrideClass::Pmst)
    } else if p.top1_ratio() >= t.wsst_threshold && p.zero_diff_ratio() >= t.wsst_diff_threshold {
        Some(StrideClass::Wsst)
    } else {
        None
    }
}

/// A load that survived Fig. 5 and will be prefetched.
#[derive(Clone, Debug)]
pub struct ClassifiedLoad {
    /// Containing function.
    pub func: FuncId,
    /// The profiled representative.
    pub site: InstrId,
    /// The representative's block.
    pub block: BlockId,
    /// Innermost reducible loop (`None` = out-loop).
    pub loop_id: Option<LoopId>,
    /// The assigned class.
    pub class: StrideClass,
    /// The dominant (top-1) stride in bytes.
    pub dominant_stride: i64,
    /// Profiled trip count of the containing loop (0 for out-loop).
    pub trip_count: f64,
    /// Block frequency of the load.
    pub freq: u64,
    /// The cover loads: one member per distinct cache line the
    /// equivalence class touches (always includes the representative).
    pub cover: Vec<InstrId>,
}

/// Outcome of the Fig. 5 feedback pass.
#[derive(Clone, Debug, Default)]
pub struct Classification {
    /// Loads to prefetch, in deterministic order.
    pub loads: Vec<ClassifiedLoad>,
    /// Profiled loads dropped by the frequency filter (`freq <= FT`).
    pub filtered_low_freq: usize,
    /// In-loop profiled loads dropped by the trip-count filter
    /// (`TC <= TT`).
    pub filtered_low_trip: usize,
    /// Profiled loads with no qualifying stride pattern.
    pub no_pattern: usize,
}

impl Classification {
    /// Loads of one class.
    pub fn of_class(&self, class: StrideClass) -> impl Iterator<Item = &ClassifiedLoad> {
        self.loads.iter().filter(move |l| l.class == class)
    }
}

/// Selects the cover loads of `class`: the first member on each distinct
/// cache line of the class's offset range (§2.2: "enough loads will be
/// prefetched to cover the cache lines in that range").
fn cover_loads(class: &EquivClass, line_size: u64) -> Vec<InstrId> {
    let mut seen_lines: Vec<i64> = Vec::new();
    let mut cover = Vec::new();
    for &(site, _, offset) in &class.members {
        let line = offset.div_euclid(line_size as i64);
        if !seen_lines.contains(&line) {
            seen_lines.push(line);
            cover.push(site);
        }
    }
    cover
}

/// Runs the Fig. 5 feedback pass over every profiled load.
///
/// `source` names the counter space the frequency quantities come from
/// (edge counters for edge-check/naïve methods, block counters for
/// block-check).
pub fn classify(
    module: &Module,
    stride: &StrideProfile,
    freq: &EdgeProfile,
    source: FreqSource,
    config: &PrefetchConfig,
) -> Classification {
    let mut out = Classification::default();

    // Per-function caches.
    let mut analyses: HashMap<FuncId, FuncAnalysis> = HashMap::new();
    let mut classes_by_func: HashMap<FuncId, Vec<EquivClass>> = HashMap::new();

    // Deterministic iteration: by function, then instruction id.
    let mut entries: Vec<(FuncId, InstrId, &LoadStrideProfile)> = stride.iter().collect();
    entries.sort_by_key(|&(f, s, _)| (f, s));

    for (func_id, site, profile) in entries {
        let func = module.function(func_id);
        let analysis = analyses
            .entry(func_id)
            .or_insert_with(|| FuncAnalysis::compute(func));
        let Some((block, _)) = func.find_instr(site) else {
            continue; // stale profile entry
        };

        // --- frequency filter ------------------------------------------
        let freq_val = freq.block_freq_via(source, func_id, &analysis.cfg, func.entry, block);
        if freq_val < config.thresholds.frequency_threshold {
            out.filtered_low_freq += 1;
            continue;
        }

        // --- trip-count filter (in-loop loads only) ----------------------
        let loop_id = analysis.loops.loop_of(block);
        let trip_count = match loop_id {
            Some(l) => {
                let tc = freq.trip_count_via(source, func_id, &analysis.cfg, &analysis.loops, l);
                if tc < config.thresholds.trip_count_threshold as f64 {
                    out.filtered_low_trip += 1;
                    continue;
                }
                tc
            }
            None => 0.0,
        };

        // --- stride-pattern classification --------------------------------
        let Some(class) = classify_profile(profile, &config.thresholds) else {
            out.no_pattern += 1;
            continue;
        };
        let dominant_stride = profile.top1().map(|(s, _)| s).unwrap_or(0);

        // --- cover loads ----------------------------------------------------
        let classes = classes_by_func
            .entry(func_id)
            .or_insert_with(|| equivalent_load_classes(func, analysis));
        let cover = classes
            .iter()
            .find(|c| c.repr == site)
            .map(|c| cover_loads(c, config.line_size))
            .unwrap_or_else(|| vec![site]);

        out.loads.push(ClassifiedLoad {
            func: func_id,
            site,
            block,
            loop_id,
            class,
            dominant_stride,
            trip_count,
            freq: freq_val,
            cover,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(top: Vec<(i64, u64)>, total: u64, zero_diff: u64) -> LoadStrideProfile {
        LoadStrideProfile {
            top,
            total_freq: total,
            num_zero_stride: 0,
            num_zero_diff: zero_diff,
            total_diffs: total.saturating_sub(1),
        }
    }

    #[test]
    fn ssst_dominant_stride() {
        let cfg = ClassifyThresholds::paper();
        // 80% single stride -> SSST
        let p = profile(vec![(64, 80), (8, 20)], 100, 50);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Ssst));
    }

    #[test]
    fn ssst_boundary_is_inclusive_at_threshold() {
        let cfg = ClassifyThresholds::paper();
        // top1 exactly at the 0.70 minimum qualifies (70/100 and the
        // 0.70 literal round to the same f64, so the comparison is exact).
        let p = profile(vec![(64, 70), (8, 30)], 100, 0);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Ssst));
        // One reference below: top1 0.69, and with no zero diffs neither
        // PMST nor WSST can catch it.
        let p = profile(vec![(64, 69)], 100, 0);
        assert_eq!(classify_profile(&p, &cfg), None);
    }

    #[test]
    fn pmst_boundary_is_inclusive_at_thresholds() {
        let cfg = ClassifyThresholds::paper();
        // top4 exactly 0.60 and zero-diff exactly 0.40, top1 well under
        // the SSST and WSST minima.
        let p = profile(vec![(16, 20), (24, 20), (32, 10), (40, 10)], 100, 40);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Pmst));
        // Zero-diff one below the minimum: not PMST, and top1 0.20 is
        // below the WSST minimum, so no class at all.
        let p = profile(vec![(16, 20), (24, 20), (32, 10), (40, 10)], 100, 39);
        assert_eq!(classify_profile(&p, &cfg), None);
    }

    #[test]
    fn wsst_boundary_is_inclusive_at_thresholds() {
        let cfg = ClassifyThresholds::paper();
        // top1 exactly 0.25 and zero-diff exactly 0.10.
        let p = profile(vec![(32, 25)], 100, 10);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Wsst));
        let p = profile(vec![(32, 25)], 100, 9);
        assert_eq!(classify_profile(&p, &cfg), None);
        let p = profile(vec![(32, 24)], 100, 10);
        assert_eq!(classify_profile(&p, &cfg), None);
    }

    /// Builds a one-loop pointer-chasing module and classifies it with the
    /// given entry/body edge frequencies and a strong SSST profile.
    fn classify_one_loop(entry_count: u64, body_count: u64) -> Classification {
        use stride_ir::ModuleBuilder;
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        let mut site = None;
        fb.while_nonzero(p, |fb, p| {
            site = Some(fb.load_to(p, p, 0));
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let cfg = &analysis.cfg;
        let l = analysis.loops.loops()[0].id;

        let mut freq = EdgeProfile::for_module(&m);
        let (a, b) = analysis.loops.entry_edges(l, cfg)[0];
        let entry_edge = cfg.edge_id(a, b).unwrap();
        for _ in 0..entry_count {
            freq.increment(f, entry_edge);
        }
        let outs = analysis.loops.header_out_edges(l, cfg);
        let body_edge = cfg.edge_id(outs[0].0, outs[0].1).unwrap();
        for _ in 0..body_count {
            freq.increment(f, body_edge);
        }

        let mut stride = StrideProfile::new();
        stride.insert(f, site.unwrap(), profile(vec![(64, 9000)], 9500, 9000));
        classify(
            &m,
            &stride,
            &freq,
            FreqSource::Edges,
            &PrefetchConfig::paper(),
        )
    }

    #[test]
    fn trip_count_filter_is_inclusive_at_tt() {
        // header/entry = 2048/16 = 128.0 exactly: a loop averaging exactly
        // TT iterations is kept (the threshold is a minimum).
        let c = classify_one_loop(16, 2048);
        assert_eq!(c.loads.len(), 1);
        assert_eq!(c.filtered_low_trip, 0);
        assert!((c.loads[0].trip_count - 128.0).abs() < 1e-12);
        // One body iteration fewer: 2047/16 < 128, filtered.
        let c = classify_one_loop(16, 2047);
        assert!(c.loads.is_empty());
        assert_eq!(c.filtered_low_trip, 1);
    }

    #[test]
    fn frequency_filter_is_inclusive_at_ft() {
        // Body block executed exactly FT = 2000 times: kept.
        let c = classify_one_loop(1, 2000);
        assert_eq!(c.loads.len(), 1);
        assert_eq!(c.loads[0].freq, 2000);
        // One execution fewer: rejected by the frequency filter (which
        // runs before the trip-count filter).
        let c = classify_one_loop(1, 1999);
        assert!(c.loads.is_empty());
        assert_eq!(c.filtered_low_freq, 1);
    }

    #[test]
    fn pmst_needs_phased_diffs() {
        let cfg = ClassifyThresholds::paper();
        // top4 = 90% but alternating (no zero diffs) -> not PMST; top1 40%
        // only qualifies WSST when diffs are sometimes zero, so: none.
        let p = profile(vec![(32, 40), (64, 30), (128, 20)], 100, 0);
        assert_eq!(classify_profile(&p, &cfg), None);
        // same strides, phased -> PMST
        let p = profile(vec![(32, 40), (64, 30), (128, 20)], 100, 60);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Pmst));
    }

    #[test]
    fn wsst_weak_single_stride() {
        let cfg = ClassifyThresholds::paper();
        // paper's example: stride 32 in ~25-30% of refs, 10%+ zero diffs
        let p = profile(vec![(32, 30)], 100, 15);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Wsst));
    }

    #[test]
    fn no_pattern_for_noise() {
        let cfg = ClassifyThresholds::paper();
        let p = profile(vec![(8, 10), (16, 9), (24, 8), (40, 7)], 100, 2);
        assert_eq!(classify_profile(&p, &cfg), None);
        let empty = profile(vec![], 0, 0);
        assert_eq!(classify_profile(&empty, &cfg), None);
    }

    #[test]
    fn zero_total_stride_profile_never_classifies() {
        let cfg = ClassifyThresholds::paper();
        // Non-empty top table but a zero total: a fault-clamped profile.
        let p = profile(vec![(64, 0)], 0, 0);
        assert_eq!(classify_profile(&p, &cfg), None);
        // Zero total with leftover top frequencies (inconsistent, as a
        // partial counter wipe can produce) must also be rejected rather
        // than divide by zero.
        let p = LoadStrideProfile {
            top: vec![(64, 80)],
            total_freq: 0,
            num_zero_stride: 0,
            num_zero_diff: 0,
            total_diffs: 0,
        };
        assert_eq!(classify_profile(&p, &cfg), None);
    }

    #[test]
    fn truncated_empty_top_table_never_classifies() {
        let cfg = ClassifyThresholds::paper();
        // total_freq survived but the top-N entries were dropped (table
        // truncation fault): ratios are vacuous, so no class.
        let p = profile(vec![], 1000, 900);
        assert_eq!(classify_profile(&p, &cfg), None);
        // All-zero entry frequencies behave the same.
        let p = profile(vec![(64, 0), (8, 0)], 1000, 900);
        assert_eq!(classify_profile(&p, &cfg), None);
    }

    #[test]
    fn classify_filters_zero_trip_count_loop() {
        use stride_ir::ModuleBuilder;
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        let mut site = None;
        fb.while_nonzero(p, |fb, p| {
            site = Some(fb.load_to(p, p, 0));
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let cfg = &analysis.cfg;
        let l = analysis.loops.loops()[0].id;

        // Hot body edge but a never-taken entry edge: the trip-count
        // estimate is 0 (division guarded), so the load is trip-filtered
        // without panicking.
        let mut freq = EdgeProfile::for_module(&m);
        let outs = analysis.loops.header_out_edges(l, cfg);
        let body_edge = cfg.edge_id(outs[0].0, outs[0].1).unwrap();
        for _ in 0..10_000 {
            freq.increment(f, body_edge);
        }

        let mut stride = StrideProfile::new();
        stride.insert(f, site.unwrap(), profile(vec![(64, 9000)], 9500, 9000));
        let c = classify(
            &m,
            &stride,
            &freq,
            FreqSource::Edges,
            &PrefetchConfig::paper(),
        );
        assert!(c.loads.is_empty());
        assert_eq!(c.filtered_low_trip, 1);
    }

    #[test]
    fn figure_2_gap_load_is_pmst() {
        // §1: (*s&~3)->size load has 4 dominant strides at 29/28/21/5%,
        // phase-wise constant.
        let cfg = ClassifyThresholds::paper();
        let p = profile(vec![(16, 29), (24, 28), (32, 21), (48, 5)], 100, 55);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Pmst));
    }

    #[test]
    fn figure_1_parser_load_is_ssst() {
        // §1: strides the same 94% of the time.
        let cfg = ClassifyThresholds::paper();
        let p = profile(vec![(40, 94)], 100, 90);
        assert_eq!(classify_profile(&p, &cfg), Some(StrideClass::Ssst));
    }

    /// End-to-end classify() over a real module: one hot pointer-chasing
    /// loop with a synthetic SSST profile.
    #[test]
    fn classify_applies_filters_and_cover() {
        use stride_ir::ModuleBuilder;
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        let mut sites = (None, None);
        fb.while_nonzero(p, |fb, p| {
            let (_, s1) = fb.load(p, 8);
            let s2 = fb.load_to(p, p, 0);
            sites = (Some(s1), Some(s2));
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let cfg = &analysis.cfg;
        let l = analysis.loops.loops()[0].id;

        // Frequency profile: loop entered once, 10_000 iterations.
        let mut freq = EdgeProfile::for_module(&m);
        let (a, b) = analysis.loops.entry_edges(l, cfg)[0];
        freq.increment(f, cfg.edge_id(a, b).unwrap());
        let outs = analysis.loops.header_out_edges(l, cfg);
        let body_edge = cfg.edge_id(outs[0].0, outs[0].1).unwrap();
        for _ in 0..10_000 {
            freq.increment(f, body_edge);
        }

        // Stride profile for the representative (s1 is the class repr —
        // first in program order).
        let repr = sites.0.unwrap();
        let mut stride = StrideProfile::new();
        stride.insert(f, repr, profile(vec![(40, 9000)], 9500, 9000));

        let pcfg = PrefetchConfig::paper();
        let c = classify(&m, &stride, &freq, FreqSource::Edges, &pcfg);
        assert_eq!(c.loads.len(), 1);
        let cl = &c.loads[0];
        assert_eq!(cl.class, StrideClass::Ssst);
        assert_eq!(cl.dominant_stride, 40);
        assert!(cl.trip_count > 1000.0);
        // both members are on the same 64B line (offsets 0 and 8): only the
        // representative is covered
        assert_eq!(cl.cover, vec![repr]);
    }

    #[test]
    fn classify_filters_low_frequency() {
        use stride_ir::ModuleBuilder;
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        let mut site = None;
        fb.while_nonzero(p, |fb, p| {
            site = Some(fb.load_to(p, p, 0));
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();

        let freq = EdgeProfile::for_module(&m); // all zero
        let mut stride = StrideProfile::new();
        stride.insert(f, site.unwrap(), profile(vec![(64, 900)], 1000, 900));
        let c = classify(
            &m,
            &stride,
            &freq,
            FreqSource::Edges,
            &PrefetchConfig::paper(),
        );
        assert!(c.loads.is_empty());
        assert_eq!(c.filtered_low_freq, 1);
    }

    #[test]
    fn cover_spans_multiple_lines() {
        use stride_ir::ModuleBuilder;
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let p = fb.mov(fb.param(0));
        let mut sites = Vec::new();
        fb.while_nonzero(p, |fb, p| {
            let (_, s1) = fb.load(p, 8); // line 0
            let (_, s2) = fb.load(p, 72); // line 1
            let (_, s3) = fb.load(p, 16); // line 0 again
            sites.extend([s1, s2, s3]);
            fb.load_to(p, p, 0); // line 0, chasing
        });
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let func = m.function(f);
        let analysis = FuncAnalysis::compute(func);
        let l = analysis.loops.loops()[0].id;
        let cfg = &analysis.cfg;

        let mut freq = EdgeProfile::for_module(&m);
        let (a, b) = analysis.loops.entry_edges(l, cfg)[0];
        freq.increment(f, cfg.edge_id(a, b).unwrap());
        let outs = analysis.loops.header_out_edges(l, cfg);
        let body_edge = cfg.edge_id(outs[0].0, outs[0].1).unwrap();
        for _ in 0..10_000 {
            freq.increment(f, body_edge);
        }

        let mut stride = StrideProfile::new();
        stride.insert(f, sites[0], profile(vec![(128, 9000)], 9500, 9000));
        let c = classify(
            &m,
            &stride,
            &freq,
            FreqSource::Edges,
            &PrefetchConfig::paper(),
        );
        assert_eq!(c.loads.len(), 1);
        // covers line 0 (via s1) and line 1 (via s2)
        assert_eq!(c.loads[0].cover, vec![sites[0], sites[1]]);
    }
}
