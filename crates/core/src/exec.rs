//! The parallel execution engine behind `repro --jobs N`, `ablation
//! --jobs N` and the profile daemon's worker pool: a std-only
//! scoped-thread job pool.
//!
//! Every unit of work in the reproduction — one (workload, variant, phase)
//! simulation, or one service request — owns its VM, memory simulator and
//! profiling state, so the fan-out is embarrassingly parallel. Determinism
//! is preserved by construction: workers pull indices from a shared atomic
//! counter but write results into per-index slots, so the collected `Vec`
//! is in input order regardless of scheduling, and figure output is
//! byte-identical at any `--jobs` level.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One task's panic, captured by [`parallel_map_isolated`] instead of
/// tearing down the whole campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskFailure {
    /// Input-order index of the task that panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case); `"non-string panic payload"` otherwise.
    pub message: String,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Number of worker threads to use when `--jobs` is not given: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` using `jobs` worker threads, returning results in
/// input order. `jobs <= 1` runs inline on the caller's thread with no
/// thread or synchronization overhead.
///
/// # Panics
///
/// Re-raises (on the calling thread) any panic from `f`.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(items.len());
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    collected.sort_unstable_by_key(|&(i, _)| i);
    assert_eq!(collected.len(), items.len(), "each index claimed once");
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Like [`parallel_map`], but each task runs under `catch_unwind`: a
/// panicking task yields `Err(TaskFailure)` in its input-order slot while
/// every sibling task runs to completion. Used by the figure generators
/// so one broken workload degrades to a diagnostic row instead of taking
/// the whole campaign down.
pub fn parallel_map_isolated<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, TaskFailure>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map(items, jobs, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| TaskFailure {
            index: i,
            message: payload_message(payload),
        })
    })
}

/// Parses a `--jobs` argument value: a positive integer.
///
/// # Errors
///
/// Returns a user-facing message for `0`, non-numeric, or missing values.
pub fn parse_jobs(value: Option<&str>) -> Result<usize, String> {
    let Some(value) = value else {
        return Err("--jobs requires a value".to_string());
    };
    match value.parse::<usize>() {
        Ok(0) => Err("--jobs 0 is invalid: at least one worker thread is required".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--jobs expects a positive integer, got '{value}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 8] {
            let out = parallel_map(&items, jobs, |i, &x| {
                // stagger completion order
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let items: Vec<usize> = (0..57).collect();
        let seen = Mutex::new(Vec::new());
        parallel_map(&items, 4, |i, _| {
            seen.lock().unwrap().push(i);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 57);
        assert_eq!(seen.iter().copied().collect::<HashSet<_>>().len(), 57);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(parallel_map(&[5], 8, |_, x| x + 1), vec![6]);
    }

    #[test]
    fn isolated_panics_become_failures_and_siblings_complete() {
        let items: Vec<u64> = (0..20).collect();
        for jobs in [1, 4] {
            let out = parallel_map_isolated(&items, jobs, |_, &x| {
                if x == 7 {
                    panic!("workload {x} exploded");
                }
                x * 2
            });
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    let f = r.as_ref().unwrap_err();
                    assert_eq!(f.index, 7);
                    assert_eq!(f.message, "workload 7 exploded");
                    assert_eq!(f.to_string(), "task 7 panicked: workload 7 exploded");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 2);
                }
            }
        }
    }

    #[test]
    fn isolated_failures_are_deterministic_across_jobs() {
        let items: Vec<u64> = (0..31).collect();
        let run = |jobs| {
            parallel_map_isolated(&items, jobs, |_, &x| {
                if x % 5 == 0 {
                    panic!("bad {x}");
                }
                x
            })
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs(Some("4")), Ok(4));
        assert!(parse_jobs(Some("0")).unwrap_err().contains("--jobs 0"));
        assert!(parse_jobs(Some("four"))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse_jobs(None).unwrap_err().contains("requires a value"));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
