//! Instrumentation pass: inserts frequency counters and guarded
//! `strideProf` calls into a copy of the module (Figs. 11–14 of the
//! paper).
//!
//! Counter and stride-profile records are keyed by the *original* module's
//! ids: edge ids come from the original CFG numbering and load sites keep
//! their instruction ids (the pass only appends new ids), so a profile
//! collected from the instrumented copy feeds back onto the original
//! module directly.

use crate::config::PrefetchConfig;
use crate::select::{ProfilingMethod, Selection};
use std::collections::HashMap;
use stride_ir::{
    split_edge, BlockId, EdgeId, FuncAnalysis, Function, InstrId, LoopId, Module, Op, Operand, Reg,
};
use stride_profiling::EdgeProfile;

/// An instrumented program plus the slot table its profiling runtime
/// needs.
#[derive(Clone, Debug)]
pub struct InstrumentedModule {
    /// The instrumented copy.
    pub module: Module,
    /// The profiled-load selection (slot order matches
    /// [`stride_profiling::ProfilerRuntime::new`]'s `slot_sites`).
    pub selection: Selection,
    /// The method that produced this instrumentation.
    pub method: ProfilingMethod,
}

/// Instruments `module` for integrated frequency + stride profiling under
/// `method` (§3.2).
pub fn instrument(
    module: &Module,
    method: ProfilingMethod,
    config: &PrefetchConfig,
) -> InstrumentedModule {
    let selection = crate::select::select_profiled_loads(module, method);
    let instrumented = instrument_with(module, &selection, method, config);
    InstrumentedModule {
        module: instrumented,
        selection,
        method,
    }
}

/// Instruments `module` for frequency profiling only (the paper's
/// baseline: "execution time with edge profiling").
pub fn instrument_edges_only(module: &Module) -> Module {
    instrument_with(
        module,
        &Selection::default(),
        ProfilingMethod::EdgeCheck,
        &PrefetchConfig::paper(),
    )
}

/// Instruments `module` with frequency counters plus unguarded
/// `strideProf` calls on exactly `selection` — the second pass of the
/// *two-pass* method, whose selection was computed from a prior frequency
/// profile.
pub fn instrument_two_pass(module: &Module, selection: &Selection) -> Module {
    instrument_with(
        module,
        selection,
        ProfilingMethod::NaiveLoop,
        &PrefetchConfig::paper(),
    )
}

/// The shared instrumentation engine.
fn instrument_with(
    module: &Module,
    selection: &Selection,
    method: ProfilingMethod,
    config: &PrefetchConfig,
) -> Module {
    let mut out = module.clone();
    let block_counters = method == ProfilingMethod::BlockCheck;

    for func in &mut out.functions {
        let original = module.function(func.id);
        let analysis = FuncAnalysis::compute(original);
        let cfg = &analysis.cfg;

        // Loops needing a trip-count predicate.
        let guarded_loops: Vec<LoopId> = if method.is_guarded() {
            selection.loops_with_loads(func.id)
        } else {
            Vec::new()
        };
        let mut loop_pred: HashMap<LoopId, Reg> = HashMap::new();
        for &l in &guarded_loops {
            loop_pred.insert(l, func.new_reg());
        }

        // --- frequency counters -----------------------------------------
        // Maps each counter id to the block that hosts its increment and
        // the index just past the inserted bundle (so trip-count checks can
        // follow the counter they depend on).
        let mut edge_carrier: HashMap<EdgeId, BlockId> = HashMap::new();

        if block_counters {
            // Block-frequency profiling (Fig. 11): one counter at the top
            // of every block.
            for b in 0..original.blocks.len() {
                let block = BlockId::new(b as u32);
                let counter = EdgeProfile::block_counter(cfg, block);
                stride_ir::insert_at_front(
                    func,
                    block,
                    vec![(None, Op::ProfileEdge { edge: counter })],
                );
                edge_carrier.insert(counter, block);
            }
        } else {
            // Edge-frequency profiling (Fig. 14): a counter on every edge,
            // placed in the source (sole successor), the sink (sole
            // predecessor) or a freshly split block.
            for (idx, &(from, to)) in cfg.edges().iter().enumerate() {
                let edge = EdgeId::new(idx as u32);
                let carrier = if cfg.succs(from).len() == 1 {
                    stride_ir::insert_at_end(func, from, vec![(None, Op::ProfileEdge { edge })]);
                    from
                } else if cfg.preds(to).len() == 1 {
                    stride_ir::insert_at_front(func, to, vec![(None, Op::ProfileEdge { edge })]);
                    to
                } else {
                    let split = split_edge(func, from, to);
                    stride_ir::insert_at_front(func, split, vec![(None, Op::ProfileEdge { edge })]);
                    split
                };
                edge_carrier.insert(edge, carrier);
            }
            // Virtual entry counter.
            let entry_edge = EdgeProfile::entry_edge(cfg);
            stride_ir::insert_at_front(
                func,
                original.entry,
                vec![(None, Op::ProfileEdge { edge: entry_edge })],
            );
            edge_carrier.insert(entry_edge, original.entry);
        }

        // --- trip-count predicates (guarded methods) ----------------------
        let shift = config.trip_shift();
        for &l in &guarded_loops {
            let pred = loop_pred[&l];
            let (incoming, outgoing): (Vec<EdgeId>, Vec<EdgeId>) = if block_counters {
                let incoming = analysis
                    .loops
                    .entry_edges(l, cfg)
                    .into_iter()
                    .map(|(from, _)| EdgeProfile::block_counter(cfg, from))
                    .collect();
                let header = analysis.loops.get(l).header;
                let outgoing = vec![EdgeProfile::block_counter(cfg, header)];
                (incoming, outgoing)
            } else {
                let incoming = analysis
                    .loops
                    .entry_edges(l, cfg)
                    .into_iter()
                    .filter_map(|(a, b)| cfg.edge_id(a, b))
                    .collect();
                let outgoing = analysis
                    .loops
                    .header_out_edges(l, cfg)
                    .into_iter()
                    .filter_map(|(a, b)| cfg.edge_id(a, b))
                    .collect();
                (incoming, outgoing)
            };

            // Insert one check per entry path, in the block carrying that
            // path's counter, *after* the counter increment (end of block
            // is always after the front/end-inserted counters).
            let header = analysis.loops.get(l).header;
            let entry_carriers: Vec<BlockId> = if block_counters {
                analysis
                    .loops
                    .entry_edges(l, cfg)
                    .into_iter()
                    .map(|(from, _)| from)
                    .collect()
            } else {
                analysis
                    .loops
                    .entry_edges(l, cfg)
                    .into_iter()
                    .filter_map(|(a, b)| cfg.edge_id(a, b))
                    .map(|e| edge_carrier[&e])
                    .collect()
            };
            for carrier in entry_carriers {
                stride_ir::insert_at_end(
                    func,
                    carrier,
                    vec![(
                        None,
                        Op::TripCountCheck {
                            dst: pred,
                            header,
                            incoming: incoming.clone(),
                            outgoing: outgoing.clone(),
                            shift,
                        },
                    )],
                );
            }
        }

        // --- strideProf calls ---------------------------------------------
        let func_id = func.id;
        for load in selection.loads.iter().filter(|l| l.func == func_id) {
            // A stale selection (site removed or repurposed between
            // selection and instrumentation) is skipped: the load simply
            // goes unprofiled, which the classifier tolerates.
            let Some((block, idx)) = func.find_instr(load.site) else {
                continue;
            };
            let instr = &func.block(block).instrs[idx];
            let Op::Load { addr, offset, .. } = instr.op else {
                continue;
            };
            let load_pred = instr.pred;

            let stride_op = |pred: Option<Reg>| {
                (
                    pred,
                    Op::ProfileStride {
                        site: load.site,
                        addr,
                        offset,
                        slot: load.slot,
                    },
                )
            };

            let guard = if method.is_guarded() {
                load.loop_id.and_then(|l| loop_pred.get(&l).copied())
            } else {
                None
            };

            let ops = match (guard, load_pred) {
                (Some(pr), Some(lp)) => {
                    // pr1 = pr && load->predicate (Fig. 14)
                    let pr1 = func.new_reg();
                    vec![
                        (
                            None,
                            Op::Bin {
                                dst: pr1,
                                op: stride_ir::BinOp::And,
                                lhs: Operand::Reg(pr),
                                rhs: Operand::Reg(lp),
                            },
                        ),
                        stride_op(Some(pr1)),
                    ]
                }
                (Some(pr), None) => vec![stride_op(Some(pr))],
                (None, lp) => vec![stride_op(lp)],
            };
            stride_ir::insert_before(func, load.site, ops);
        }
    }
    out
}

/// Computes the two-pass selection: every in-loop load inside a loop whose
/// profiled trip count exceeds the threshold. (No equivalence reduction —
/// the paper's two-pass baseline simply restricts naive-loop profiling to
/// hot loops, which is why, after the feedback filters, it collects the
/// same profile as naive-loop, §3.2/§4.1.)
pub fn select_two_pass(
    module: &Module,
    edge_profile: &EdgeProfile,
    config: &PrefetchConfig,
) -> Selection {
    let naive = crate::select::select_profiled_loads(module, ProfilingMethod::NaiveLoop);
    let mut out = Selection::default();
    let mut analyses: HashMap<stride_ir::FuncId, FuncAnalysis> = HashMap::new();
    for load in naive.loads {
        let analysis = analyses
            .entry(load.func)
            .or_insert_with(|| FuncAnalysis::compute(module.function(load.func)));
        let Some(l) = load.loop_id else { continue };
        let tc = edge_profile.trip_count(load.func, &analysis.cfg, &analysis.loops, l);
        if tc >= config.thresholds.trip_count_threshold as f64 {
            let slot = out.loads.len() as u32;
            out.loads.push(crate::select::ProfiledLoad { slot, ..load });
        }
    }
    out
}

/// Number of profiling pseudo-instructions in a module (test/debug aid).
pub fn profiling_instr_count(module: &Module) -> usize {
    module
        .functions
        .iter()
        .flat_map(|f| f.instrs())
        .filter(|(_, i)| i.op.is_profiling())
        .count()
}

/// Lists the functions' loads whose site carries a `ProfileStride` call
/// immediately before it (test/debug aid).
pub fn instrumented_sites(func: &Function) -> Vec<InstrId> {
    let mut out = Vec::new();
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Op::ProfileStride { site, .. } = instr.op {
                out.push(site);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{verify_module, Cfg, ModuleBuilder};

    /// Pointer-chasing loop over `param(0)` plus an out-loop load.
    fn chase_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("t", 4096);
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let p = fb.mov(fb.param(0));
        fb.while_nonzero(p, |fb, p| {
            let _ = fb.load(p, 8);
            fb.load_to(p, p, 0);
        });
        let _ = fb.load(base, 0);
        fb.ret(None);
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn instrumented_module_verifies() {
        let m = chase_module();
        for method in ProfilingMethod::ALL {
            let inst = instrument(&m, method, &PrefetchConfig::paper());
            verify_module(&inst.module)
                .unwrap_or_else(|e| panic!("{method}: verifier rejected: {e}"));
        }
    }

    #[test]
    fn edge_only_counts_every_edge_plus_entry() {
        let m = chase_module();
        let inst = instrument_edges_only(&m);
        let cfg = Cfg::compute(m.function(m.entry));
        let edges = inst.functions[0]
            .instrs()
            .filter(|(_, i)| matches!(i.op, Op::ProfileEdge { .. }))
            .count();
        assert_eq!(edges, cfg.num_edges() + 1);
        // no stride calls, no trip checks
        let strides = inst.functions[0]
            .instrs()
            .filter(|(_, i)| matches!(i.op, Op::ProfileStride { .. }))
            .count();
        assert_eq!(strides, 0);
    }

    #[test]
    fn edge_check_guards_stride_calls() {
        let m = chase_module();
        let inst = instrument(&m, ProfilingMethod::EdgeCheck, &PrefetchConfig::paper());
        let f = &inst.module.functions[0];
        let stride_calls: Vec<_> = f
            .instrs()
            .filter(|(_, i)| matches!(i.op, Op::ProfileStride { .. }))
            .collect();
        assert_eq!(stride_calls.len(), 1);
        assert!(
            stride_calls[0].1.pred.is_some(),
            "edge-check strideProf must be predicated"
        );
        // exactly one trip-count check (single entry edge)
        let checks = f
            .instrs()
            .filter(|(_, i)| matches!(i.op, Op::TripCountCheck { .. }))
            .count();
        assert_eq!(checks, 1);
    }

    #[test]
    fn naive_all_is_unguarded_and_covers_out_loop() {
        let m = chase_module();
        let inst = instrument(&m, ProfilingMethod::NaiveAll, &PrefetchConfig::paper());
        let f = &inst.module.functions[0];
        let stride_calls: Vec<_> = f
            .instrs()
            .filter(|(_, i)| matches!(i.op, Op::ProfileStride { .. }))
            .collect();
        assert_eq!(stride_calls.len(), 3); // 2 in-loop + 1 out-loop
        assert!(stride_calls.iter().all(|(_, i)| i.pred.is_none()));
        let checks = f
            .instrs()
            .filter(|(_, i)| matches!(i.op, Op::TripCountCheck { .. }))
            .count();
        assert_eq!(checks, 0);
    }

    #[test]
    fn block_check_uses_block_counters() {
        let m = chase_module();
        let inst = instrument(&m, ProfilingMethod::BlockCheck, &PrefetchConfig::paper());
        let f = &inst.module.functions[0];
        let cfg = Cfg::compute(m.function(m.entry));
        // one block counter per original block
        let counters: Vec<EdgeId> = f
            .instrs()
            .filter_map(|(_, i)| match i.op {
                Op::ProfileEdge { edge } => Some(edge),
                _ => None,
            })
            .collect();
        assert_eq!(counters.len(), m.function(m.entry).blocks.len());
        assert!(counters.iter().all(|e| e.index() > cfg.num_edges()));
    }

    #[test]
    fn stride_call_sits_immediately_before_its_load() {
        let m = chase_module();
        let inst = instrument(&m, ProfilingMethod::NaiveLoop, &PrefetchConfig::paper());
        let f = &inst.module.functions[0];
        for block in &f.blocks {
            for (i, instr) in block.instrs.iter().enumerate() {
                if let Op::ProfileStride { site, .. } = instr.op {
                    let next = &block.instrs[i + 1];
                    assert_eq!(next.id, site, "strideProf not adjacent to its load");
                    assert!(matches!(next.op, Op::Load { .. }));
                }
            }
        }
    }

    #[test]
    fn original_module_is_untouched() {
        let m = chase_module();
        let before = stride_ir::module_to_string(&m);
        let _ = instrument(&m, ProfilingMethod::NaiveAll, &PrefetchConfig::paper());
        assert_eq!(stride_ir::module_to_string(&m), before);
    }

    #[test]
    fn critical_edges_are_split() {
        // Build a CFG with a critical edge: b0 cond-branches to b1 and b2;
        // b1 cond-branches to b2 and b3. Edge b1->b2 is critical.
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let c = fb.cmp(stride_ir::CmpOp::Gt, fb.param(0), 0i64);
        fb.cond_br(c, b1, b2);
        fb.switch_to(b1);
        let c2 = fb.cmp(stride_ir::CmpOp::Gt, fb.param(0), 5i64);
        fb.cond_br(c2, b2, b3);
        fb.switch_to(b2);
        fb.ret(None);
        fb.switch_to(b3);
        fb.ret(None);
        mb.set_entry(f);
        let m = mb.finish();
        let inst = instrument_edges_only(&m);
        verify_module(&inst).expect("verifies");
        // the instrumented function grew at least one split block
        assert!(inst.functions[0].blocks.len() > m.functions[0].blocks.len());
    }

    #[test]
    fn two_pass_selection_respects_trip_counts() {
        let m = chase_module();
        let cfg = Cfg::compute(m.function(m.entry));
        let analysis = stride_ir::FuncAnalysis::compute(m.function(m.entry));
        let l = analysis.loops.loops()[0].id;
        let mut prof = EdgeProfile::for_module(&m);
        // low trip count: nothing selected
        let sel = select_two_pass(&m, &prof, &PrefetchConfig::paper());
        assert!(sel.loads.is_empty());
        // make the loop hot: entry once, back edge 1000 times
        let entry_edges = analysis.loops.entry_edges(l, &cfg);
        let (a, b) = entry_edges[0];
        prof.increment(m.entry, cfg.edge_id(a, b).unwrap());
        let header = analysis.loops.get(l).header;
        let outs = analysis.loops.header_out_edges(l, &cfg);
        for _ in 0..1000 {
            for &(x, y) in &outs {
                let _ = (x, y);
            }
            prof.increment(m.entry, cfg.edge_id(outs[0].0, outs[0].1).unwrap());
        }
        let _ = header;
        let sel = select_two_pass(&m, &prof, &PrefetchConfig::paper());
        // two-pass profiles every in-loop load of the hot loop (both the
        // payload load and the chasing load), with no equivalence reduction
        assert_eq!(sel.loads.len(), 2);
    }

    #[test]
    fn profiling_instr_count_counts_pseudo_ops() {
        let m = chase_module();
        assert_eq!(profiling_instr_count(&m), 0);
        let inst = instrument(&m, ProfilingMethod::EdgeCheck, &PrefetchConfig::paper());
        assert!(profiling_instr_count(&inst.module) > 0);
        assert_eq!(
            instrumented_sites(&inst.module.functions[0]).len(),
            inst.selection.loads.len()
        );
    }
}
