//! Profiled-load selection (§2.1, §3.2): which loads get `strideProf`
//! instrumentation under each one-pass profiling method.

use stride_ir::{
    equivalent_load_classes, is_loop_invariant, regs_defined_in_loop, FuncAnalysis, FuncId,
    InstrId, LoopId, Module, Op,
};

/// The one-pass profiling methods of §3.2 (sampling is orthogonal: it is a
/// property of the runtime's `StrideProfConfig`, not of the inserted
/// code).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProfilingMethod {
    /// strideProf on every in-loop load, unguarded.
    NaiveLoop,
    /// strideProf on every load, in-loop and out-loop, unguarded.
    NaiveAll,
    /// strideProf on selected in-loop loads, guarded by a trip-count
    /// predicate computed from partially collected *edge* counters.
    EdgeCheck,
    /// As `EdgeCheck`, but the guard reads partially collected *block*
    /// counters (Fig. 11). Described but not evaluated in the paper.
    BlockCheck,
}

impl ProfilingMethod {
    /// All methods, in the paper's presentation order.
    pub const ALL: [ProfilingMethod; 4] = [
        ProfilingMethod::EdgeCheck,
        ProfilingMethod::NaiveLoop,
        ProfilingMethod::NaiveAll,
        ProfilingMethod::BlockCheck,
    ];

    /// True if the method guards strideProf calls with the trip-count
    /// predicate.
    pub fn is_guarded(self) -> bool {
        matches!(
            self,
            ProfilingMethod::EdgeCheck | ProfilingMethod::BlockCheck
        )
    }

    /// True if out-loop loads are profiled.
    pub fn profiles_out_loop(self) -> bool {
        matches!(self, ProfilingMethod::NaiveAll)
    }
}

impl std::fmt::Display for ProfilingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProfilingMethod::NaiveLoop => "naive-loop",
            ProfilingMethod::NaiveAll => "naive-all",
            ProfilingMethod::EdgeCheck => "edge-check",
            ProfilingMethod::BlockCheck => "block-check",
        };
        f.write_str(s)
    }
}

/// One load selected for stride profiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfiledLoad {
    /// Containing function.
    pub func: FuncId,
    /// The load instruction (equivalence-class representative for the
    /// guarded methods).
    pub site: InstrId,
    /// Innermost reducible loop containing the load, if any.
    pub loop_id: Option<LoopId>,
    /// The runtime slot assigned to this load's `StrideProfData`.
    pub slot: u32,
}

/// The full selection for a module.
#[derive(Clone, Debug, Default)]
pub struct Selection {
    /// Selected loads in deterministic (function, program) order.
    pub loads: Vec<ProfiledLoad>,
}

impl Selection {
    /// The `(func, site)` pairs in slot order (what
    /// [`stride_profiling::ProfilerRuntime::new`] expects).
    pub fn slot_sites(&self) -> Vec<(FuncId, InstrId)> {
        self.loads.iter().map(|l| (l.func, l.site)).collect()
    }

    /// Loops of `func` that contain at least one selected load.
    pub fn loops_with_loads(&self, func: FuncId) -> Vec<LoopId> {
        let mut out: Vec<LoopId> = self
            .loads
            .iter()
            .filter(|l| l.func == func)
            .filter_map(|l| l.loop_id)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Selects the profiled loads of `module` under `method`.
///
/// * Naïve methods take every (in-loop / all) load as-is.
/// * Guarded methods additionally drop loads whose address is
///   loop-invariant (their stride is always zero) and profile only one
///   representative per equivalent-load set.
pub fn select_profiled_loads(module: &Module, method: ProfilingMethod) -> Selection {
    let mut selection = Selection::default();
    for func in &module.functions {
        let analysis = FuncAnalysis::compute(func);

        match method {
            ProfilingMethod::NaiveLoop | ProfilingMethod::NaiveAll => {
                for block in &func.blocks {
                    let loop_id = analysis.loops.loop_of(block.id);
                    if loop_id.is_none() && !method.profiles_out_loop() {
                        continue;
                    }
                    for instr in &block.instrs {
                        if matches!(instr.op, Op::Load { .. }) {
                            let slot = selection.loads.len() as u32;
                            selection.loads.push(ProfiledLoad {
                                func: func.id,
                                site: instr.id,
                                loop_id,
                                slot,
                            });
                        }
                    }
                }
            }
            ProfilingMethod::EdgeCheck | ProfilingMethod::BlockCheck => {
                // Representative loads of in-loop equivalence classes with
                // loop-variant addresses.
                let classes = equivalent_load_classes(func, &analysis);
                for class in classes {
                    let Some(loop_id) = class.loop_id else {
                        continue; // out-loop: not profiled by guarded methods
                    };
                    let l = analysis.loops.get(loop_id);
                    let defs = regs_defined_in_loop(func, l);
                    if is_loop_invariant(class.base, &defs) {
                        continue; // stride is always zero: skip
                    }
                    let slot = selection.loads.len() as u32;
                    selection.loads.push(ProfiledLoad {
                        func: func.id,
                        site: class.repr,
                        loop_id: Some(loop_id),
                        slot,
                    });
                }
            }
        }
    }
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::ModuleBuilder;

    /// A function with: an in-loop pointer-chasing load + equivalent
    /// partner, an in-loop invariant-address load, and an out-loop load.
    fn test_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("table", 4096);
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let p = fb.mov(fb.param(0));
        fb.while_nonzero(p, |fb, p| {
            let (_, _equiv) = fb.load(p, 8); // equivalent partner (same base)
            let _ = fb.load(base, 0); // loop-invariant address
            fb.load_to(p, p, 0); // representative chasing load
        });
        let _ = fb.load(base, 128); // out-loop load
        fb.ret(None);
        mb.set_entry(f);
        mb.finish()
    }

    #[test]
    fn naive_loop_takes_every_in_loop_load() {
        let m = test_module();
        let s = select_profiled_loads(&m, ProfilingMethod::NaiveLoop);
        assert_eq!(s.loads.len(), 3); // both equivalent loads + invariant load
        assert!(s.loads.iter().all(|l| l.loop_id.is_some()));
    }

    #[test]
    fn naive_all_adds_out_loop_loads() {
        let m = test_module();
        let s = select_profiled_loads(&m, ProfilingMethod::NaiveAll);
        assert_eq!(s.loads.len(), 4);
        assert_eq!(s.loads.iter().filter(|l| l.loop_id.is_none()).count(), 1);
    }

    #[test]
    fn edge_check_reduces_and_filters() {
        let m = test_module();
        let s = select_profiled_loads(&m, ProfilingMethod::EdgeCheck);
        // one representative for the {p+8, p+0} class; the invariant-address
        // load and the out-loop load are excluded
        assert_eq!(s.loads.len(), 1);
        assert!(s.loads[0].loop_id.is_some());
    }

    #[test]
    fn block_check_selects_like_edge_check() {
        let m = test_module();
        let a = select_profiled_loads(&m, ProfilingMethod::EdgeCheck);
        let b = select_profiled_loads(&m, ProfilingMethod::BlockCheck);
        assert_eq!(a.loads, b.loads);
    }

    #[test]
    fn slots_are_dense_and_ordered() {
        let m = test_module();
        let s = select_profiled_loads(&m, ProfilingMethod::NaiveAll);
        for (i, l) in s.loads.iter().enumerate() {
            assert_eq!(l.slot as usize, i);
        }
        assert_eq!(s.slot_sites().len(), s.loads.len());
    }

    #[test]
    fn loops_with_loads_deduplicates() {
        let m = test_module();
        let s = select_profiled_loads(&m, ProfilingMethod::NaiveLoop);
        let loops = s.loops_with_loads(stride_ir::FuncId::new(0));
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn method_display_names_match_paper() {
        assert_eq!(ProfilingMethod::EdgeCheck.to_string(), "edge-check");
        assert_eq!(ProfilingMethod::NaiveAll.to_string(), "naive-all");
    }
}
