//! Content-addressed run memoization for the pipeline.
//!
//! Most consumers re-simulate identical configurations: the repro harness
//! shares every (workload, variant) train-input profiling run between the
//! speedup and overhead figures, the uninstrumented reference-input
//! baselines between Figs. 16, 17 and 23–25, and transformed-binary runs
//! whenever two profile sources select the same prefetches; the profile
//! daemon sees the same module resubmitted by many clients. The
//! [`RunCache`] shares those results across callers (and across worker
//! threads — it is `Sync`, with per-key [`OnceLock`]s so a result is
//! computed exactly once even under contention).
//!
//! Every key is **content-addressed**: runs are keyed by a fingerprint of
//! the module itself (not its name or origin), the entry arguments, and a
//! fingerprint of the parts of the [`PipelineConfig`] the run can observe.
//! Baselines depend only on the VM cost model and the cache hierarchy,
//! while profiling runs also depend on the prefetch (instrumentation)
//! parameters — so an ablation sweep over feedback thresholds still shares
//! its baselines across every sweep point, and two clients submitting
//! byte-identical modules under different names share every run.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::error::PipelineError;
use crate::faults::{corrupt_ir_text, FaultInjector};
use crate::pipeline::{
    prefetch_with_profiles, run_edge_only, run_profiling, run_uninstrumented, OverheadOutcome,
    PipelineConfig, ProfileOutcome, ProfilingVariant, SpeedupOutcome,
};
use stride_ir::Module;
use stride_memsim::HierarchyStats;
use stride_profiling::EdgeProfile;
use stride_vm::RunResult;

/// What a cached instrumented run is keyed by (beyond module/args/config).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum RunKind {
    /// Edge-frequency-only instrumented run.
    EdgeOnly,
    /// Integrated profiling run under a variant.
    Profiling(ProfilingVariant),
}

/// Key of an instrumented run: the module *content*, the run kind, the
/// arguments, and the config fingerprint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Key {
    module_fingerprint: u64,
    kind: RunKind,
    args: Vec<i64>,
    config_fingerprint: u64,
}

/// Key of an uninstrumented run: the module *content* (not its origin),
/// the arguments, and the machine config. Two different profiling
/// variants that select the same prefetches produce byte-identical
/// transformed modules, so their reference runs collapse to one entry —
/// and a transform that inserts nothing shares the workload's baseline.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct PlainKey {
    module_fingerprint: u64,
    args: Vec<i64>,
    config_fingerprint: u64,
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, PipelineError>>>;

/// Counters describing cache effectiveness and total simulation volume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that ran a fresh simulation.
    pub misses: u64,
    /// Dynamic loads executed by fresh simulations (cached runs add 0).
    pub sim_loads: u64,
    /// Demand accesses (loads + stores) seen by the cache simulator in
    /// fresh simulations.
    pub sim_accesses: u64,
}

/// The memoizing run store shared by all figure generators, service
/// workers and worker threads.
#[derive(Default)]
pub struct RunCache {
    plain_runs: Mutex<HashMap<PlainKey, Slot<(RunResult, HierarchyStats)>>>,
    edge_runs: Mutex<HashMap<Key, Slot<(EdgeProfile, RunResult)>>>,
    profiles: Mutex<HashMap<Key, Slot<ProfileOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    sim_loads: AtomicU64,
    sim_accesses: AtomicU64,
}

/// Fingerprint of the config parts an *uninstrumented* run can observe:
/// the VM cost model and the cache hierarchy.
fn fingerprint_machine(config: &PipelineConfig) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}|{:?}", config.vm, config.hierarchy).hash(&mut h);
    h.finish()
}

/// Fingerprint of the whole config (instrumented runs also observe the
/// prefetch/selection parameters).
fn fingerprint_full(config: &PipelineConfig) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}", config.prefetch).hash(&mut h);
    h.write_u64(fingerprint_machine(config));
    h.finish()
}

/// Content fingerprint of a module. The `Debug` form covers every field
/// the interpreter can observe (functions, blocks, instructions, globals,
/// entry), so equal fingerprints mean behaviourally identical programs.
pub fn fingerprint_module(module: &Module) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{module:?}").hash(&mut h);
    h.finish()
}

impl RunCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache effectiveness and simulation-volume counters so far.
    pub fn stats(&self) -> RunCacheStats {
        RunCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sim_loads: self.sim_loads.load(Ordering::Relaxed),
            sim_accesses: self.sim_accesses.load(Ordering::Relaxed),
        }
    }

    fn record_run(&self, run: &RunResult) {
        self.sim_loads.fetch_add(run.loads, Ordering::Relaxed);
        self.sim_accesses
            .fetch_add(run.loads + run.stores, Ordering::Relaxed);
    }

    /// Looks `key` up in `map`, computing with `compute` exactly once per
    /// key (other threads block on the same slot rather than recomputing).
    fn get_or_run<K, T, F>(
        &self,
        map: &Mutex<HashMap<K, Slot<T>>>,
        key: K,
        compute: F,
    ) -> Result<Arc<T>, PipelineError>
    where
        K: std::hash::Hash + Eq,
        F: FnOnce() -> Result<T, PipelineError>,
    {
        let slot = {
            // A worker that panicked while holding the lock only ever
            // held it to clone a slot out; the map itself stays valid.
            let mut map = map.lock().unwrap_or_else(PoisonError::into_inner);
            map.entry(key).or_default().clone()
        };
        let mut ran = false;
        let result = slot.get_or_init(|| {
            ran = true;
            compute().map(Arc::new)
        });
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Edge-frequency-only instrumented run (memoized). The edge-only
    /// instrumentation does not read the prefetch config, so ablation
    /// sweeps share this run too.
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`PipelineError`].
    pub fn edge_only(
        &self,
        module: &Module,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<Arc<(EdgeProfile, RunResult)>, PipelineError> {
        let key = Key {
            module_fingerprint: fingerprint_module(module),
            kind: RunKind::EdgeOnly,
            args: args.to_vec(),
            config_fingerprint: fingerprint_machine(config),
        };
        self.get_or_run(&self.edge_runs, key, || {
            let out = run_edge_only(module, args, config)?;
            self.record_run(&out.1);
            Ok(out)
        })
    }

    /// Integrated profiling run under `variant` with `args` (memoized).
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`PipelineError`].
    pub fn profiling(
        &self,
        module: &Module,
        variant: ProfilingVariant,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<Arc<ProfileOutcome>, PipelineError> {
        let key = Key {
            module_fingerprint: fingerprint_module(module),
            kind: RunKind::Profiling(variant),
            args: args.to_vec(),
            config_fingerprint: fingerprint_full(config),
        };
        self.get_or_run(&self.profiles, key, || {
            let out = run_profiling(module, args, variant, config)?;
            self.record_run(&out.run);
            Ok(out)
        })
    }

    /// Uninstrumented run of a module (baseline or transformed), memoized
    /// by the module's *content*: the repro harness transforms the same
    /// workload under many profile sources, and whenever two sources
    /// select the same prefetches the resulting modules — and hence this
    /// run — are identical.
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`PipelineError`].
    pub fn plain_run(
        &self,
        module: &Module,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<Arc<(RunResult, HierarchyStats)>, PipelineError> {
        let key = PlainKey {
            module_fingerprint: fingerprint_module(module),
            args: args.to_vec(),
            config_fingerprint: fingerprint_machine(config),
        };
        self.get_or_run(&self.plain_runs, key, || {
            let out = run_uninstrumented(module, args, config)?;
            self.record_run(&out.0);
            Ok(out)
        })
    }

    /// The Fig. 16 speedup experiment with its train-input profiling run,
    /// reference-input baseline, and transformed-binary run all served
    /// from the cache (the last keyed by transformed-module content).
    /// Equivalent to [`crate::measure_speedup`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's [`PipelineError`].
    pub fn speedup(
        &self,
        module: &Module,
        train_args: &[i64],
        ref_args: &[i64],
        variant: ProfilingVariant,
        config: &PipelineConfig,
    ) -> Result<SpeedupOutcome, PipelineError> {
        // The two-pass baseline performs its own double profiling pass;
        // its inner edge-only run is not shared here, but the profiling
        // outcome as a whole still memoizes.
        let outcome = self.profiling(module, variant, train_args, config)?;
        let (transformed, classification, report) = prefetch_with_profiles(
            module,
            &outcome.edge,
            outcome.source,
            &outcome.stride,
            config,
        );
        let base = self.plain_run(module, ref_args, config)?;
        let pf = self.plain_run(&transformed, ref_args, config)?;
        Ok(SpeedupOutcome {
            baseline_cycles: base.0.cycles,
            prefetch_cycles: pf.0.cycles,
            speedup: base.0.cycles as f64 / pf.0.cycles.max(1) as f64,
            classification,
            report,
            baseline_mem: base.1,
            prefetch_mem: pf.1,
            vm_fused_dispatch: base.0.fused_dispatch + pf.0.fused_dispatch,
            vm_fastpath_load_hits: base.0.fastpath_load_hits + pf.0.fastpath_load_hits,
            vm_selfprof_overhead_cycles: base.0.selfprof_overhead_cycles
                + pf.0.selfprof_overhead_cycles,
        })
    }

    /// [`RunCache::speedup`] under a fault plan: the profiling run uses
    /// the injector's VM overrides (and is cached under that distinct
    /// config fingerprint), the collected profiles are mutated per the
    /// plan, and the measurement runs stay clean — still served from and
    /// shared with the unfaulted cache entries. `workload` is the name
    /// the plan's `@workload` scoping matches against.
    ///
    /// # Errors
    ///
    /// Propagates injected profiling-run failures (fuel, address limit)
    /// and the parser's located error for a `malformed-ir` scenario.
    #[allow(clippy::too_many_arguments)]
    pub fn speedup_faulted(
        &self,
        module: &Module,
        workload: &str,
        train_args: &[i64],
        ref_args: &[i64],
        variant: ProfilingVariant,
        config: &PipelineConfig,
        injector: &FaultInjector,
    ) -> Result<SpeedupOutcome, PipelineError> {
        if !injector.affects(workload) {
            return self.speedup(module, train_args, ref_args, variant, config);
        }
        if injector.wants_malformed_ir(workload) {
            let text = corrupt_ir_text(injector.plan().seed, &stride_ir::module_to_string(module));
            if let Err(e) = stride_ir::module_from_string(&text) {
                // Render the offending source line (with a caret) into the
                // diagnostic so the campaign report shows exactly what the
                // parser rejected.
                return Err(PipelineError::Malformed(format!(
                    "injected IR corruption: {}",
                    e.render(&text)
                )));
            }
        }
        let mut profiling_config = *config;
        profiling_config.vm = injector.vm_overrides(workload, profiling_config.vm);
        let outcome = self.profiling(module, variant, train_args, &profiling_config)?;
        let mut edge = outcome.edge.clone();
        let mut stride = outcome.stride.clone();
        injector.apply_to_profiles(workload, &mut edge, &mut stride);
        let (transformed, classification, report) =
            prefetch_with_profiles(module, &edge, outcome.source, &stride, config);
        let base = self.plain_run(module, ref_args, config)?;
        let pf = self.plain_run(&transformed, ref_args, config)?;
        Ok(SpeedupOutcome {
            baseline_cycles: base.0.cycles,
            prefetch_cycles: pf.0.cycles,
            speedup: base.0.cycles as f64 / pf.0.cycles.max(1) as f64,
            classification,
            report,
            baseline_mem: base.1,
            prefetch_mem: pf.1,
            vm_fused_dispatch: base.0.fused_dispatch + pf.0.fused_dispatch,
            vm_fastpath_load_hits: base.0.fastpath_load_hits + pf.0.fastpath_load_hits,
            vm_selfprof_overhead_cycles: base.0.selfprof_overhead_cycles
                + pf.0.selfprof_overhead_cycles,
        })
    }

    /// The Figs. 20–22 overhead experiment with both underlying runs
    /// served from the cache. Equivalent to [`crate::measure_overhead`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's [`PipelineError`].
    pub fn overhead(
        &self,
        module: &Module,
        train_args: &[i64],
        variant: ProfilingVariant,
        config: &PipelineConfig,
    ) -> Result<OverheadOutcome, PipelineError> {
        let edge = self.edge_only(module, train_args, config)?;
        let outcome = self.profiling(module, variant, train_args, config)?;
        let edge_run = &edge.1;
        let loads = outcome.run.loads.max(1) as f64;
        Ok(OverheadOutcome {
            edge_cycles: edge_run.cycles,
            integrated_cycles: outcome.run.cycles,
            overhead: (outcome.run.cycles as f64 - edge_run.cycles as f64)
                / edge_run.cycles.max(1) as f64,
            strideprof_fraction: outcome.stats.processed as f64 / loads,
            lfu_fraction: outcome.stats.lfu_inserts as f64 / loads,
            call_fraction: outcome.stats.calls as f64 / loads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{measure_overhead, measure_speedup};
    use stride_ir::{ModuleBuilder, Operand};

    /// A small strided workload: repeated sweeps over a flat array.
    fn sweep_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 1 << 18);
        let f = mb.declare_function("main", 2);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let sum = fb.mov(0i64);
        fb.counted_loop(fb.param(0), |fb, _| {
            fb.counted_loop(fb.param(1), |fb, i| {
                let off = fb.mul(i, 64i64);
                let a = fb.add(base, off);
                let (v, _) = fb.load(a, 0);
                fb.bin_to(sum, stride_ir::BinOp::Add, sum, v);
            });
        });
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        mb.finish()
    }

    const TRAIN: &[i64] = &[3, 500];
    const REF: &[i64] = &[4, 900];

    #[test]
    fn baseline_hits_after_first_run() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        let a = cache.plain_run(&m, REF, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
        let b = cache.plain_run(&m, REF, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(a.0.cycles, b.0.cycles);
        assert!(cache.stats().sim_loads > 0);
    }

    #[test]
    fn different_args_are_different_entries() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        cache.plain_run(&m, REF, &cfg).unwrap();
        cache.plain_run(&m, TRAIN, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn machine_config_change_invalidates_baseline() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        cache.plain_run(&m, REF, &cfg).unwrap();
        let mut faster = cfg;
        faster.hierarchy.mem_latency += 40;
        cache.plain_run(&m, REF, &faster).unwrap();
        assert_eq!(cache.stats().misses, 2, "changed hierarchy must re-run");
    }

    #[test]
    fn prefetch_config_change_keeps_baseline_but_invalidates_profiling() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        cache.plain_run(&m, REF, &cfg).unwrap();
        cache
            .profiling(&m, ProfilingVariant::EdgeCheck, TRAIN, &cfg)
            .unwrap();
        let mut tweaked = cfg;
        tweaked.prefetch.thresholds.trip_count_threshold *= 2;
        // baseline does not observe prefetch config: hit
        cache.plain_run(&m, REF, &tweaked).unwrap();
        // profiling does: miss
        cache
            .profiling(&m, ProfilingVariant::EdgeCheck, TRAIN, &tweaked)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn variants_do_not_share_profiling_entries() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        for v in [ProfilingVariant::EdgeCheck, ProfilingVariant::NaiveAll] {
            cache.profiling(&m, v, TRAIN, &cfg).unwrap();
        }
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_speedup_matches_uncached_measure() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        let cached = cache
            .speedup(&m, TRAIN, REF, ProfilingVariant::EdgeCheck, &cfg)
            .unwrap();
        let direct = measure_speedup(&m, TRAIN, REF, ProfilingVariant::EdgeCheck, &cfg).unwrap();
        assert_eq!(cached.baseline_cycles, direct.baseline_cycles);
        assert_eq!(cached.prefetch_cycles, direct.prefetch_cycles);
        assert_eq!(
            cached.report.prefetches_inserted,
            direct.report.prefetches_inserted
        );
    }

    #[test]
    fn cached_overhead_matches_uncached_measure() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        let v = ProfilingVariant::NaiveLoop;
        let cached = cache.overhead(&m, TRAIN, v, &cfg).unwrap();
        let direct = measure_overhead(&m, TRAIN, v, &cfg).unwrap();
        assert_eq!(cached.edge_cycles, direct.edge_cycles);
        assert_eq!(cached.integrated_cycles, direct.integrated_cycles);
        assert!((cached.overhead - direct.overhead).abs() < 1e-12);
    }

    #[test]
    fn overhead_reuses_speedup_profiling_run() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        let v = ProfilingVariant::EdgeCheck;
        cache.speedup(&m, TRAIN, REF, v, &cfg).unwrap();
        let before = cache.stats();
        cache.overhead(&m, TRAIN, v, &cfg).unwrap();
        let after = cache.stats();
        // only the edge-only baseline is new; the profiling run hits
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn identical_modules_share_one_run_regardless_of_origin() {
        let m = sweep_module();
        let copy = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        cache.plain_run(&m, REF, &cfg).unwrap();
        cache.plain_run(&copy, REF, &cfg).unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 1, "content-identical modules share one run");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn profiling_runs_are_content_addressed_too() {
        let m = sweep_module();
        let copy = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        cache
            .profiling(&m, ProfilingVariant::EdgeCheck, TRAIN, &cfg)
            .unwrap();
        cache
            .profiling(&copy, ProfilingVariant::EdgeCheck, TRAIN, &cfg)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 1, "a resubmitted identical module hits");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let m = sweep_module();
        let cfg = PipelineConfig::default();
        let cache = RunCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| cache.plain_run(&m, REF, &cfg).unwrap().0.cycles);
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one computation under contention");
        assert_eq!(stats.hits, 3);
    }
}
