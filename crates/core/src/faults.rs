//! Deterministic fault injection at the pipeline's layer boundaries.
//!
//! A [`FaultPlan`] is a seed plus a list of [`FaultScenario`]s, each
//! naming one [`FaultKind`] and optionally one workload it applies to.
//! Faults are applied by a [`FaultInjector`] at exactly three places:
//!
//! * **VM configuration** ([`FaultInjector::vm_overrides`]): fuel caps
//!   (mid-run [`stride_vm::VmError::OutOfFuel`]) and shrunken address
//!   limits (wild demand accesses surface as `InvalidMemoryAccess`).
//! * **IR text** ([`corrupt_ir_text`]): a deterministic byte-level
//!   corruption of the module's printed form, exercising the parser's
//!   structured [`stride_ir::ParseError`] path.
//! * **Profiles** ([`FaultInjector::apply_to_profiles`]): truncated or
//!   corrupted stride top-N tables, dropped LFU counter updates,
//!   saturated frequency counters, and stale (remapped) profile sites —
//!   the shape of a run-cache entry recorded against an older module
//!   revision.
//!
//! Everything is keyed off `splitmix64(seed ^ site)`, never off iteration
//! order, global state or time, so the same plan produces byte-identical
//! outcomes at any `--jobs` level.
//!
//! # The degradation contract
//!
//! Every profile fault is *loss-shaped*: it can only remove top-table
//! entries, lower counter values, or invalidate sites — never raise a
//! ratio the Fig. 5 classifier compares against its thresholds (totals
//! are kept when entries are dropped, so ratios only fall). Hence under
//! any plan the faulted prefetch set is a subset of the clean one:
//! classification may move loads *out of* SSST/PMST/WSST toward
//! no-prefetch, never into them. [`degradation_violations`] checks that
//! invariant for a (clean, faulted) classification pair.

use crate::classify::Classification;
use crate::error::PipelineError;
use crate::pipeline::{
    prefetch_with_profiles, run_profiling, run_uninstrumented, PipelineConfig, ProfilingVariant,
    SpeedupOutcome,
};
use std::collections::BTreeSet;
use stride_ir::{InstrId, Module};
use stride_profiling::{EdgeProfile, StrideProfile};
use stride_vm::VmConfig;

/// splitmix64: a tiny, seedable, statistically solid mixer. Used both as
/// a stream RNG and as a keyed hash for order-independent site selection.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64_mix(self.state)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent per-site hash: the same (seed, func, site) always
/// selects or spares a site, regardless of how profiles are iterated.
fn site_hash(seed: u64, func: stride_ir::FuncId, site: InstrId) -> u64 {
    splitmix64_mix(seed ^ ((func.index() as u64) << 32) ^ site.index() as u64)
}

/// Instruction-id offset used by [`FaultKind::StaleProfile`] to remap
/// sites out of the module (simulating a profile recorded against an
/// older module revision).
pub const STALE_SITE_OFFSET: u32 = 1 << 20;

/// One kind of injected failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Truncate every stride profile's top-N table to `keep` entries,
    /// keeping `total_freq` (table loss, not sample loss).
    TruncateStrideTop {
        /// Entries kept per table (0 empties every table).
        keep: usize,
    },
    /// Remove the whole stride profile of one in `modulus` sites.
    DropStrideSites {
        /// Selection modulus (1 drops every site).
        modulus: u64,
    },
    /// Zero the top-table frequencies of one in `modulus` sites (a
    /// corrupted table the classifier must reject, not divide by).
    CorruptStrideTables {
        /// Selection modulus (1 corrupts every site).
        modulus: u64,
    },
    /// Lose `percent`% of LFU counter updates: top-table entry counts
    /// shrink while the reference total keeps ticking.
    DropLfuUpdates {
        /// Percentage of update mass lost, 0–100.
        percent: u64,
    },
    /// Clamp every edge/block frequency counter at `cap`.
    SaturateFreqCounters {
        /// Upper bound applied to every counter.
        cap: u64,
    },
    /// Clamp every stride top-table entry count and zero-diff count at
    /// `cap`, keeping totals (ratios can only fall).
    SaturateStrideCounters {
        /// Upper bound applied to per-entry counts.
        cap: u64,
    },
    /// Cap the profiling run's VM fuel, forcing mid-run
    /// [`stride_vm::VmError::OutOfFuel`].
    FuelExhaustion {
        /// Dynamic-instruction budget for the profiling run.
        fuel: u64,
    },
    /// Shrink the VM's simulated address space for the profiling run, so
    /// out-of-range demand accesses surface as `InvalidMemoryAccess`.
    AddressLimit {
        /// Exclusive address upper bound.
        limit: u64,
    },
    /// Corrupt the module's printed IR before re-parsing it, exercising
    /// the parser's structured error path.
    MalformedIr,
    /// Remap every stride-profile site id past the module's instruction
    /// space: the shape of a stale run-cache entry whose module hash no
    /// longer matches.
    StaleProfile,
    /// Disk: the next WAL append persists only the first `at` bytes of
    /// the record and errors — a crash mid-write. One-shot.
    DiskTornWrite {
        /// Bytes of the record that reach the disk.
        at: u64,
    },
    /// Disk: the next WAL append silently flips bit `bit % record_bits`
    /// — latent corruption only a checksum catches. One-shot.
    DiskBitFlip {
        /// Bit index (mod record size) to flip.
        bit: u64,
    },
    /// Disk: the `nth` upcoming fsync (1-based) fails, so the merge must
    /// not be acknowledged. One-shot.
    DiskFsyncFail {
        /// Which fsync fails.
        nth: u64,
    },
    /// Disk: recovery reads at most `len` bytes of the WAL — a short
    /// read from a failing device.
    DiskShortRead {
        /// Byte cap on the recovery read.
        len: u64,
    },
    /// Net: the server drops its `nth` (1-based) response — the frame
    /// vanishes and the connection closes.
    NetDropFrame {
        /// Which response is dropped.
        nth: u64,
    },
    /// Net: the client sends its `nth` request frame twice (duplicate
    /// delivery — what idempotency ids must absorb).
    NetDupFrame {
        /// Which request is duplicated.
        nth: u64,
    },
    /// Net: the server truncates its `nth` response mid-frame and closes
    /// — the client's checksum must catch the partial bytes.
    NetTruncFrame {
        /// Which response is truncated.
        nth: u64,
    },
    /// Net: the server resets the connection before answering its `nth`
    /// request (RST instead of FIN where the platform allows).
    NetReset {
        /// Which request triggers the reset.
        nth: u64,
    },
    /// Net: the server stalls `ms` milliseconds before each response —
    /// the shape of a congested or half-dead peer.
    NetStall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

impl FaultKind {
    /// The spec-string name this kind parses from (see
    /// [`FaultPlan::parse`]).
    pub fn spec_name(&self) -> &'static str {
        match self {
            FaultKind::TruncateStrideTop { .. } => "truncate",
            FaultKind::DropStrideSites { .. } => "drop-sites",
            FaultKind::CorruptStrideTables { .. } => "corrupt",
            FaultKind::DropLfuUpdates { .. } => "drop-updates",
            FaultKind::SaturateFreqCounters { .. } => "clamp-freq",
            FaultKind::SaturateStrideCounters { .. } => "clamp-stride",
            FaultKind::FuelExhaustion { .. } => "fuel",
            FaultKind::AddressLimit { .. } => "addr-limit",
            FaultKind::MalformedIr => "malformed-ir",
            FaultKind::StaleProfile => "stale-profile",
            FaultKind::DiskTornWrite { .. } => "disk-torn",
            FaultKind::DiskBitFlip { .. } => "disk-bitflip",
            FaultKind::DiskFsyncFail { .. } => "disk-fsync-fail",
            FaultKind::DiskShortRead { .. } => "disk-short-read",
            FaultKind::NetDropFrame { .. } => "net-drop",
            FaultKind::NetDupFrame { .. } => "net-dup",
            FaultKind::NetTruncFrame { .. } => "net-trunc",
            FaultKind::NetReset { .. } => "net-reset",
            FaultKind::NetStall { .. } => "net-stall",
        }
    }
}

/// One fault applied to one workload (or to all of them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultScenario {
    /// What to break.
    pub kind: FaultKind,
    /// Workload name the fault is scoped to; `None` applies everywhere.
    pub target: Option<String>,
}

impl FaultScenario {
    /// Does this scenario apply to `workload`?
    pub fn applies_to(&self, workload: &str) -> bool {
        self.target.as_deref().is_none_or(|t| t == workload)
    }

    /// Renders the scenario back into spec-string form.
    pub fn spec(&self) -> String {
        let head = match &self.kind {
            FaultKind::TruncateStrideTop { keep } => format!("truncate={keep}"),
            FaultKind::DropStrideSites { modulus } => format!("drop-sites={modulus}"),
            FaultKind::CorruptStrideTables { modulus } => format!("corrupt={modulus}"),
            FaultKind::DropLfuUpdates { percent } => format!("drop-updates={percent}"),
            FaultKind::SaturateFreqCounters { cap } => format!("clamp-freq={cap}"),
            FaultKind::SaturateStrideCounters { cap } => format!("clamp-stride={cap}"),
            FaultKind::FuelExhaustion { fuel } => format!("fuel={fuel}"),
            FaultKind::AddressLimit { limit } => format!("addr-limit={limit}"),
            FaultKind::MalformedIr => "malformed-ir".to_string(),
            FaultKind::StaleProfile => "stale-profile".to_string(),
            FaultKind::DiskTornWrite { at } => format!("disk-torn={at}"),
            FaultKind::DiskBitFlip { bit } => format!("disk-bitflip={bit}"),
            FaultKind::DiskFsyncFail { nth } => format!("disk-fsync-fail={nth}"),
            FaultKind::DiskShortRead { len } => format!("disk-short-read={len}"),
            FaultKind::NetDropFrame { nth } => format!("net-drop={nth}"),
            FaultKind::NetDupFrame { nth } => format!("net-dup={nth}"),
            FaultKind::NetTruncFrame { nth } => format!("net-trunc={nth}"),
            FaultKind::NetReset { nth } => format!("net-reset={nth}"),
            FaultKind::NetStall { ms } => format!("net-stall={ms}"),
        };
        match &self.target {
            Some(t) => format!("{head}@{t}"),
            None => head,
        }
    }
}

/// A reproducible fault campaign: a seed plus the scenarios to inject.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for all site selection and byte corruption.
    pub seed: u64,
    /// Faults to apply, in order.
    pub scenarios: Vec<FaultScenario>,
}

impl FaultPlan {
    /// Parses a `--inject` spec string.
    ///
    /// Grammar: semicolon-separated clauses, each
    /// `name[=value][@workload]`. `seed=N` sets the seed (default 0);
    /// every other clause appends a scenario:
    ///
    /// ```text
    /// seed=42;fuel=100000@181.mcf;truncate=2;stale-profile@254.gap
    /// ```
    ///
    /// # Errors
    ///
    /// [`PipelineError::BadFaultPlan`] on unknown clause names, missing
    /// or unparsable values, or a targeted `seed`.
    pub fn parse(spec: &str) -> Result<FaultPlan, PipelineError> {
        let bad = |msg: String| PipelineError::BadFaultPlan(msg);
        let mut plan = FaultPlan::default();
        for raw in spec.split(';') {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            let (head, target) = match clause.split_once('@') {
                Some((h, t)) if t.trim().is_empty() => {
                    return Err(bad(format!("empty workload target in `{h}@`")));
                }
                Some((h, t)) => (h.trim(), Some(t.trim().to_string())),
                None => (clause, None),
            };
            let (name, value) = match head.split_once('=') {
                Some((n, v)) => (n.trim(), Some(v.trim())),
                None => (head, None),
            };
            let num = |what: &str| -> Result<u64, PipelineError> {
                let v = value.ok_or_else(|| bad(format!("`{name}` needs `{name}=<{what}>`")))?;
                v.parse::<u64>()
                    .map_err(|_| bad(format!("`{name}={v}`: not a number")))
            };
            let kind = match name {
                "seed" => {
                    if target.is_some() {
                        return Err(bad("`seed` cannot take an @workload target".to_string()));
                    }
                    plan.seed = num("seed")?;
                    continue;
                }
                "truncate" => FaultKind::TruncateStrideTop {
                    keep: num("entries")? as usize,
                },
                "drop-sites" => FaultKind::DropStrideSites {
                    modulus: num("modulus")?.max(1),
                },
                "corrupt" => FaultKind::CorruptStrideTables {
                    modulus: num("modulus")?.max(1),
                },
                "drop-updates" => FaultKind::DropLfuUpdates {
                    percent: num("percent")?.min(100),
                },
                "clamp-freq" => FaultKind::SaturateFreqCounters { cap: num("cap")? },
                "clamp-stride" => FaultKind::SaturateStrideCounters { cap: num("cap")? },
                "fuel" => FaultKind::FuelExhaustion { fuel: num("fuel")? },
                "addr-limit" => FaultKind::AddressLimit {
                    limit: num("limit")?,
                },
                "malformed-ir" => FaultKind::MalformedIr,
                "stale-profile" => FaultKind::StaleProfile,
                "disk-torn" => FaultKind::DiskTornWrite { at: num("bytes")? },
                "disk-bitflip" => FaultKind::DiskBitFlip { bit: num("bit")? },
                "disk-fsync-fail" => FaultKind::DiskFsyncFail {
                    nth: num("nth")?.max(1),
                },
                "disk-short-read" => FaultKind::DiskShortRead { len: num("bytes")? },
                "net-drop" => FaultKind::NetDropFrame {
                    nth: num("nth")?.max(1),
                },
                "net-dup" => FaultKind::NetDupFrame {
                    nth: num("nth")?.max(1),
                },
                "net-trunc" => FaultKind::NetTruncFrame {
                    nth: num("nth")?.max(1),
                },
                "net-reset" => FaultKind::NetReset {
                    nth: num("nth")?.max(1),
                },
                "net-stall" => FaultKind::NetStall { ms: num("ms")? },
                other => return Err(bad(format!("unknown fault `{other}`"))),
            };
            if name != "malformed-ir" && name != "stale-profile" && value.is_none() {
                return Err(bad(format!("`{name}` needs a value")));
            }
            plan.scenarios.push(FaultScenario { kind, target });
        }
        Ok(plan)
    }

    /// Renders the plan back into spec-string form (parses to an equal
    /// plan).
    pub fn spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        parts.extend(self.scenarios.iter().map(FaultScenario::spec));
        parts.join(";")
    }
}

/// Applies a [`FaultPlan`] at the pipeline's boundaries.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn active<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a FaultKind> {
        self.plan
            .scenarios
            .iter()
            .filter(move |s| s.applies_to(workload))
            .map(|s| &s.kind)
    }

    /// Does any scenario at all target `workload`?
    pub fn affects(&self, workload: &str) -> bool {
        self.active(workload).next().is_some()
    }

    /// VM-config overrides for `workload`'s *profiling* run (measurement
    /// runs stay clean: faults perturb the feedback loop, not the
    /// yardstick).
    pub fn vm_overrides(&self, workload: &str, mut vm: VmConfig) -> VmConfig {
        for kind in self.active(workload) {
            match *kind {
                FaultKind::FuelExhaustion { fuel } => vm.fuel = vm.fuel.min(fuel),
                FaultKind::AddressLimit { limit } => vm.addr_limit = vm.addr_limit.min(limit),
                _ => {}
            }
        }
        vm
    }

    /// Does the plan corrupt `workload`'s IR text?
    pub fn wants_malformed_ir(&self, workload: &str) -> bool {
        self.active(workload)
            .any(|k| matches!(k, FaultKind::MalformedIr))
    }

    /// Mutates freshly-collected profiles according to the plan. All
    /// mutations are loss-shaped (see the module docs).
    pub fn apply_to_profiles(
        &self,
        workload: &str,
        edge: &mut EdgeProfile,
        stride: &mut StrideProfile,
    ) {
        let seed = self.plan.seed;
        for kind in self.active(workload) {
            match *kind {
                FaultKind::TruncateStrideTop { keep } => {
                    stride.for_each_mut(|_, _, p| p.top.truncate(keep));
                }
                FaultKind::DropStrideSites { modulus } => {
                    stride.retain(|f, s, _| !site_hash(seed, f, s).is_multiple_of(modulus));
                }
                FaultKind::CorruptStrideTables { modulus } => {
                    stride.for_each_mut(|f, s, p| {
                        if site_hash(seed.wrapping_add(1), f, s).is_multiple_of(modulus) {
                            for entry in &mut p.top {
                                entry.1 = 0;
                            }
                        }
                    });
                }
                FaultKind::DropLfuUpdates { percent } => {
                    let kept = 100 - percent.min(100);
                    stride.for_each_mut(|_, _, p| {
                        for entry in &mut p.top {
                            entry.1 = entry.1 / 100 * kept + entry.1 % 100 * kept / 100;
                        }
                    });
                }
                FaultKind::SaturateFreqCounters { cap } => edge.clamp(cap),
                FaultKind::SaturateStrideCounters { cap } => {
                    stride.for_each_mut(|_, _, p| {
                        for entry in &mut p.top {
                            entry.1 = entry.1.min(cap);
                        }
                        p.num_zero_diff = p.num_zero_diff.min(cap);
                    });
                }
                FaultKind::StaleProfile => {
                    let mut stale = StrideProfile::new();
                    for (f, s, p) in stride.iter() {
                        let id = InstrId::new(s.index() as u32 + STALE_SITE_OFFSET);
                        stale.insert(f, id, p.clone());
                    }
                    *stride = stale;
                }
                // Disk and net faults act at the store and wire layers
                // (the server converts them); profiles are untouched.
                FaultKind::FuelExhaustion { .. }
                | FaultKind::AddressLimit { .. }
                | FaultKind::MalformedIr
                | FaultKind::DiskTornWrite { .. }
                | FaultKind::DiskBitFlip { .. }
                | FaultKind::DiskFsyncFail { .. }
                | FaultKind::DiskShortRead { .. }
                | FaultKind::NetDropFrame { .. }
                | FaultKind::NetDupFrame { .. }
                | FaultKind::NetTruncFrame { .. }
                | FaultKind::NetReset { .. }
                | FaultKind::NetStall { .. } => {}
            }
        }
    }
}

/// Deterministically corrupts one instruction's `=` into `~` (or appends
/// a garbage line when the text has no assignments), guaranteeing a parse
/// failure with a located [`stride_ir::ParseError`].
pub fn corrupt_ir_text(seed: u64, text: &str) -> String {
    let sites: Vec<usize> = text.match_indices(" = ").map(|(i, _)| i).collect();
    if sites.is_empty() {
        return format!("{text}\n~corrupted~\n");
    }
    let pick = sites[(splitmix64_mix(seed) % sites.len() as u64) as usize];
    let mut out = String::with_capacity(text.len());
    out.push_str(&text[..pick]);
    out.push_str(" ~ ");
    out.push_str(&text[pick + 3..]);
    out
}

/// Fault-aware variant of [`crate::measure_speedup`]: profiles under the
/// plan's VM overrides, mutates the collected profiles, then measures
/// baseline and prefetching binaries under the *clean* config.
///
/// # Errors
///
/// Propagates profiling-run VM failures (the injected fuel/address
/// faults) and, for a `malformed-ir` scenario, the parser's located
/// error — each as a [`PipelineError`] the caller can report while other
/// workloads continue.
pub fn measure_speedup_faulted(
    module: &Module,
    train_args: &[i64],
    ref_args: &[i64],
    variant: ProfilingVariant,
    config: &PipelineConfig,
    injector: &FaultInjector,
    workload: &str,
) -> Result<SpeedupOutcome, PipelineError> {
    if injector.wants_malformed_ir(workload) {
        let text = corrupt_ir_text(injector.plan().seed, &stride_ir::module_to_string(module));
        // The corruption targets an instruction, so this parse fails and
        // surfaces the located error; tolerate the (never observed) case
        // of the corruption parsing anyway by falling through.
        stride_ir::module_from_string(&text)?;
    }
    let mut profiling_config = *config;
    profiling_config.vm = injector.vm_overrides(workload, profiling_config.vm);
    let outcome = run_profiling(module, train_args, variant, &profiling_config)?;
    let (mut edge, mut stride) = (outcome.edge, outcome.stride);
    injector.apply_to_profiles(workload, &mut edge, &mut stride);
    let (transformed, classification, report) =
        prefetch_with_profiles(module, &edge, outcome.source, &stride, config);
    let (base, base_mem) = run_uninstrumented(module, ref_args, config)?;
    let (pf, pf_mem) = run_uninstrumented(&transformed, ref_args, config)?;
    Ok(SpeedupOutcome {
        baseline_cycles: base.cycles,
        prefetch_cycles: pf.cycles,
        speedup: base.cycles as f64 / pf.cycles.max(1) as f64,
        classification,
        report,
        baseline_mem: base_mem,
        prefetch_mem: pf_mem,
        vm_fused_dispatch: base.fused_dispatch + pf.fused_dispatch,
        vm_fastpath_load_hits: base.fastpath_load_hits + pf.fastpath_load_hits,
        vm_selfprof_overhead_cycles: base.selfprof_overhead_cycles + pf.selfprof_overhead_cycles,
    })
}

/// Checks the degradation invariant: every load the faulted
/// classification prefetches must also be prefetched by the clean one
/// (faults only move loads toward no-prefetch). Returns one line per
/// violation; empty means the invariant held.
pub fn degradation_violations(clean: &Classification, faulted: &Classification) -> Vec<String> {
    let clean_sites: BTreeSet<(usize, usize)> = clean
        .loads
        .iter()
        .map(|l| (l.func.index(), l.site.index()))
        .collect();
    let mut violations = Vec::new();
    for l in &faulted.loads {
        if !clean_sites.contains(&(l.func.index(), l.site.index())) {
            violations.push(format!(
                "load {}:{} classified {} under fault but unclassified clean",
                l.func, l.site, l.class
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::FuncId;
    use stride_profiling::LoadStrideProfile;

    fn sample_stride() -> StrideProfile {
        let mut s = StrideProfile::new();
        for i in 0..8u32 {
            s.insert(
                FuncId::new(0),
                InstrId::new(i),
                LoadStrideProfile {
                    top: vec![(64, 900), (8, 50), (16, 30), (24, 10)],
                    total_freq: 1000,
                    num_zero_stride: 0,
                    num_zero_diff: 800,
                    total_diffs: 999,
                },
            );
        }
        s
    }

    #[test]
    fn parse_round_trips() {
        let plan = FaultPlan::parse("seed=42;fuel=100000@181.mcf;truncate=2;stale-profile@254.gap")
            .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.scenarios.len(), 3);
        assert_eq!(
            plan.scenarios[0],
            FaultScenario {
                kind: FaultKind::FuelExhaustion { fuel: 100_000 },
                target: Some("181.mcf".to_string()),
            }
        );
        let reparsed = FaultPlan::parse(&plan.spec()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn disk_and_net_faults_parse_and_are_profile_noops() {
        let spec = "seed=5;disk-torn=12;disk-bitflip=77;disk-fsync-fail=2;disk-short-read=100;\
                    net-drop=1;net-dup=3;net-trunc=2;net-reset=1;net-stall=40";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.scenarios.len(), 9);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        // They act at the store/wire layers; profiles are untouched.
        let inj = FaultInjector::new(plan);
        let mut edge = EdgeProfile::default();
        let mut s = sample_stride();
        inj.apply_to_profiles("w", &mut edge, &mut s);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|(_, _, p)| p.top.len() == 4));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            FaultPlan::parse("explode=1"),
            Err(PipelineError::BadFaultPlan(_))
        ));
        assert!(FaultPlan::parse("fuel").is_err());
        assert!(FaultPlan::parse("fuel=abc").is_err());
        assert!(FaultPlan::parse("seed=1@181.mcf").is_err());
        assert!(FaultPlan::parse("truncate=1@").is_err());
    }

    #[test]
    fn scenario_targeting_scopes_faults() {
        let plan = FaultPlan::parse("seed=7;truncate=0@181.mcf").unwrap();
        let inj = FaultInjector::new(plan);
        let mut edge = EdgeProfile::default();
        let mut hit = sample_stride();
        let mut missed = sample_stride();
        inj.apply_to_profiles("181.mcf", &mut edge, &mut hit);
        inj.apply_to_profiles("254.gap", &mut edge, &mut missed);
        assert!(hit.iter().all(|(_, _, p)| p.top.is_empty()));
        assert!(missed.iter().all(|(_, _, p)| p.top.len() == 4));
    }

    #[test]
    fn profile_faults_are_loss_shaped() {
        // Under every profile fault, every surviving (site, ratio) is <=
        // the clean one — the structural half of the degradation
        // invariant.
        let clean = sample_stride();
        for spec in [
            "truncate=1",
            "drop-sites=2",
            "corrupt=2",
            "drop-updates=37",
            "clamp-stride=100",
        ] {
            let plan = FaultPlan::parse(&format!("seed=99;{spec}")).unwrap();
            let inj = FaultInjector::new(plan);
            let mut edge = EdgeProfile::default();
            let mut faulted = sample_stride();
            inj.apply_to_profiles("w", &mut edge, &mut faulted);
            for (f, s, p) in faulted.iter() {
                let orig = clean.iter().find(|&(cf, cs, _)| (cf, cs) == (f, s));
                let orig = orig.map(|(_, _, p)| p).unwrap();
                assert_eq!(p.total_freq, orig.total_freq, "{spec}: total must be kept");
                assert!(
                    p.top1_ratio() <= orig.top1_ratio() + 1e-12,
                    "{spec}: top1 ratio rose"
                );
                assert!(
                    p.top4_ratio() <= orig.top4_ratio() + 1e-12,
                    "{spec}: top4 ratio rose"
                );
                assert!(
                    p.zero_diff_ratio() <= orig.zero_diff_ratio() + 1e-12,
                    "{spec}: zero-diff ratio rose"
                );
            }
        }
    }

    #[test]
    fn drop_sites_is_order_independent() {
        let plan = FaultPlan::parse("seed=3;drop-sites=2").unwrap();
        let inj = FaultInjector::new(plan);
        let mut edge = EdgeProfile::default();
        let mut a = sample_stride();
        let mut b = sample_stride();
        inj.apply_to_profiles("w", &mut edge, &mut a);
        inj.apply_to_profiles("w", &mut edge, &mut b);
        let keys = |s: &StrideProfile| s.iter().map(|(f, i, _)| (f, i)).collect::<Vec<_>>();
        assert_eq!(keys(&a), keys(&b));
        assert!(a.len() < 8, "modulus 2 should drop some of 8 sites");
    }

    #[test]
    fn stale_profile_remaps_every_site() {
        let plan = FaultPlan::parse("stale-profile").unwrap();
        let inj = FaultInjector::new(plan);
        let mut edge = EdgeProfile::default();
        let mut s = sample_stride();
        inj.apply_to_profiles("w", &mut edge, &mut s);
        assert_eq!(s.len(), 8);
        assert!(s
            .iter()
            .all(|(_, i, _)| i.index() >= STALE_SITE_OFFSET as usize));
    }

    #[test]
    fn vm_overrides_only_shrink() {
        let plan = FaultPlan::parse("fuel=1000;addr-limit=65536").unwrap();
        let inj = FaultInjector::new(plan);
        let vm = inj.vm_overrides("w", VmConfig::default());
        assert_eq!(vm.fuel, 1000);
        assert_eq!(vm.addr_limit, 65536);
        // An override larger than the configured value never raises it.
        let plan = FaultPlan::parse("fuel=999999999999").unwrap();
        let vm = FaultInjector::new(plan).vm_overrides("w", VmConfig::default());
        assert_eq!(vm.fuel, VmConfig::default().fuel);
    }

    #[test]
    fn corrupt_ir_text_breaks_the_parse_deterministically() {
        let text = "fn @main(1) {\nb0:\n    r1 = mov 7    ; i0\n    ret r1    ; i1\n}\n";
        let c1 = corrupt_ir_text(5, text);
        let c2 = corrupt_ir_text(5, text);
        assert_eq!(c1, c2);
        let err = stride_ir::module_from_string(&c1).unwrap_err();
        assert!(err.line > 0);
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = FaultRng::new(17);
        let mut b = FaultRng::new(17);
        let xs: Vec<u64> = (0..16).map(|_| a.below(1000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.below(1000)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != xs[0]), "stream must vary");
    }
}
