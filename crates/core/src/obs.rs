//! Deterministic observability: a metrics registry (counters, gauges,
//! fixed-bucket histograms) and a bounded structured event tracer.
//!
//! Everything here is std-only and designed around the repo's determinism
//! contract: snapshots are rendered in sorted name order, histograms use a
//! pure power-of-two bucket function, and *time* is always a logical clock
//! (VM instruction fuel, simulated cycles, request sequence numbers) —
//! never wall-clock. A registry fed exclusively from exactly-once
//! computations (the `RunCache` guarantees per-key exactly-once execution)
//! therefore snapshots to byte-identical text at any `--jobs` level.
//!
//! Hot-path cost: metric handles are `Arc`-shared atomics — registration
//! allocates once, updates are a single atomic RMW with no allocation.
//! Trace events are `Copy` (`&'static str` label + integer fields) written
//! into a preallocated ring, so recording never allocates either.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of histogram buckets: bucket 0 holds zero values, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i)`. Covers all of `u64` with a
/// pure function — no configuration, no float math, no clamping surprises.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value falls into: 0 for 0, else `floor(log2(v)) + 1`.
/// Pure — byte-identical bucketing everywhere, forever.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket (the inverse of [`bucket_index`]):
/// bucket 0 starts at 0, bucket `i >= 1` at `2^(i-1)`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A monotonically increasing counter handle. Clone freely; all clones
/// share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (saturating at `u64::MAX` is not needed — counters count
    /// events, and 2^64 events do not happen).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    max: AtomicU64,
}

/// A gauge: a settable level plus its high-water mark.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Sets the current level, raising the high-water mark if exceeded.
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    pub fn max_seen(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram over `u64` samples (power-of-two buckets, see
/// [`bucket_index`]). Observation is three relaxed atomic adds.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Samples observed.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Occupancy of one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.0.buckets[index].load(Ordering::Relaxed)
    }

    /// `(bucket index, occupancy)` for every nonempty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let c = self.bucket(i);
                (c > 0).then_some((i, c))
            })
            .collect()
    }

    /// Bucket-resolution quantile estimate: the inclusive lower bound of
    /// the bucket holding the `q`-th sample (`q` clamped to `[0, 1]`).
    /// With power-of-two buckets the estimate is within 2× of the true
    /// sample value — good enough for latency dashboards and budget
    /// assertions, with no per-sample storage. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based; q = 0 means the first
        // sample, q = 1 the last.
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.bucket(i);
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// One structured trace event. `Copy` by construction: the label is a
/// `&'static str`, the clock is a *logical* timestamp (fuel, cycles, or a
/// sequence number — never wall time), and `a`/`b` carry event-specific
/// integer payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical timestamp.
    pub clock: u64,
    /// Static event label (e.g. `"figure"`, `"request"`).
    pub label: &'static str,
    /// First payload field.
    pub a: u64,
    /// Second payload field.
    pub b: u64,
}

#[derive(Debug)]
struct TracerState {
    events: Vec<TraceEvent>,
    next: usize,
    total: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. The buffer is allocated once
/// at construction; recording overwrites the oldest slot and never
/// allocates. Snapshots sort by `(clock, label, a, b)` so concurrent
/// recorders with logical clocks still render deterministically.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    state: Mutex<TracerState>,
}

impl Tracer {
    /// A tracer holding at most `capacity` events (0 disables tracing).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            capacity,
            state: Mutex::new(TracerState {
                events: Vec::with_capacity(capacity),
                next: 0,
                total: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut st = self.lock();
        st.total += 1;
        if st.events.len() < self.capacity {
            st.events.push(event);
        } else {
            let at = st.next;
            st.events[at] = event;
        }
        st.next = (st.next + 1) % self.capacity;
    }

    /// Events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.lock().total
    }

    /// The retained events in deterministic `(clock, label, a, b)` order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = self.lock().events.clone();
        events.sort_by(|x, y| (x.clock, x.label, x.a, x.b).cmp(&(y.clock, y.label, y.a, y.b)));
        events
    }
}

/// The registry: named metrics plus one tracer. Lookup-or-create takes a
/// lock and may allocate; keep the returned handle for hot paths.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    tracer: Tracer,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with a 1024-event tracer.
    pub fn new() -> Self {
        Self::with_trace_capacity(1024)
    }

    /// An empty registry with a tracer of the given capacity.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            tracer: Tracer::with_capacity(capacity),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Convenience: add `n` to the counter named `name` (registration
    /// path — not for hot loops).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// The registry's tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records a trace event.
    pub fn trace(&self, event: TraceEvent) {
        self.tracer.record(event);
    }

    fn sorted_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    fn sorted_gauges(&self) -> Vec<(String, u64, u64)> {
        self.gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get(), v.max_seen()))
            .collect()
    }

    fn sorted_histograms(&self) -> Vec<(String, Histogram)> {
        self.histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Stable text rendering: one line per metric, sections in fixed
    /// order, names sorted (BTreeMap order). Byte-identical for equal
    /// metric contents.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.sorted_counters() {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v, max) in self.sorted_gauges() {
            out.push_str(&format!("gauge {name} {v} max {max}\n"));
        }
        for (name, h) in self.sorted_histograms() {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(i, c)| format!("{i}:{c}"))
                .collect();
            out.push_str(&format!(
                "histogram {name} count {} sum {} buckets {}\n",
                h.count(),
                h.sum(),
                if buckets.is_empty() {
                    "-".to_string()
                } else {
                    buckets.join(",")
                }
            ));
        }
        for e in self.tracer.snapshot() {
            out.push_str(&format!("trace {} {} {} {}\n", e.clock, e.label, e.a, e.b));
        }
        out
    }

    /// Stable JSON rendering (same ordering contract as
    /// [`Registry::snapshot_text`]).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.sorted_counters();
        for (i, (name, v)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{name}\": {v}"));
        }
        out.push_str(if counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let gauges = self.sorted_gauges();
        out.push_str("  \"gauges\": {");
        for (i, (name, v, max)) in gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    \"{name}\": {{\"value\": {v}, \"max\": {max}}}"
            ));
        }
        out.push_str(if gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let histograms = self.sorted_histograms();
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(b, c)| format!("\"{b}\": {c}"))
                .collect();
            out.push_str(&format!(
                "{sep}\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"buckets\": {{{}}}}}",
                h.count(),
                h.sum(),
                buckets.join(", ")
            ));
        }
        out.push_str(if histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"trace\": [");
        let events = self.tracer.snapshot();
        for (i, e) in events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    {{\"clock\": {}, \"label\": \"{}\", \"a\": {}, \"b\": {}}}",
                e.clock, e.label, e.a, e.b
            ));
        }
        out.push_str(if events.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_pure_pow2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            // The lower bound maps back into its own bucket.
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
        }
        // And the value just below each bound lands in the bucket below.
        for i in 2..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i) - 1), i - 1);
        }
    }

    #[test]
    fn histogram_quantiles_resolve_to_bucket_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 90 samples in [8, 16) and 10 in [1024, 2048).
        for _ in 0..90 {
            h.observe(9);
        }
        for _ in 0..10 {
            h.observe(1500);
        }
        assert_eq!(h.quantile(0.0), 8);
        assert_eq!(h.quantile(0.5), 8);
        assert_eq!(h.quantile(0.9), 8);
        assert_eq!(h.quantile(0.95), 1024);
        assert_eq!(h.quantile(1.0), 1024);
    }

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let c2 = reg.counter("x");
        c.add(3);
        c2.inc();
        assert_eq!(reg.counter("x").get(), 4);

        let g = reg.gauge("depth");
        g.set(5);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(reg.gauge("depth").max_seen(), 5);
    }

    #[test]
    fn histogram_counts_sum_and_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 1, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1005);
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 2); // the two ones
        assert_eq!(h.bucket(2), 1); // the three
        assert_eq!(h.bucket(10), 1); // 1000 in [512, 1024)
    }

    #[test]
    fn tracer_ring_evicts_oldest() {
        let t = Tracer::with_capacity(3);
        for i in 0..5u64 {
            t.record(TraceEvent {
                clock: i,
                label: "e",
                a: i,
                b: 0,
            });
        }
        assert_eq!(t.total_recorded(), 5);
        let kept: Vec<u64> = t.snapshot().iter().map(|e| e.clock).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn snapshots_are_sorted_and_stable() {
        let mk = |order_flip: bool| {
            let reg = Registry::new();
            let names = if order_flip {
                ["b.second", "a.first"]
            } else {
                ["a.first", "b.second"]
            };
            for n in names {
                reg.counter(n).add(7);
            }
            reg.histogram("h").observe(9);
            reg.gauge("g").set(2);
            reg.trace(TraceEvent {
                clock: 1,
                label: "x",
                a: 0,
                b: 0,
            });
            (reg.snapshot_text(), reg.snapshot_json())
        };
        // Registration order must not leak into the rendering.
        assert_eq!(mk(false), mk(true));
        let (text, json) = mk(false);
        assert!(text.contains("counter a.first 7\n"), "{text}");
        assert!(text.starts_with("counter a.first"), "{text}");
        assert!(json.contains("\"a.first\": 7"), "{json}");
        assert!(json.contains("\"buckets\": {\"4\": 1}"), "{json}");
    }

    #[test]
    fn out_of_order_recording_snapshots_identically() {
        let forward = Tracer::with_capacity(8);
        let backward = Tracer::with_capacity(8);
        let ev = |i: u64| TraceEvent {
            clock: i,
            label: "e",
            a: 10 - i,
            b: 0,
        };
        for i in 0..4 {
            forward.record(ev(i));
        }
        for i in (0..4).rev() {
            backward.record(ev(i));
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
    }
}
